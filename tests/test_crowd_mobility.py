"""Unit tests for repro.crowd.mobility."""

import numpy as np
import pytest

import repro
from repro.errors import CrowdError
from repro.crowd.mobility import MobilityModel, stationary_coverage_estimate
from repro.crowd.workers import WorkerPool


class TestMobilityModel:
    def test_invalid_probability(self, line_net):
        with pytest.raises(CrowdError):
            MobilityModel(line_net, move_probability=1.5)

    def test_step_preserves_worker_count(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, 30, seed=1)
        model = MobilityModel(grid_net, seed=2)
        stepped = model.step(pool)
        assert stepped.n_workers == 30

    def test_step_moves_to_adjacent_or_stays(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, 40, seed=3)
        model = MobilityModel(grid_net, move_probability=1.0, seed=4)
        stepped = model.step(pool)
        before = {w.worker_id: w.road_index for w in pool.workers}
        for worker in stepped.workers:
            old = before[worker.worker_id]
            assert worker.road_index == old or grid_net.are_adjacent(
                old, worker.road_index
            )

    def test_zero_probability_is_identity(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, 20, seed=5)
        model = MobilityModel(grid_net, move_probability=0.0, seed=6)
        stepped = model.step(pool)
        before = {w.worker_id: w.road_index for w in pool.workers}
        for worker in stepped.workers:
            assert worker.road_index == before[worker.worker_id]

    def test_isolated_road_worker_stays(self):
        roads = [repro.Road(road_id="a"), repro.Road(road_id="b")]
        net = repro.TrafficNetwork(roads, [])
        pool = WorkerPool(net, [repro.Worker(worker_id="w", road_index=0)])
        model = MobilityModel(net, move_probability=1.0, seed=7)
        stepped = model.step(pool)
        assert stepped.workers[0].road_index == 0

    def test_input_pool_untouched(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, 10, seed=8)
        before = [w.road_index for w in pool.workers]
        MobilityModel(grid_net, move_probability=1.0, seed=9).step(pool)
        assert [w.road_index for w in pool.workers] == before

    def test_walk_length_and_invalid(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, 10, seed=10)
        model = MobilityModel(grid_net, seed=11)
        pools = model.walk(pool, 4)
        assert len(pools) == 4
        with pytest.raises(CrowdError):
            model.walk(pool, 0)

    def test_distribution_changes_over_time(self, grid_net):
        """R^w churns — the paper's time-variant worker distribution."""
        pool = WorkerPool.random_distribution(grid_net, 15, seed=12)
        model = MobilityModel(grid_net, move_probability=0.5, seed=13)
        stepped = model.walk(pool, 5)
        coverages = {p.roads_with_workers() for p in stepped}
        assert len(coverages) > 1

    def test_coverage_series_shape(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, 12, seed=14)
        model = MobilityModel(grid_net, seed=15)
        series = model.coverage_series(pool, 6)
        assert len(series) == 6
        for covered, total in series:
            assert 1 <= covered <= grid_net.n_roads
            assert total == 12


class TestStationaryCoverage:
    def test_in_unit_interval(self, grid_net):
        coverage = stationary_coverage_estimate(grid_net, n_workers=20, seed=16)
        assert 0.0 < coverage <= 1.0

    def test_more_workers_more_coverage(self, grid_net):
        few = stationary_coverage_estimate(grid_net, n_workers=5, seed=17)
        many = stationary_coverage_estimate(grid_net, n_workers=100, seed=17)
        assert many > few

    def test_invalid_workers(self, grid_net):
        with pytest.raises(CrowdError):
            stationary_coverage_estimate(grid_net, n_workers=0)
