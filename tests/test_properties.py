"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

import repro
from repro.core.correlation import PathWeightMode, road_road_correlation_matrix
from repro.core.gsp import GSPConfig, propagate
from repro.core.inference import empirical_slot_parameters
from repro.core.ocs import (
    OCSInstance,
    brute_force_ocs,
    hybrid_greedy,
    objective_greedy,
    ratio_greedy,
)
from repro.core.rtf import RTFSlot
from repro.crowd.aggregation import Aggregator, aggregate_answers
from repro.eval.metrics import (
    dape_histogram,
    false_estimation_rate,
    mean_absolute_percentage_error,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

speeds = st.floats(min_value=1.0, max_value=150.0, allow_nan=False)
rhos = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def small_network(draw):
    """A random connected network of 3-10 roads."""
    n = draw(st.integers(min_value=3, max_value=10))
    roads = [repro.Road(road_id=f"r{i}") for i in range(n)]
    # Spanning-tree edges guarantee connectivity.
    edges = set()
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((parent, i))
    # Extra random edges.
    n_extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return repro.TrafficNetwork(
        roads, [(f"r{i}", f"r{j}") for i, j in sorted(edges)]
    )


@st.composite
def network_with_rho(draw):
    net = draw(small_network())
    rho = np.array([draw(rhos) for _ in range(net.n_edges)])
    return net, rho


# ----------------------------------------------------------------------
# Correlation matrix properties (Eq. 7-10)
# ----------------------------------------------------------------------


class TestCorrelationProperties:
    @given(network_with_rho())
    @settings(max_examples=40, deadline=None)
    def test_matrix_symmetric_unit_diag_bounded(self, net_rho):
        net, rho = net_rho
        corr = road_road_correlation_matrix(net, rho)
        assert np.allclose(corr, corr.T)
        assert np.allclose(np.diag(corr), 1.0)
        assert np.all(corr >= -1e-12)
        assert np.all(corr <= 1.0 + 1e-9)

    @given(network_with_rho())
    @settings(max_examples=40, deadline=None)
    def test_adjacent_at_least_edge_rho(self, net_rho):
        """A path can only improve on the direct edge product."""
        net, rho = net_rho
        corr = road_road_correlation_matrix(net, rho)
        for e, (i, j) in enumerate(net.edges):
            assert corr[i, j] >= rho[e] - 1e-9

    @given(network_with_rho())
    @settings(max_examples=30, deadline=None)
    def test_log_mode_dominates_reciprocal(self, net_rho):
        net, rho = net_rho
        exact = road_road_correlation_matrix(net, rho, PathWeightMode.LOG)
        paper = road_road_correlation_matrix(net, rho, PathWeightMode.RECIPROCAL)
        assert np.all(exact >= paper - 1e-9)

    @given(network_with_rho())
    @settings(max_examples=30, deadline=None)
    def test_triangle_style_inequality(self, net_rho):
        """corr(i,k) >= corr(i,j) * corr(j,k): paths compose."""
        net, rho = net_rho
        corr = road_road_correlation_matrix(net, rho)
        n = net.n_roads
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert corr[i, k] >= corr[i, j] * corr[j, k] - 1e-9


# ----------------------------------------------------------------------
# OCS properties
# ----------------------------------------------------------------------


@st.composite
def ocs_instance(draw):
    net, rho = draw(network_with_rho())
    corr = road_road_correlation_matrix(net, rho)
    n = net.n_roads
    sigma = np.array([draw(st.floats(0.5, 8.0)) for _ in range(n)])
    n_q = draw(st.integers(min_value=1, max_value=n))
    queried = tuple(sorted(draw(st.permutations(range(n)))[:n_q]))
    costs = np.array([draw(st.integers(1, 4)) for _ in range(n)], dtype=float)
    budget = draw(st.integers(min_value=1, max_value=12))
    theta = draw(st.floats(min_value=0.3, max_value=1.0))
    return OCSInstance(
        queried=queried,
        candidates=tuple(range(n)),
        costs=costs,
        budget=budget,
        theta=theta,
        corr=corr,
        sigma=sigma,
    )


class TestOCSProperties:
    @given(ocs_instance())
    @settings(max_examples=40, deadline=None)
    def test_greedy_solutions_always_feasible(self, instance):
        for solver in (ratio_greedy, objective_greedy, hybrid_greedy):
            result = solver(instance)
            assert instance.is_feasible(result.selected)

    @given(ocs_instance())
    @settings(max_examples=40, deadline=None)
    def test_hybrid_at_least_both_components(self, instance):
        hybrid = hybrid_greedy(instance).objective
        assert hybrid >= ratio_greedy(instance).objective - 1e-9
        assert hybrid >= objective_greedy(instance).objective - 1e-9

    @given(ocs_instance())
    @settings(max_examples=25, deadline=None)
    def test_theorem2_bound_against_brute_force(self, instance):
        assume(instance.n_candidates <= 10)
        optimal = brute_force_ocs(instance).objective
        hybrid = hybrid_greedy(instance).objective
        assert hybrid >= (1 - 1 / np.e) / 2 * optimal - 1e-9
        assert hybrid <= optimal + 1e-9

    @given(ocs_instance())
    @settings(max_examples=30, deadline=None)
    def test_objective_submodular_style_monotonicity(self, instance):
        """Adding a road never decreases Eq. 13."""
        result = hybrid_greedy(instance)
        selection = list(result.selected)
        for cut in range(len(selection)):
            assert instance.objective(selection[: cut + 1]) >= instance.objective(
                selection[:cut]
            ) - 1e-9


# ----------------------------------------------------------------------
# GSP properties
# ----------------------------------------------------------------------


class TestGSPProperties:
    @given(
        small_network(),
        st.floats(10.0, 100.0),
        st.floats(1.0, 8.0),
        st.floats(0.1, 0.95),
        st.floats(5.0, 120.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_propagated_speeds_between_probe_and_prior(
        self, net, mu, sigma, rho, probe
    ):
        """With a flat prior, every inferred speed lies between the
        probe value and the prior mean (convex-combination update)."""
        params = RTFSlot(
            0,
            np.full(net.n_roads, mu),
            np.full(net.n_roads, sigma),
            np.full(net.n_edges, rho),
        )
        result = propagate(
            net, params, {0: probe}, GSPConfig(epsilon=1e-9, max_sweeps=4000)
        )
        low, high = min(mu, probe), max(mu, probe)
        assert np.all(result.speeds >= low - 1e-6)
        assert np.all(result.speeds <= high + 1e-6)

    @given(small_network(), st.floats(0.1, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_no_probe_is_fixed_point(self, net, rho):
        params = RTFSlot(
            0,
            np.full(net.n_roads, 50.0),
            np.full(net.n_roads, 3.0),
            np.full(net.n_edges, rho),
        )
        result = propagate(net, params, {})
        assert np.allclose(result.speeds, 50.0)


# ----------------------------------------------------------------------
# Metrics properties
# ----------------------------------------------------------------------


class TestMetricsProperties:
    @given(
        st.lists(speeds, min_size=1, max_size=50),
        st.lists(speeds, min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_mape_nonnegative_and_fer_bounded(self, est, truth):
        n = min(len(est), len(truth))
        estimates = np.array(est[:n])
        truths = np.array(truth[:n])
        assert mean_absolute_percentage_error(estimates, truths) >= 0
        fer = false_estimation_rate(estimates, truths)
        assert 0.0 <= fer <= 1.0

    @given(st.lists(speeds, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_perfect_estimates(self, values):
        truths = np.array(values)
        assert mean_absolute_percentage_error(truths, truths) == 0.0
        assert false_estimation_rate(truths, truths) == 0.0

    @given(
        st.lists(speeds, min_size=2, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_dape_sums_to_one(self, values):
        truths = np.array(values)
        estimates = truths * 1.1
        fractions, _ = dape_histogram(estimates, truths)
        assert fractions.sum() == pytest.approx(1.0)

    @given(st.lists(speeds, min_size=1, max_size=30), st.floats(1.001, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_scaling_error_monotone(self, values, factor):
        truths = np.array(values)
        closer = truths * (1 + (factor - 1) / 2)
        farther = truths * factor
        assert mean_absolute_percentage_error(
            closer, truths
        ) <= mean_absolute_percentage_error(farther, truths) + 1e-12


# ----------------------------------------------------------------------
# Aggregation properties
# ----------------------------------------------------------------------


class TestAggregationProperties:
    @given(st.lists(speeds, min_size=1, max_size=20), st.sampled_from(list(Aggregator)))
    @settings(max_examples=60, deadline=None)
    def test_aggregate_within_answer_range(self, answers, aggregator):
        value = aggregate_answers(answers, aggregator)
        assert min(answers) - 1e-9 <= value <= max(answers) + 1e-9

    @given(speeds, st.integers(1, 10), st.sampled_from(list(Aggregator)))
    @settings(max_examples=60, deadline=None)
    def test_identical_answers_aggregate_to_value(self, value, count, aggregator):
        assert aggregate_answers([value] * count, aggregator) == pytest.approx(value)


# ----------------------------------------------------------------------
# Inference properties
# ----------------------------------------------------------------------


class TestInferenceProperties:
    @given(small_network(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_empirical_parameters_well_formed(self, net, seed):
        rng = np.random.default_rng(seed)
        samples = rng.uniform(10, 100, size=(8, net.n_roads))
        params = empirical_slot_parameters(net, samples, slot=0)
        assert np.all(params.sigma > 0)
        assert np.all((params.rho >= 0) & (params.rho <= 1))
        assert np.all(np.isfinite(params.mu))
