"""Differential tests: vectorized GSP kernel vs the per-node reference.

The fast path is only trustworthy because this suite pins it to the
Alg. 5 oracle: on a pool of seeded random worlds spanning three
topologies (grid, ring-radial, scale-free) and R^c sizes from empty to
all-observed, the fused ``BFS_PARALLEL`` / ``BFS_COLORED`` updates must
reproduce the reference result to 1e-8 and never need extra sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.gsp import (
    GSPConfig,
    GSPEngine,
    GSPKernel,
    GSPSchedule,
)
from repro.core.rtf import RTFSlot

PARALLEL_SCHEDULES = (GSPSchedule.BFS_PARALLEL, GSPSchedule.BFS_COLORED)

#: (case id, topology, network size knob, observed fraction).  24 cases:
#: three topologies × eight R^c regimes including the degenerate ends.
CASES = [
    (case_id, topology, fraction)
    for topology in ("grid", "ring-radial", "scale-free")
    for case_id, fraction in enumerate((0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 0.9, 1.0))
]


def make_network(topology: str, seed: int):
    if topology == "grid":
        return repro.grid_network(7 + seed % 3, 6 + seed % 4)
    if topology == "ring-radial":
        return repro.ring_radial_network(
            48 + 4 * (seed % 3), n_rings=2 + seed % 2, n_radials=5 + seed % 3,
            seed=seed,
        )
    return repro.scale_free_network(50 + 5 * (seed % 4), attach=2, seed=seed)


def make_world(topology: str, fraction: float, seed: int):
    """A random (network, params, observed) triple."""
    network = make_network(topology, seed)
    rng = np.random.default_rng(1000 * seed + 17)
    n = network.n_roads
    params = RTFSlot(
        slot=seed % 288,
        mu=rng.uniform(20.0, 90.0, n),
        sigma=rng.uniform(0.5, 6.0, n),
        rho=rng.uniform(0.0, 0.97, network.n_edges),
    )
    n_observed = int(round(fraction * n))
    roads = rng.choice(n, size=n_observed, replace=False) if n_observed else []
    observed = {
        int(r): float(max(1.0, params.mu[r] * rng.uniform(0.6, 1.3))) for r in roads
    }
    return network, params, observed


class TestDifferential:
    @pytest.mark.parametrize("schedule", PARALLEL_SCHEDULES)
    @pytest.mark.parametrize("case_id,topology,fraction", CASES)
    def test_vectorized_matches_reference(self, schedule, case_id, topology, fraction):
        network, params, observed = make_world(topology, fraction, seed=case_id)
        engine = GSPEngine(network)
        kwargs = dict(epsilon=1e-10, max_sweeps=4000, schedule=schedule)
        reference = engine.propagate(
            params, observed, GSPConfig(kernel=GSPKernel.REFERENCE, **kwargs)
        )
        vectorized = engine.propagate(
            params, observed, GSPConfig(kernel=GSPKernel.VECTORIZED, **kwargs)
        )
        assert vectorized.kernel is GSPKernel.VECTORIZED
        assert reference.kernel is GSPKernel.REFERENCE
        assert np.max(np.abs(vectorized.speeds - reference.speeds)) <= 1e-8
        assert vectorized.converged == reference.converged
        assert vectorized.sweeps <= reference.sweeps

    @pytest.mark.parametrize("schedule", PARALLEL_SCHEDULES)
    def test_auto_kernel_resolves_to_vectorized(self, schedule):
        network, params, observed = make_world("grid", 0.1, seed=3)
        result = repro.propagate(
            network, params, observed, GSPConfig(schedule=schedule)
        )
        assert result.kernel is GSPKernel.VECTORIZED
        assert result.schedule is schedule

    def test_auto_kernel_keeps_reference_for_sequential_schedules(self):
        network, params, observed = make_world("grid", 0.1, seed=4)
        for schedule in (GSPSchedule.BFS, GSPSchedule.RANDOM, GSPSchedule.INDEX):
            result = repro.propagate(
                network, params, observed, GSPConfig(schedule=schedule, seed=1)
            )
            assert result.kernel is GSPKernel.REFERENCE

    def test_vectorized_kernel_rejects_sequential_schedule(self):
        network, params, observed = make_world("grid", 0.1, seed=5)
        config = GSPConfig(schedule=GSPSchedule.BFS, kernel=GSPKernel.VECTORIZED)
        with pytest.raises(repro.ModelError):
            repro.propagate(network, params, observed, config)

    def test_all_observed_short_circuits_both_kernels(self):
        network, params, observed = make_world("ring-radial", 1.0, seed=6)
        engine = GSPEngine(network)
        for kernel in (GSPKernel.REFERENCE, GSPKernel.VECTORIZED):
            result = engine.propagate(
                params,
                observed,
                GSPConfig(schedule=GSPSchedule.BFS_PARALLEL, kernel=kernel),
            )
            assert result.sweeps == 0
            assert result.converged
            expected = np.array([observed[i] for i in range(network.n_roads)])
            assert np.allclose(result.speeds, expected)


class TestBatch:
    def test_propagate_batch_matches_individual_calls(self):
        network, params_a, observed = make_world("grid", 0.15, seed=7)
        rng = np.random.default_rng(99)
        params_b = RTFSlot(
            slot=params_a.slot + 1,
            mu=params_a.mu * rng.uniform(0.9, 1.1, network.n_roads),
            sigma=params_a.sigma,
            rho=params_a.rho,
        )
        config = GSPConfig(schedule=GSPSchedule.BFS_COLORED, epsilon=1e-9, max_sweeps=3000)
        engine = GSPEngine(network)
        batch = engine.propagate_batch(
            [(params_a, observed), (params_b, observed)], config
        )
        solo_a = GSPEngine(network).propagate(params_a, observed, config)
        solo_b = GSPEngine(network).propagate(params_b, observed, config)
        assert np.allclose(batch[0].speeds, solo_a.speeds, atol=1e-12)
        assert np.allclose(batch[1].speeds, solo_b.speeds, atol=1e-12)
        # Same observed set → the second item reuses the compiled schedule.
        assert batch[1].schedule_cache_hit

    def test_module_level_batch_facade(self):
        network, params, observed = make_world("scale-free", 0.2, seed=8)
        config = GSPConfig(schedule=GSPSchedule.BFS_PARALLEL)
        results = repro.propagate_batch(network, [(params, observed)] * 2, config)
        assert len(results) == 2
        assert np.allclose(results[0].speeds, results[1].speeds)
