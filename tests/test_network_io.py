"""Unit tests for repro.network.io."""

import json

import pytest

import repro
from repro.errors import NetworkError
from repro.network.io import (
    FORMAT_TAG,
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
)


class TestDictRoundtrip:
    def test_roundtrip_equality(self, grid_net):
        rebuilt = network_from_dict(network_to_dict(grid_net))
        assert rebuilt == grid_net

    def test_format_tag_present(self, line_net):
        assert network_to_dict(line_net)["format"] == FORMAT_TAG

    def test_wrong_format_rejected(self, line_net):
        payload = network_to_dict(line_net)
        payload["format"] = "other/9"
        with pytest.raises(NetworkError, match="unsupported"):
            network_from_dict(payload)

    def test_missing_field_rejected(self, line_net):
        payload = network_to_dict(line_net)
        del payload["roads"][0]["kind"]
        with pytest.raises(NetworkError, match="malformed"):
            network_from_dict(payload)

    def test_bad_kind_rejected(self, line_net):
        payload = network_to_dict(line_net)
        payload["roads"][0]["kind"] = "spaceway"
        with pytest.raises(NetworkError, match="malformed"):
            network_from_dict(payload)

    def test_preserves_attributes(self):
        net = repro.ring_radial_network(60, seed=2)
        rebuilt = network_from_dict(network_to_dict(net))
        for a, b in zip(net.roads, rebuilt.roads):
            assert a.kind == b.kind
            assert a.free_flow_kmh == b.free_flow_kmh
            assert a.position == b.position


class TestJsonRoundtrip:
    def test_file_roundtrip(self, tmp_path, grid_net):
        path = tmp_path / "net.json"
        network_to_json(grid_net, path)
        assert network_from_json(path) == grid_net

    def test_file_is_valid_json(self, tmp_path, line_net):
        path = tmp_path / "net.json"
        network_to_json(line_net, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == FORMAT_TAG
        assert len(payload["roads"]) == line_net.n_roads
