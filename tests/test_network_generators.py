"""Unit tests for repro.network.generators."""

import pytest

import repro
from repro.errors import NetworkError
from repro.network.graph import RoadKind


class TestLineNetwork:
    def test_structure(self):
        net = repro.line_network(5)
        assert net.n_roads == 5
        assert net.n_edges == 4
        assert net.is_connected()

    def test_endpoints_degree_one(self):
        net = repro.line_network(5)
        assert net.degree(0) == 1
        assert net.degree(4) == 1

    def test_single_road(self):
        net = repro.line_network(1)
        assert net.n_roads == 1
        assert net.n_edges == 0

    def test_invalid_size(self):
        with pytest.raises(NetworkError):
            repro.line_network(0)


class TestStarNetwork:
    def test_structure(self):
        net = repro.star_network(6)
        assert net.n_roads == 7
        assert net.n_edges == 6
        assert net.degree(0) == 6

    def test_leaves_degree_one(self):
        net = repro.star_network(4)
        for leaf in range(1, 5):
            assert net.degree(leaf) == 1

    def test_invalid(self):
        with pytest.raises(NetworkError):
            repro.star_network(0)


class TestGridNetwork:
    def test_counts(self):
        net = repro.grid_network(3, 4)
        assert net.n_roads == 12
        # edges: horizontal 3*3 + vertical 2*4 = 17
        assert net.n_edges == 17

    def test_connected(self):
        assert repro.grid_network(4, 4).is_connected()

    def test_corner_degree(self):
        net = repro.grid_network(3, 3)
        assert net.degree(0) == 2
        assert net.degree(4) == 4  # centre

    def test_invalid_dims(self):
        with pytest.raises(NetworkError):
            repro.grid_network(0, 3)

    def test_single_cell(self):
        net = repro.grid_network(1, 1)
        assert net.n_roads == 1 and net.n_edges == 0


class TestRingRadial:
    def test_exact_size(self):
        net = repro.ring_radial_network(100, seed=3)
        assert net.n_roads == 100

    def test_connected(self):
        assert repro.ring_radial_network(120, seed=4).is_connected()

    def test_paper_size(self):
        net = repro.ring_radial_network(607, seed=5)
        assert net.n_roads == 607
        assert net.is_connected()

    def test_contains_all_road_kinds(self):
        net = repro.ring_radial_network(150, seed=6)
        kinds = {road.kind for road in net.roads}
        assert kinds == {RoadKind.HIGHWAY, RoadKind.ARTERIAL, RoadKind.LOCAL}

    def test_deterministic_given_seed(self):
        a = repro.ring_radial_network(90, seed=7)
        b = repro.ring_radial_network(90, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = repro.ring_radial_network(90, seed=7)
        b = repro.ring_radial_network(90, seed=8)
        assert a != b

    def test_too_small_rejected(self):
        with pytest.raises(NetworkError, match="too small"):
            repro.ring_radial_network(10, n_rings=4, n_radials=8)


class TestRandomGeometric:
    def test_connected_by_default(self):
        net = repro.random_geometric_network(40, seed=1)
        assert net.is_connected()

    def test_size(self):
        assert repro.random_geometric_network(25, seed=2).n_roads == 25

    def test_larger_radius_more_edges(self):
        sparse = repro.random_geometric_network(30, radius=0.1, seed=3, ensure_connected=False)
        dense = repro.random_geometric_network(30, radius=0.4, seed=3, ensure_connected=False)
        assert dense.n_edges > sparse.n_edges

    def test_invalid_params(self):
        with pytest.raises(NetworkError):
            repro.random_geometric_network(0)
        with pytest.raises(NetworkError):
            repro.random_geometric_network(10, radius=-1)


class TestScaleFree:
    def test_size_and_connectivity(self):
        net = repro.scale_free_network(50, seed=9)
        assert net.n_roads == 50
        assert net.is_connected()

    def test_hub_emerges(self):
        net = repro.scale_free_network(80, attach=2, seed=10)
        degrees = sorted(net.degree(i) for i in range(net.n_roads))
        assert degrees[-1] >= 3 * degrees[0]

    def test_edge_count(self):
        attach = 2
        n = 30
        net = repro.scale_free_network(n, attach=attach, seed=11)
        seed_edges = attach * (attach + 1) // 2
        assert net.n_edges == seed_edges + attach * (n - attach - 1)

    def test_invalid(self):
        with pytest.raises(NetworkError):
            repro.scale_free_network(2, attach=2)
        with pytest.raises(NetworkError):
            repro.scale_free_network(10, attach=0)
