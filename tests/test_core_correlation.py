"""Unit tests for repro.core.correlation."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.core.correlation import (
    CorrelationTable,
    PathWeightMode,
    road_road_correlation_matrix,
)
from repro.core.rtf import RTFModel, RTFSlot


def slot_for(net, rho, slot=0):
    return RTFSlot(
        slot=slot,
        mu=np.full(net.n_roads, 50.0),
        sigma=np.full(net.n_roads, 3.0),
        rho=np.asarray(rho, dtype=float),
    )


class TestRoadRoadMatrix:
    def test_adjacent_equals_rho(self, line_net):
        rho = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        corr = road_road_correlation_matrix(line_net, rho)
        for e, (i, j) in enumerate(line_net.edges):
            assert corr[i, j] == pytest.approx(rho[e])

    def test_path_product_on_line(self, line_net):
        rho = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        corr = road_road_correlation_matrix(line_net, rho)
        assert corr[0, 2] == pytest.approx(0.9 * 0.8)
        assert corr[0, 5] == pytest.approx(0.9 * 0.8 * 0.7 * 0.6 * 0.5)

    def test_diagonal_is_one(self, grid_net, rng):
        rho = rng.uniform(0.3, 0.9, grid_net.n_edges)
        corr = road_road_correlation_matrix(grid_net, rho)
        assert np.allclose(np.diag(corr), 1.0)

    def test_symmetric(self, grid_net, rng):
        rho = rng.uniform(0.3, 0.9, grid_net.n_edges)
        corr = road_road_correlation_matrix(grid_net, rho)
        assert np.allclose(corr, corr.T)

    def test_values_in_unit_interval(self, grid_net, rng):
        rho = rng.uniform(0.0, 1.0, grid_net.n_edges)
        corr = road_road_correlation_matrix(grid_net, rho)
        assert np.all(corr >= 0.0)
        assert np.all(corr <= 1.0 + 1e-12)

    def test_chooses_max_product_path(self):
        # Square: 0-1-3 (products 0.9*0.9=0.81) vs 0-2-3 (0.5*0.5=0.25).
        net = repro.grid_network(2, 2)
        # Edges sorted (0,1),(0,2),(1,3),(2,3).
        rho = np.zeros(net.n_edges)
        rho[net.edge_id(0, 1)] = 0.9
        rho[net.edge_id(1, 3)] = 0.9
        rho[net.edge_id(0, 2)] = 0.5
        rho[net.edge_id(2, 3)] = 0.5
        corr = road_road_correlation_matrix(net, rho)
        assert corr[0, 3] == pytest.approx(0.81)

    def test_zero_rho_edge_blocks_path(self, line_net):
        rho = np.array([0.9, 0.0, 0.7, 0.6, 0.5])
        corr = road_road_correlation_matrix(line_net, rho)
        assert corr[0, 2] == 0.0
        assert corr[0, 1] == pytest.approx(0.9)

    def test_disconnected_pairs_zero(self):
        roads = [repro.Road(road_id=f"r{i}") for i in range(3)]
        net = repro.TrafficNetwork(roads, [("r0", "r1")])
        corr = road_road_correlation_matrix(net, np.array([0.8]))
        assert corr[0, 2] == 0.0
        assert corr[2, 2] == 1.0

    def test_rho_one_edges(self, line_net):
        corr = road_road_correlation_matrix(line_net, np.ones(5))
        assert corr[0, 5] == pytest.approx(1.0, abs=1e-9)

    def test_bad_rho_shape(self, line_net):
        with pytest.raises(ModelError):
            road_road_correlation_matrix(line_net, np.ones(3))

    def test_bad_rho_range(self, line_net):
        with pytest.raises(ModelError):
            road_road_correlation_matrix(line_net, np.full(5, 1.2))


class TestReciprocalMode:
    def test_matches_log_on_line(self, line_net):
        # Unique paths: both modes must agree exactly.
        rho = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        log_corr = road_road_correlation_matrix(line_net, rho, PathWeightMode.LOG)
        rec_corr = road_road_correlation_matrix(
            line_net, rho, PathWeightMode.RECIPROCAL
        )
        assert np.allclose(log_corr, rec_corr)

    def test_log_mode_never_worse(self, rng):
        # The exact transform maximizes the product, so its correlations
        # dominate the reciprocal heuristic's everywhere.
        net = repro.grid_network(4, 4)
        rho = rng.uniform(0.1, 0.95, net.n_edges)
        log_corr = road_road_correlation_matrix(net, rho, PathWeightMode.LOG)
        rec_corr = road_road_correlation_matrix(net, rho, PathWeightMode.RECIPROCAL)
        assert np.all(log_corr >= rec_corr - 1e-9)

    def test_modes_can_disagree(self):
        # Two paths 0 -> 3: direct edge with rho 0.30 (reciprocal weight
        # 3.33) vs two-hop 0.9*0.9 = 0.81 (reciprocal weight 2.22).
        # Reciprocal picks the two-hop path too here; build a case where
        # they differ: one-hop rho 0.5 (weight 2.0) vs two hops of 0.9
        # (weight 2.22, product 0.81 > 0.5).
        roads = [repro.Road(road_id=f"r{i}") for i in range(3)]
        net = repro.TrafficNetwork(
            roads, [("r0", "r2"), ("r0", "r1"), ("r1", "r2")]
        )
        rho = np.zeros(net.n_edges)
        rho[net.edge_id(0, 2)] = 0.5
        rho[net.edge_id(0, 1)] = 0.9
        rho[net.edge_id(1, 2)] = 0.9
        log_corr = road_road_correlation_matrix(net, rho, PathWeightMode.LOG)
        rec_corr = road_road_correlation_matrix(net, rho, PathWeightMode.RECIPROCAL)
        assert log_corr[0, 2] == pytest.approx(0.81)
        assert rec_corr[0, 2] == pytest.approx(0.5)

    def test_symmetric_and_unit_diagonal(self, rng):
        net = repro.grid_network(3, 3)
        rho = rng.uniform(0.2, 0.9, net.n_edges)
        corr = road_road_correlation_matrix(net, rho, PathWeightMode.RECIPROCAL)
        assert np.allclose(corr, corr.T)
        assert np.allclose(np.diag(corr), 1.0)


class TestCorrelationTable:
    @pytest.fixture()
    def table(self, line_net):
        rho = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        model = RTFModel(line_net, [slot_for(line_net, rho, slot=3)])
        return CorrelationTable.precompute(model)

    def test_slots(self, table):
        assert table.slots == (3,)

    def test_missing_slot(self, table):
        with pytest.raises(ModelError):
            table.matrix(9)

    def test_road_road(self, table):
        assert table.road_road(3, 0, 1) == pytest.approx(0.9)

    def test_road_set_empty_is_zero(self, table):
        assert table.road_set(3, 0, []) == 0.0

    def test_road_set_takes_max(self, table):
        # corr(0,{1,5}) = max(0.9, 0.9*0.8*0.7*0.6*0.5).
        assert table.road_set(3, 0, [1, 5]) == pytest.approx(0.9)

    def test_set_set_sums(self, table):
        expected = table.road_set(3, 0, [2]) + table.road_set(3, 4, [2])
        assert table.set_set(3, [0, 4], [2]) == pytest.approx(expected)

    def test_weighted_correlation(self, table, line_net):
        sigma = np.arange(1.0, 7.0)
        value = table.weighted_correlation(3, [0, 4], [2], sigma)
        expected = sigma[0] * table.road_set(3, 0, [2]) + sigma[4] * table.road_set(
            3, 4, [2]
        )
        assert value == pytest.approx(expected)

    def test_weighted_correlation_shape_check(self, table):
        with pytest.raises(ModelError):
            table.weighted_correlation(3, [0], [1], np.ones(3))

    def test_empty_table_rejected(self, line_net):
        with pytest.raises(ModelError):
            CorrelationTable(line_net, {})

    def test_shape_mismatch_rejected(self, line_net):
        with pytest.raises(ModelError):
            CorrelationTable(line_net, {0: np.ones((3, 3))})
