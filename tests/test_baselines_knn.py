"""Unit tests for the temporal k-NN baseline."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.baselines import EstimationContext
from repro.baselines.knn_temporal import TemporalKNNEstimator


class TestTemporalKNN:
    def test_config_validation(self):
        with pytest.raises(ModelError):
            TemporalKNNEstimator(k=0)
        with pytest.raises(ModelError):
            TemporalKNNEstimator(epsilon=0)

    def test_no_probes_returns_mean(self, line_net):
        samples = np.random.default_rng(0).uniform(30, 70, (10, 6))
        context = EstimationContext(line_net, samples, {})
        field = TemporalKNNEstimator().estimate(context)
        assert np.allclose(field, samples.mean(axis=0))

    def test_probes_pass_through(self, line_net):
        samples = np.random.default_rng(1).uniform(30, 70, (10, 6))
        context = EstimationContext(line_net, samples, {2: 44.0})
        field = TemporalKNNEstimator().estimate(context)
        assert field[2] == pytest.approx(44.0)

    def test_finds_matching_day(self, line_net, rng):
        """When today's probes exactly match one historical day, k=1
        returns that day everywhere."""
        samples = rng.uniform(30, 70, (12, 6))
        target_day = 7
        probes = {0: float(samples[target_day, 0]), 3: float(samples[target_day, 3])}
        context = EstimationContext(line_net, samples, probes)
        field = TemporalKNNEstimator(k=1).estimate(context)
        free = [1, 2, 4, 5]
        assert np.allclose(field[free], samples[target_day, free], atol=1e-6)

    def test_k_clamped_to_history(self, line_net, rng):
        samples = rng.uniform(30, 70, (4, 6))
        context = EstimationContext(line_net, samples, {0: 50.0})
        field = TemporalKNNEstimator(k=50).estimate(context)
        assert np.all(np.isfinite(field))

    def test_beats_mean_on_regime_days(self, line_net, rng):
        """History with two regimes: probes identify today's regime, so
        kNN beats the global mean."""
        slow = 30 + rng.normal(0, 1, (10, 6))
        fast = 60 + rng.normal(0, 1, (10, 6))
        samples = np.vstack([slow, fast])
        today = 60 + rng.normal(0, 1, 6)
        probes = {0: float(today[0])}
        context = EstimationContext(line_net, samples, probes)
        field = TemporalKNNEstimator(k=3).estimate(context)
        free = list(range(1, 6))
        knn_err = np.abs(field[free] - today[free]).mean()
        mean_err = np.abs(samples.mean(axis=0)[free] - today[free]).mean()
        assert knn_err < mean_err
