"""Unit tests for the exception hierarchy and boundary helpers."""

import warnings

import numpy as np
import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.NetworkError,
            errors.ModelError,
            errors.SelectionError,
            errors.CrowdError,
            errors.DatasetError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.RoadNotFoundError, errors.NetworkError)
        assert issubclass(errors.EdgeNotFoundError, errors.NetworkError)
        assert issubclass(errors.NotFittedError, errors.ModelError)
        assert issubclass(errors.ConvergenceError, errors.ModelError)
        assert issubclass(errors.BudgetError, errors.SelectionError)
        assert issubclass(errors.NoWorkersError, errors.CrowdError)

    def test_road_not_found_carries_id(self):
        exc = errors.RoadNotFoundError("r9")
        assert exc.road_id == "r9"
        assert "r9" in str(exc)

    def test_edge_not_found_carries_endpoints(self):
        exc = errors.EdgeNotFoundError("a", "b")
        assert exc.road_a == "a" and exc.road_b == "b"

    def test_catchable_as_repro_error(self, line_net):
        with pytest.raises(errors.ReproError):
            line_net.index_of("missing")

    def test_serve_errors_derive_from_repro_error(self):
        assert issubclass(errors.ServeError, errors.ReproError)
        assert issubclass(errors.OverloadedError, errors.ServeError)
        assert issubclass(errors.QueryTimeoutError, errors.ServeError)
        assert issubclass(errors.InternalError, errors.ReproError)

    def test_overloaded_carries_queue_state(self):
        exc = errors.OverloadedError(64, 64)
        assert exc.queue_depth == 64
        assert exc.max_queue_depth == 64
        assert "64" in str(exc)

    def test_query_timeout_carries_stage_and_budget(self):
        exc = errors.QueryTimeoutError("gsp", 0.75, 0.5)
        assert exc.stage == "gsp"
        assert exc.elapsed_seconds == 0.75
        assert exc.deadline_seconds == 0.5
        assert "gsp" in str(exc)

    def test_internal_error_chains_original(self):
        original = ValueError("boom")
        exc = errors.InternalError("ocs", original)
        assert exc.stage == "ocs"
        assert exc.original is original
        assert "ValueError" in str(exc)


class TestWrapInternal:
    def test_converts_stray_builtins(self):
        for stray in (ValueError("v"), KeyError("k"), IndexError("i"),
                      ZeroDivisionError("z")):
            with pytest.raises(errors.InternalError) as excinfo:
                with errors.wrap_internal("stage-x"):
                    raise stray
            assert excinfo.value.stage == "stage-x"
            assert excinfo.value.original is stray
            assert excinfo.value.__cause__ is stray

    def test_repro_errors_pass_through_unwrapped(self):
        with pytest.raises(errors.BudgetError):
            with errors.wrap_internal("ocs"):
                raise errors.BudgetError("over budget")

    def test_unrelated_exceptions_pass_through(self):
        with pytest.raises(RuntimeError):
            with errors.wrap_internal("ocs"):
                raise RuntimeError("not a leak class")

    def test_no_exception_is_a_noop(self):
        with errors.wrap_internal("ocs"):
            pass


class TestAnswerQueryBoundary:
    def test_selector_value_error_surfaces_as_internal(
        self, tiny_dataset, tiny_system, monkeypatch
    ):
        """A stray ValueError inside the OCS stage must not leak raw."""
        from repro.core import pipeline as pipeline_mod

        def exploding_selector(*args, **kwargs):
            raise ValueError("selector blew up")

        monkeypatch.setattr(pipeline_mod, "trivial_solution", exploding_selector)
        market = repro.CrowdMarket(
            tiny_dataset.network,
            tiny_dataset.pool,
            tiny_dataset.cost_model,
            rng=np.random.default_rng(0),
        )
        truth = repro.truth_oracle_for(tiny_dataset.test_history, 0, tiny_dataset.slot)
        with pytest.raises(errors.InternalError) as excinfo:
            tiny_system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=15,
                market=market,
                truth=truth,
            )
        assert excinfo.value.stage == "ocs"
        assert isinstance(excinfo.value.original, ValueError)


class TestDeprecationOnce:
    def test_warns_exactly_once_per_key(self):
        key = "test.once.alpha"
        errors.reset_deprecation_warnings(key)
        with pytest.warns(DeprecationWarning, match="alpha gone"):
            assert errors.warn_deprecated_once(key, "alpha gone") is True
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Second call is swallowed even with warnings-as-errors.
            assert errors.warn_deprecated_once(key, "alpha gone") is False

    def test_reset_reenables_one_key(self):
        key = "test.once.beta"
        errors.reset_deprecation_warnings(key)
        with pytest.warns(DeprecationWarning):
            errors.warn_deprecated_once(key, "beta gone")
        errors.reset_deprecation_warnings(key)
        with pytest.warns(DeprecationWarning):
            assert errors.warn_deprecated_once(key, "beta gone") is True

    def test_gsp_alias_warns_once_per_process(self, small_world):
        """The documented contract: one warning per alias per process."""
        from repro.core.gsp import GSPEngine

        engine = GSPEngine(small_world["network"])
        result = engine.propagate(small_world["params"], {0: 30.0})
        errors.reset_deprecation_warnings("gsp.result.structure_cache_hit")
        with pytest.warns(DeprecationWarning):
            result.structure_cache_hit
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result.structure_cache_hit  # silent on repeat access
