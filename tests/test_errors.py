"""Unit tests for the exception hierarchy."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.NetworkError,
            errors.ModelError,
            errors.SelectionError,
            errors.CrowdError,
            errors.DatasetError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.RoadNotFoundError, errors.NetworkError)
        assert issubclass(errors.EdgeNotFoundError, errors.NetworkError)
        assert issubclass(errors.NotFittedError, errors.ModelError)
        assert issubclass(errors.ConvergenceError, errors.ModelError)
        assert issubclass(errors.BudgetError, errors.SelectionError)
        assert issubclass(errors.NoWorkersError, errors.CrowdError)

    def test_road_not_found_carries_id(self):
        exc = errors.RoadNotFoundError("r9")
        assert exc.road_id == "r9"
        assert "r9" in str(exc)

    def test_edge_not_found_carries_endpoints(self):
        exc = errors.EdgeNotFoundError("a", "b")
        assert exc.road_a == "a" and exc.road_b == "b"

    def test_catchable_as_repro_error(self, line_net):
        with pytest.raises(errors.ReproError):
            line_net.index_of("missing")
