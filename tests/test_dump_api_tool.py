"""Tests for tools/dump_api.py: check/update flows and determinism."""

from __future__ import annotations

import pytest

import tools.dump_api as dump_api


@pytest.fixture()
def golden(tmp_path, monkeypatch):
    """Redirect the golden file to a throwaway path."""
    path = tmp_path / "api_surface.txt"
    monkeypatch.setattr(dump_api, "GOLDEN", path)
    return path


def test_dump_surface_is_deterministic_and_sorted():
    first = dump_api.dump_surface()
    second = dump_api.dump_surface()
    assert first == second
    assert first == sorted(first)
    assert len(first) > 100  # the frozen v1 surface is substantial
    assert any(line.startswith("repro.CrowdRTSE ") for line in first)


def test_update_then_check_roundtrip(golden, capsys):
    assert dump_api.main(["--update"]) == 0
    assert golden.is_file()
    assert dump_api.main(["--check"]) == 0
    out = capsys.readouterr().out
    assert "matches" in out


def test_check_fails_on_drift_with_diff_on_stderr(golden, capsys):
    assert dump_api.main(["--update"]) == 0
    lines = golden.read_text().splitlines()
    removed = lines.pop(0)
    golden.write_text("\n".join(lines) + "\n")

    assert dump_api.main(["--check"]) == 1
    err = capsys.readouterr().err
    assert f"+{removed}" in err  # the live-only line shows in the diff
    assert "--update" in err  # tells the caller how to accept the change


def test_check_fails_when_golden_missing(golden, capsys):
    assert dump_api.main(["--check"]) == 1
    assert "missing" in capsys.readouterr().err


def test_default_mode_prints_surface(golden, capsys):
    assert dump_api.main([]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == dump_api.dump_surface()


def test_live_golden_matches_repo(capsys):
    """The checked-in golden file must match this interpreter's surface."""
    assert dump_api.main(["--check"]) == 0
