"""Property-based tests (hypothesis) for the backend registry and states.

Three invariant families:

* **Registry** — register/create/unregister round-trips for arbitrary
  valid names, duplicate rejection, and invalid-name rejection.
* **Snapshot round-trip** — for every attached backend, estimates off a
  pinned snapshot are deterministic and immune to later refreshes
  (states are copy-on-write snapshot citizens).
* **Serialization** — every backend's state blob pickles, and the
  revived blob answers bit-identically.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

import repro
from repro.backends import (
    EstimatorBackend,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.registry import _NAME_RE
from repro.backends.rtf_gsp import RTFGSPBackend, RTFGSPState
from repro.errors import BackendError

BUILTINS = ("gmrf", "grmc", "lasso", "lsmrn", "per", "rtf_gsp")

valid_names = st.from_regex(r"[a-z][a-z0-9_]{0,20}", fullmatch=True)


@pytest.fixture(scope="module")
def world(tiny_dataset):
    """A fitted system with every built-in backend attached, refreshed once.

    Returns the system plus the pre-refresh pinned snapshot, so
    properties can check that the old generation is frozen.
    """
    data = tiny_dataset
    system = repro.CrowdRTSE.fit(
        data.network, data.train_history, slots=[data.slot]
    )
    for name in BUILTINS:
        if name != "rtf_gsp":
            system.attach_backend(name, history=data.train_history)
    system.attach_backend(
        "rtf_gsp",
        state=RTFGSPState(params={data.slot: system.model.slot(data.slot)}),
    )
    old = system.store.current()
    day = data.test_history.slot_samples(data.slot)[0]
    system.refresh({data.slot: day}, learning_rate=0.2)
    return {"data": data, "system": system, "old": old}


def probe_sets(n_roads):
    return st.dictionaries(
        st.integers(min_value=0, max_value=n_roads - 1),
        st.floats(min_value=5.0, max_value=120.0, allow_nan=False),
        max_size=8,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistryProperties:
    @given(name=valid_names)
    @settings(max_examples=50, deadline=None)
    def test_register_create_unregister_roundtrip(self, name):
        assume(name not in available_backends())

        def factory(network, _name=name):
            backend = RTFGSPBackend(network)
            backend.name = _name  # instance attribute shadows the class
            return backend

        register_backend(name, factory)
        try:
            assert name in available_backends()
            backend = create_backend(name, repro.line_network(4))
            assert isinstance(backend, EstimatorBackend)
            assert backend.name == name
            with pytest.raises(BackendError, match="already registered"):
                register_backend(name, factory)
            register_backend(name, factory, replace=True)  # explicit wins
        finally:
            unregister_backend(name)
        assert name not in available_backends()
        with pytest.raises(BackendError, match="not registered"):
            unregister_backend(name)

    @given(name=st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_invalid_names_rejected(self, name):
        assume(_NAME_RE.match(name) is None)
        with pytest.raises(BackendError, match="invalid backend name"):
            register_backend(name, lambda network: RTFGSPBackend(network))

    @given(name=valid_names)
    @settings(max_examples=25, deadline=None)
    def test_registration_never_leaks_on_factory_mismatch(self, name):
        assume(name not in available_backends())
        register_backend(name, RTFGSPBackend)  # factory makes "rtf_gsp"
        try:
            if name != "rtf_gsp":
                with pytest.raises(BackendError, match="produced a backend"):
                    create_backend(name, repro.line_network(4))
            assert available_backends() == tuple(sorted(available_backends()))
        finally:
            unregister_backend(name)


# ----------------------------------------------------------------------
# Snapshot round-trip and serialization
# ----------------------------------------------------------------------


class TestSnapshotProperties:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_pinned_estimates_deterministic_across_refresh(self, world, data):
        """publish -> pin -> estimate: the old generation never moves."""
        system, old = world["system"], world["old"]
        slot = world["data"].slot
        probes = data.draw(probe_sets(system.network.n_roads))
        for name in BUILTINS:
            first = system.estimate_with_backend(
                name, probes, slot, snapshot=old
            )
            second = system.estimate_with_backend(
                name, probes, slot, snapshot=old
            )
            np.testing.assert_array_equal(first.speeds, second.speeds)
            assert first.backend == name
            assert first.speeds.shape == (system.network.n_roads,)
            assert np.all(np.isfinite(first.speeds))
            # The pinned snapshot still serves the pre-refresh state blob.
            assert old.backend_state(name) is not (
                system.store.current().backend_state(name)
            ) or name == "rtf_gsp"

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_state_blobs_pickle_roundtrip(self, world, data):
        system = world["system"]
        slot = world["data"].slot
        probes = data.draw(probe_sets(system.network.n_roads))
        snapshot = system.store.current()
        for name in BUILTINS:
            state = snapshot.backend_state(name)
            revived = pickle.loads(pickle.dumps(state))
            backend = system.store.backend_instance(name)
            direct = backend.estimate(state, probes, slot)
            from_pickle = backend.estimate(revived, probes, slot)
            np.testing.assert_array_equal(direct.speeds, from_pickle.speeds)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_probes_always_pinned_in_output(self, world, data):
        """Every probe-pinning backend returns probes verbatim."""
        system = world["system"]
        slot = world["data"].slot
        probes = data.draw(
            probe_sets(system.network.n_roads).filter(lambda p: len(p) > 0)
        )
        for name in ("gmrf", "grmc", "lasso", "lsmrn"):
            estimate = system.estimate_with_backend(name, probes, slot)
            for road, speed in probes.items():
                assert estimate.speeds[road] == pytest.approx(speed)
