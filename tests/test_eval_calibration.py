"""Unit tests for repro.eval.calibration (θ tuning)."""

import pytest

import repro
from repro.errors import ExperimentError
from repro.eval.calibration import tune_theta


class TestTuneTheta:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset, tiny_system):
        return tune_theta(
            tiny_dataset,
            tiny_system,
            budget=15,
            candidates=(0.6, 0.92, 1.0),
            n_validation_days=2,
        )

    def test_best_theta_among_candidates(self, result):
        assert result.best_theta in (0.6, 0.92, 1.0)

    def test_best_theta_has_lowest_mape(self, result):
        assert result.mape_by_theta[result.best_theta] == min(
            result.mape_by_theta.values()
        )

    def test_all_candidates_reported(self, result):
        assert set(result.mape_by_theta) == {0.6, 0.92, 1.0}
        assert set(result.objective_by_theta) == {0.6, 0.92, 1.0}
        assert set(result.n_selected_by_theta) == {0.6, 0.92, 1.0}

    def test_looser_theta_never_lowers_objective(self, result):
        """θ = 1 is the unconstrained problem — its OCS objective
        dominates any tighter θ."""
        assert (
            result.objective_by_theta[1.0]
            >= result.objective_by_theta[0.6] - 1e-9
        )

    def test_empty_candidates_rejected(self, tiny_dataset, tiny_system):
        with pytest.raises(ExperimentError):
            tune_theta(tiny_dataset, tiny_system, budget=15, candidates=())

    def test_invalid_theta_rejected(self, tiny_dataset, tiny_system):
        with pytest.raises(ExperimentError):
            tune_theta(tiny_dataset, tiny_system, budget=15, candidates=(1.2,))

    def test_too_many_validation_days_rejected(self, tiny_dataset, tiny_system):
        with pytest.raises(ExperimentError):
            tune_theta(
                tiny_dataset,
                tiny_system,
                budget=15,
                n_validation_days=tiny_dataset.train_history.n_days,
            )


class TestThetaSweepExperiment:
    def test_runs_at_quick_scale(self):
        from repro.experiments import theta_sweep
        from repro.experiments.common import ExperimentScale

        rows = theta_sweep.run(
            ExperimentScale.QUICK, thetas=(0.6, 0.92, 1.0), n_validation_days=2
        )
        assert len(rows) == 3
        assert sum(1 for r in rows if r.is_best) == 1
        # A tighter theta cannot select more objective value.
        by_theta = {r.theta: r for r in rows}
        assert by_theta[1.0].objective >= by_theta[0.6].objective - 1e-9
        assert "theta" in theta_sweep.format_table(rows)
