"""Tests for the consolidated experiment runner."""


import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.run_all import run_all


@pytest.mark.slow
class TestRunAll:
    @pytest.fixture(scope="class")
    def report_and_dir(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("report")
        report = run_all(ExperimentScale.QUICK, out_dir)
        return report, out_dir

    def test_report_contains_every_section(self, report_and_dir):
        report, _ = report_and_dir
        for marker in (
            "Table II",
            "Figure 2",
            "Table III",
            "Figure 4(a)",
            "Figure 4(b)",
            "Figure 5",
            "Figure 3",
            "Figure 6",
            "Ablations",
            "Theta sweep",
            "Query-pattern",
            "Scalability",
            "Budget allocation",
            "Fixed sensors vs crowd",
            "Worker-noise sensitivity",
        ):
            assert marker in report

    def test_files_written(self, report_and_dir):
        _, out_dir = report_and_dir
        assert (out_dir / "REPORT.md").exists()
        txt_files = list(out_dir.glob("*.txt"))
        assert len(txt_files) >= 10

    def test_report_is_markdown(self, report_and_dir):
        report, _ = report_and_dir
        assert report.startswith("# CrowdRTSE experiment report")
        assert "```" in report
