"""Smoke tests: the example scripts run end-to-end and print results.

Each example is executed as a subprocess (exactly how a user runs it)
and its output checked for the headline lines.  Marked slow; the two
fastest examples are exercised so the suite stays snappy.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "quality : MAPE" in out
        assert "baseline: Per MAPE" in out

    def test_incident_detection(self):
        out = run_example("incident_detection.py")
        assert "*ALARM*" in out
        assert "incident zone" in out
