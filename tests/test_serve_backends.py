"""Serving-layer tests for per-request backend selection and shadow mode.

The QueryService must route each request to the backend it names,
keep backend buckets out of each other's coalesced batches, leave the
default ``rtf_gsp`` path bit-identical, and score a configured shadow
challenger without ever touching the caller's result.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import errors, obs
from repro.backends.rtf_gsp import RTFGSPState
from repro.serve import QueryService, ServeConfig, ServeRequest, ShadowStats

N_SERVE_SLOTS = 2
ATTACHED = ("gmrf", "lsmrn", "per")


@pytest.fixture(scope="module")
def serve_world(tiny_dataset):
    """A fitted system with several backends attached, ready to serve."""
    data = tiny_dataset
    slots = [
        s
        for s in range(data.slot, data.slot + N_SERVE_SLOTS)
        if s in data.train_history.global_slots
    ]
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=slots)
    for name in ATTACHED:
        system.attach_backend(name, history=data.train_history)
    system.attach_backend(
        "rtf_gsp",
        state=RTFGSPState(params={s: system.model.slot(s) for s in slots}),
    )
    truths = {s: repro.truth_oracle_for(data.test_history, 0, s) for s in slots}
    return {"data": data, "system": system, "slots": slots, "truths": truths}


def make_market(data, seed):
    return repro.CrowdMarket(
        data.network, data.pool, data.cost_model, rng=np.random.default_rng(seed)
    )


def make_request(world, slot=None, seed=0, **overrides):
    data = world["data"]
    slot = world["slots"][0] if slot is None else slot
    kwargs = dict(
        queried=tuple(data.queried[:8]),
        slot=slot,
        budget=15,
        market=make_market(data, seed),
        truth=world["truths"][slot],
        rng=np.random.default_rng(seed),
    )
    kwargs.update(overrides)
    return ServeRequest(**kwargs)


class CountingMarket:
    """Delegating market that counts probe calls."""

    def __init__(self, inner):
        self._inner = inner
        self.probe_calls = 0

    def probe(self, roads, truth, ledger=None):
        self.probe_calls += 1
        return self._inner.probe(roads, truth, ledger)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestBackendSelection:
    @pytest.mark.parametrize("backend", ATTACHED)
    def test_request_routes_to_named_backend(self, serve_world, backend):
        with QueryService(serve_world["system"]) as service:
            served = service.submit(
                make_request(serve_world, backend=backend)
            ).result(timeout=60)
        result = served.result
        assert result.backend == backend
        assert result.gsp is None
        assert np.all(np.isfinite(served.full_field_kmh))
        assert served.full_field_kmh.shape == (
            serve_world["system"].network.n_roads,
        )

    def test_default_request_stays_on_rtf_gsp(self, serve_world):
        request = make_request(serve_world)
        assert request.backend == "rtf_gsp"
        with QueryService(serve_world["system"]) as service:
            served = service.submit(request).result(timeout=60)
        assert served.result.backend == "rtf_gsp"
        assert served.result.gsp is not None

    def test_served_field_matches_direct_backend_estimate(self, serve_world):
        """The serve path returns exactly what estimate_with_backend
        computes from the same probes (modulo the probe pinning both do)."""
        with QueryService(serve_world["system"]) as service:
            served = service.submit(
                make_request(serve_world, backend="gmrf")
            ).result(timeout=60)
        direct = serve_world["system"].estimate_with_backend(
            "gmrf", served.result.probes, serve_world["slots"][0]
        )
        np.testing.assert_allclose(
            served.full_field_kmh, direct.speeds, rtol=1e-10
        )

    def test_unattached_backend_fails_typed(self, serve_world):
        request = make_request(serve_world, backend="lasso")  # not attached
        with QueryService(serve_world["system"]) as service:
            ticket = service.submit(request)
            with pytest.raises(errors.BackendError, match="not attached"):
                ticket.result(timeout=60)


class TestBackendCoalescing:
    def test_backend_is_a_coalescing_dimension(self, serve_world):
        """Identical requests differing only in backend never share an
        execution; identical requests on the same backend still do."""
        market = CountingMarket(make_market(serve_world["data"], 21))
        base = dict(market=market, rng=None)
        service = QueryService(
            serve_world["system"],
            config=ServeConfig(num_workers=1),
            autostart=False,
        )
        tickets = (
            [service.submit(make_request(serve_world, **base)) for _ in range(2)]
            + [
                service.submit(
                    make_request(serve_world, backend="gmrf", **base)
                )
                for _ in range(2)
            ]
        )
        service.start()
        results = [t.result(timeout=60) for t in tickets]
        service.close()
        # One execution per backend bucket, not one for all four.
        assert market.probe_calls == 2
        assert sum(r.coalesced for r in results) == 2
        assert [r.result.backend for r in results] == [
            "rtf_gsp", "rtf_gsp", "gmrf", "gmrf",
        ]
        assert results[0].result is results[1].result
        assert results[2].result is results[3].result
        assert results[0].result is not results[2].result

    def test_mixed_backend_batch_all_complete(self, serve_world):
        backends = ["rtf_gsp", "gmrf", "lsmrn", "per", "gmrf", "rtf_gsp"]
        service = QueryService(
            serve_world["system"],
            config=ServeConfig(num_workers=1, max_coalesce=16),
            autostart=False,
        )
        tickets = [
            service.submit(
                make_request(serve_world, seed=100 + k, backend=name)
            )
            for k, name in enumerate(backends)
        ]
        service.start()
        served = [t.result(timeout=120) for t in tickets]
        service.close()
        assert [r.result.backend for r in served] == backends
        for result in served:
            assert np.all(np.isfinite(result.estimates_kmh))

    def test_rtf_gsp_requests_in_mixed_batch_match_oracle(self, serve_world):
        """Backend buckets in a batch don't perturb the default path."""
        data = serve_world["data"]
        service = QueryService(
            serve_world["system"],
            config=ServeConfig(num_workers=1, max_coalesce=16),
            autostart=False,
        )
        rtf_ticket = service.submit(make_request(serve_world, seed=300))
        other = [
            service.submit(
                make_request(serve_world, seed=301 + k, backend=name)
            )
            for k, name in enumerate(("gmrf", "per"))
        ]
        service.start()
        served = rtf_ticket.result(timeout=120)
        for ticket in other:
            ticket.result(timeout=120)
        service.close()

        oracle = serve_world["system"].answer_query(
            served.request.queried,
            served.request.slot,
            budget=served.request.budget,
            market=make_market(data, 300),
            truth=served.request.truth,
            rng=np.random.default_rng(300),
        )
        np.testing.assert_allclose(
            served.estimates_kmh, oracle.estimates_kmh, rtol=1e-10
        )


class TestShadowMode:
    def _serve_with_shadow(self, serve_world, shadow, n=3):
        config = ServeConfig(num_workers=1, shadow_backend=shadow)
        with QueryService(serve_world["system"], config=config) as service:
            results = [
                service.submit(make_request(serve_world, seed=40 + k)).result(
                    timeout=60
                )
                for k in range(n)
            ]
        # Tickets resolve *before* shadow scoring by design; only the
        # drain on close() guarantees the tally is final.
        stats = service.shadow_stats
        return results, stats

    def test_shadow_scores_without_touching_results(self, serve_world):
        obs.configure(metrics=True)
        obs.get_metrics().clear()
        try:
            results, stats = self._serve_with_shadow(serve_world, "gmrf")
            baseline, _ = self._serve_with_shadow(serve_world, None)
            for shadowed, plain in zip(results, baseline):
                assert shadowed.result.backend == "rtf_gsp"
                np.testing.assert_allclose(
                    shadowed.estimates_kmh, plain.estimates_kmh, rtol=1e-10
                )
            assert isinstance(stats, ShadowStats)
            assert stats.scored == 3
            assert stats.errors == 0
            assert np.isfinite(stats.mean_divergence_kmh)

            snap = obs.get_metrics().snapshot()
            counters = {
                (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
                for e in snap["counters"]
            }
            assert counters[
                (
                    "serve.shadow.scored",
                    (("backend", "gmrf"), ("outcome", "ok")),
                )
            ] == 3
            histograms = {e["name"] for e in snap["histograms"]}
            assert "serve.shadow.latency_seconds" in histograms
            assert "serve.shadow.divergence_kmh" in histograms
        finally:
            obs.disable_all()
            obs.get_metrics().clear()

    def test_shadow_errors_counted_not_raised(self, serve_world):
        obs.configure(metrics=True)
        obs.get_metrics().clear()
        try:
            # "lasso" is registered but never attached: every shadow
            # score fails, no caller notices.
            results, stats = self._serve_with_shadow(serve_world, "lasso")
            assert all(r.result.backend == "rtf_gsp" for r in results)
            assert stats.scored == 0
            assert stats.errors == 3
            snap = obs.get_metrics().snapshot()
            counters = {
                (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
                for e in snap["counters"]
            }
            assert counters[
                (
                    "serve.shadow.scored",
                    (("backend", "lasso"), ("outcome", "error")),
                )
            ] == 3
        finally:
            obs.disable_all()
            obs.get_metrics().clear()

    def test_shadow_skips_self_comparison(self, serve_world):
        """Challenger == served backend is a no-op, not a score of 0."""
        _, stats = self._serve_with_shadow(serve_world, "rtf_gsp")
        assert stats.scored == 0
        assert stats.errors == 0

    def test_shadow_stats_property_returns_copy(self, serve_world):
        _, stats = self._serve_with_shadow(serve_world, "gmrf", n=1)
        stats.scored = 999
        _, fresh = self._serve_with_shadow(serve_world, "gmrf", n=1)
        assert fresh.scored == 1
        assert stats.as_dict()["scored"] == 999
