"""Unit tests for the dataset builders (Table II shapes)."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.datasets import (
    GMissionConfig,
    SemiSynConfig,
    build_gmission,
    build_semisyn,
    truth_oracle_for,
)


@pytest.fixture(scope="module")
def semisyn():
    return build_semisyn(
        SemiSynConfig(
            n_roads=100,
            n_queried=20,
            n_train_days=10,
            n_test_days=4,
            n_slots=6,
            seed=5,
        )
    )


@pytest.fixture(scope="module")
def gmission():
    return build_gmission(
        GMissionConfig(
            n_component_roads=30,
            n_worker_roads=18,
            n_train_days=10,
            n_test_days=4,
            n_slots=6,
            source_network_roads=90,
            seed=6,
        )
    )


class TestSemiSyn:
    def test_workers_cover_all_roads(self, semisyn):
        assert semisyn.worker_roads == tuple(range(semisyn.n_roads))
        assert semisyn.pool.roads_with_workers() == semisyn.worker_roads

    def test_queried_sampled_from_network(self, semisyn):
        assert len(semisyn.queried) == 20
        assert len(set(semisyn.queried)) == 20

    def test_histories_split(self, semisyn):
        assert semisyn.train_history.n_days == 10
        assert semisyn.test_history.n_days == 4
        assert semisyn.train_history.road_ids == semisyn.network.road_ids

    def test_slot_in_window(self, semisyn):
        assert semisyn.slot in semisyn.train_history.global_slots
        assert semisyn.slot in semisyn.test_history.global_slots

    def test_deterministic(self):
        config = SemiSynConfig(
            n_roads=60, n_queried=10, n_train_days=6, n_test_days=2, n_slots=4, seed=9
        )
        a = build_semisyn(config)
        b = build_semisyn(config)
        assert a.queried == b.queried
        assert np.allclose(a.train_history.values, b.train_history.values)

    def test_paper_defaults(self):
        config = SemiSynConfig()
        assert config.n_roads == 607
        assert config.budgets == (30, 60, 90, 120, 150)
        assert config.theta == 0.92

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            SemiSynConfig(n_queried=0)
        with pytest.raises(DatasetError):
            SemiSynConfig(budgets=())
        with pytest.raises(DatasetError):
            SemiSynConfig(workers_per_road=2, cost_high=10)

    def test_summary_mentions_sizes(self, semisyn):
        text = semisyn.summary()
        assert "|R|=100" in text and "theta=0.92" in text


class TestGMission:
    def test_component_is_connected_and_fully_queried(self, gmission):
        assert gmission.network.is_connected()
        assert gmission.queried == tuple(range(gmission.n_roads))

    def test_workers_subset_of_queried(self, gmission):
        assert set(gmission.worker_roads) < set(gmission.queried)
        assert len(gmission.worker_roads) == 18

    def test_paper_defaults(self):
        config = GMissionConfig()
        assert config.n_component_roads == 50
        assert config.n_worker_roads == 30
        assert config.budgets == (10, 20, 30, 40, 50)

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            GMissionConfig(n_worker_roads=60, n_component_roads=50)
        with pytest.raises(DatasetError):
            GMissionConfig(n_component_roads=300, source_network_roads=200)


class TestTruthOracle:
    def test_matches_history(self, semisyn):
        oracle = truth_oracle_for(semisyn.test_history, 1, semisyn.slot)
        snapshot = semisyn.test_history.slot_samples(semisyn.slot)[1]
        for road in (0, 5, 50):
            assert oracle(road) == pytest.approx(snapshot[road])

    def test_different_days_differ(self, semisyn):
        a = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
        b = truth_oracle_for(semisyn.test_history, 1, semisyn.slot)
        diffs = [abs(a(r) - b(r)) for r in range(semisyn.n_roads)]
        assert max(diffs) > 0
