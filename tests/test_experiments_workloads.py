"""Unit tests for query workloads and the pattern-sensitivity experiment."""

import numpy as np
import pytest

import repro
from repro.errors import ExperimentError
from repro.experiments.workloads import QueryPattern, generate_query, query_stream
from repro.experiments import query_patterns
from repro.experiments.common import ExperimentScale


class TestGenerateQuery:
    @pytest.mark.parametrize("pattern", list(QueryPattern))
    def test_size_and_uniqueness(self, grid_net, rng, pattern):
        query = generate_query(grid_net, pattern, 8, rng)
        assert len(query) == 8
        assert len(set(query)) == 8
        assert all(0 <= r < grid_net.n_roads for r in query)

    @pytest.mark.parametrize("pattern", list(QueryPattern))
    def test_size_clamped_to_network(self, line_net, rng, pattern):
        query = generate_query(line_net, pattern, 100, rng)
        assert len(query) == line_net.n_roads

    def test_invalid_size(self, grid_net, rng):
        with pytest.raises(ExperimentError):
            generate_query(grid_net, QueryPattern.UNIFORM, 0, rng)

    def test_hotspot_is_connected(self, grid_net, rng):
        query = generate_query(grid_net, QueryPattern.HOTSPOT, 9, rng)
        sub = grid_net.subnetwork(grid_net.roads[i].road_id for i in query)
        assert sub.is_connected()

    def test_corridor_mostly_path_like(self, grid_net, rng):
        """Corridor queries have low average degree inside the query."""
        corridor = generate_query(grid_net, QueryPattern.CORRIDOR, 8, rng)
        hotspot = generate_query(grid_net, QueryPattern.HOTSPOT, 8, rng)

        def internal_edges(query):
            qset = set(query)
            return sum(1 for i, j in grid_net.edges if i in qset and j in qset)

        assert internal_edges(corridor) <= internal_edges(hotspot) + 1

    def test_hotspot_tighter_than_uniform(self, rng):
        net = repro.grid_network(8, 8)
        hotspot = generate_query(net, QueryPattern.HOTSPOT, 10, rng)
        uniform = generate_query(net, QueryPattern.UNIFORM, 10, rng)

        def spread(query):
            positions = np.array([net.road_at(i).position for i in query])
            return positions.std(axis=0).sum()

        assert spread(hotspot) < spread(uniform)


class TestQueryStream:
    def test_deterministic(self, grid_net):
        a = query_stream(grid_net, QueryPattern.UNIFORM, 5, 4, seed=1)
        b = query_stream(grid_net, QueryPattern.UNIFORM, 5, 4, seed=1)
        assert a == b

    def test_queries_differ_within_stream(self, grid_net):
        stream = query_stream(grid_net, QueryPattern.HOTSPOT, 6, 5, seed=2)
        assert len(set(stream)) > 1

    def test_invalid_count(self, grid_net):
        with pytest.raises(ExperimentError):
            query_stream(grid_net, QueryPattern.UNIFORM, 5, 0)


class TestQueryPatternExperiment:
    def test_runs_and_reports_all_patterns(self):
        rows = query_patterns.run(
            ExperimentScale.QUICK, query_size=12, n_queries=2
        )
        assert {r.pattern for r in rows} == {p.value for p in QueryPattern}
        for r in rows:
            assert 0 <= r.gsp_mape < 1
            assert r.advantage == pytest.approx(r.per_mape - r.gsp_mape)
        assert "pattern" in query_patterns.format_table(rows)
