"""Regression tests for the races the RA001 static audit uncovered.

Two real defects were fixed in this PR:

* instrument ``_reset`` methods mutated counter/histogram state without
  the shared registry lock, so a reset racing concurrent ``observe``
  calls could tear the (count, sum, buckets) triple;
* ``ModelStore._count_publish`` bumped ``stats`` *after* ``publish``
  released the store lock, so concurrent publishes lost updates.

These tests hammer the fixed paths from multiple threads and assert the
invariants that the races broke.  They are probabilistic by nature but
fail with very high likelihood on the unfixed code.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.inference import empirical_slot_parameters
from repro.core.rtf import RTFModel
from repro.core.store import ModelStore
from repro.obs.metrics import MetricsRegistry

SLOTS = (91, 92, 93)


class TestHistogramResetRace:
    def test_reset_keeps_count_bucket_invariant(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("test.latency", buckets=(0.1, 1.0, 10.0))
        stop = threading.Event()
        errors = []

        def observer():
            value = 0.0
            while not stop.is_set():
                histogram.observe(value % 20.0)
                value += 0.37

        threads = [threading.Thread(target=observer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                registry.reset()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        if errors:
            raise AssertionError(errors)

        # After the dust settles the triple must be consistent: a torn
        # reset leaves count != sum(bucket_counts).
        assert histogram.count == sum(histogram.bucket_counts())
        registry.reset()
        assert histogram.count == 0
        assert sum(histogram.bucket_counts()) == 0
        assert histogram.sum == 0.0

    def test_counter_reset_under_concurrent_incs_is_consistent(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("test.events")
        done = threading.Barrier(3)

        def incrementer():
            done.wait()
            for _ in range(20_000):
                counter.inc()

        threads = [threading.Thread(target=incrementer) for _ in range(2)]
        for thread in threads:
            thread.start()
        done.wait()
        for _ in range(50):
            registry.reset()
        for thread in threads:
            thread.join()

        # Whatever survived the resets, the final value is an exact
        # integer count of post-reset incs (no torn read-modify-write).
        assert counter.value == int(counter.value)
        assert 0 <= counter.value <= 40_000


class TestPublishStatsRace:
    @pytest.fixture()
    def store(self, small_world):
        network = small_world["network"]
        history = small_world["history"]
        model = RTFModel(
            network,
            [
                empirical_slot_parameters(network, history.slot_samples(t), t)
                for t in SLOTS
            ],
        )
        return ModelStore(model)

    def test_concurrent_publishes_do_not_lose_stats_updates(self, store):
        """stats.publishes must equal the exact number of publishes."""
        n_threads, per_thread = 8, 25
        snapshot = store.current()
        slot_params = [snapshot.slot(t) for t in SLOTS]
        start = threading.Barrier(n_threads)

        def publisher(k):
            start.wait()
            for _ in range(per_thread):
                store.publish([slot_params[k % len(slot_params)]])

        before = store.stats.publishes
        threads = [
            threading.Thread(target=publisher, args=(k,)) for k in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert store.stats.publishes == before + n_threads * per_thread
        assert store.version == store.current().version
