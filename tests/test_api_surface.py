"""The v1 public API surface is frozen: drift must be deliberate.

``tools/dump_api.py`` renders every name in ``repro.__all__`` (plus its
public class members) into stable one-line entries;
``docs/api_surface_v1.txt`` is the reviewed golden.  These tests fail on
any rename, removal, or signature change that was not accompanied by a
regeneration of the golden file.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import dump_api  # noqa: E402


class TestSurfaceGolden:
    def test_live_surface_matches_golden(self):
        golden = dump_api.GOLDEN.read_text().splitlines()
        live = dump_api.dump_surface()
        assert live == golden, (
            "public API surface drifted from docs/api_surface_v1.txt — "
            "if intentional, run: PYTHONPATH=src python tools/dump_api.py --update"
        )

    def test_check_mode_exit_codes(self, tmp_path, monkeypatch):
        assert dump_api.main(["--check"]) == 0
        drifted = tmp_path / "api_surface_v1.txt"
        drifted.write_text("repro.Ghost class ()\n")
        monkeypatch.setattr(dump_api, "GOLDEN", drifted)
        assert dump_api.main(["--check"]) == 1

    def test_cli_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "dump_api.py"), "--check"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr


class TestFacadeContract:
    def test_all_names_resolve(self):
        missing = [n for n in repro.__all__ if not hasattr(repro, n)]
        assert missing == []

    def test_all_is_sorted_within_sections_and_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize(
        "name",
        [
            # the v1 contract's load-bearing entries (ISSUE 4 satellite 1)
            "CrowdRTSE",
            "QueryService",
            "QueryResult",
            "ModelStore",
            "build_semisyn",
            "build_gmission",
            "history_from_csv",
            "truth_oracle_for",
            "ReproError",
            "ServeError",
            "OverloadedError",
            "QueryTimeoutError",
            "InternalError",
        ],
    )
    def test_contract_name_exported(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_error_taxonomy_rooted_at_repro_error(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and not issubclass(obj, Warning)
            ):
                assert issubclass(obj, repro.ReproError), name

    def test_surface_rendering_is_deterministic(self):
        assert dump_api.dump_surface() == dump_api.dump_surface()
