"""Unit tests for the span tracer (repro.obs.tracing)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import Tracer
from repro.obs.tracing import _NULL_SPAN


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
        records = {r.name: r for r in tracer.records()}
        assert records["outer"].parent_id is None
        assert records["middle"].parent_id == records["outer"].span_id
        assert records["inner"].parent_id == records["middle"].span_id
        # Children complete before parents.
        assert [r.name for r in tracer.records()] == ["inner", "middle", "outer"]
        assert outer.span_id != middle.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        records = {r.name: r for r in tracer.records()}
        assert records["a"].parent_id == records["root"].span_id
        assert records["b"].parent_id == records["root"].span_id

    def test_exception_still_closes_span(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record.name == "doomed"
        assert record.wall_s >= 0
        # Stack is clean: a following span is a root again.
        with tracer.span("next"):
            pass
        assert tracer.records()[-1].parent_id is None


class TestEvents:
    def test_span_events_carry_offset_and_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gsp.propagate") as span:
            span.event("gsp.sweep", sweep=0, max_delta=1.5)
            span.event("gsp.sweep", sweep=1, max_delta=0.2)
        (record,) = tracer.records()
        assert [e["name"] for e in record.events] == ["gsp.sweep", "gsp.sweep"]
        assert record.events[1]["attrs"] == {"sweep": 1, "max_delta": 0.2}
        assert record.events[0]["t_offset_s"] <= record.events[1]["t_offset_s"]

    def test_tracer_event_attaches_to_innermost_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick", n=1)
        records = {r.name: r for r in tracer.records()}
        assert len(records["inner"].events) == 1
        assert records["outer"].events == ()

    def test_event_without_active_span_is_dropped(self):
        tracer = Tracer(enabled=True)
        tracer.event("orphan")
        assert tracer.records() == ()

    def test_set_attr(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", static=1) as span:
            span.set_attr("sweeps", 12)
        (record,) = tracer.records()
        assert record.attrs == {"static": 1, "sweeps": 12}


class TestDisabled:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x", a=1)
        assert span is _NULL_SPAN
        with span as inner:
            inner.event("e")
            inner.set_attr("k", "v")
        tracer.event("e2")
        assert tracer.records() == ()

    def test_reenable_records_again(self):
        tracer = Tracer(enabled=False)
        with tracer.span("skipped"):
            pass
        tracer.enable()
        with tracer.span("kept"):
            pass
        assert [r.name for r in tracer.records()] == ["kept"]


class TestThreads:
    def test_threads_build_independent_subtrees(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(4)

        def worker(tag: int) -> None:
            barrier.wait()
            with tracer.span(f"root-{tag}"):
                with tracer.span(f"child-{tag}"):
                    tracer.event("tick", tag=tag)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = {r.name: r for r in tracer.records()}
        assert len(records) == 8
        ids = [r.span_id for r in records.values()]
        assert len(set(ids)) == 8, "span ids must be unique across threads"
        for tag in range(4):
            root = records[f"root-{tag}"]
            child = records[f"child-{tag}"]
            assert root.parent_id is None
            assert child.parent_id == root.span_id, "no cross-thread parenting"
            assert child.thread_id == root.thread_id
            assert child.events[0]["attrs"] == {"tag": tag}

    def test_max_spans_cap_drops_not_grows(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.records()) == 3
        assert tracer.dropped == 2
        tracer.reset()
        assert tracer.records() == ()
        assert tracer.dropped == 0


class TestExports:
    def test_jsonl_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", slot=93):
            with tracer.span("inner") as inner:
                inner.event("tick")
        lines = tracer.to_jsonl().splitlines()
        spans = [json.loads(line) for line in lines]
        assert len(spans) == 2
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["attrs"] == {"slot": 93}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["events"][0]["name"] == "tick"
        for span in spans:
            assert span["type"] == "span"
            assert span["wall_s"] >= 0
            assert span["cpu_s"] >= 0

    def test_empty_tracer_exports_empty(self):
        tracer = Tracer(enabled=True)
        assert tracer.to_jsonl() == ""
        assert tracer.to_chrome_trace() == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_chrome_trace_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gsp.propagate", slot=93) as span:
            span.event("gsp.sweep", sweep=0)
        doc = tracer.to_chrome_trace()
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 1 and len(instants) == 1
        (x,) = complete
        assert x["name"] == "gsp.propagate"
        assert x["cat"] == "gsp"
        assert x["dur"] >= 0
        assert x["args"]["slot"] == 93
        (i,) = instants
        assert i["ts"] >= x["ts"]
        assert i["tid"] == x["tid"]

    def test_export_files(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "chrome.json"
        tracer.export_jsonl(str(jsonl))
        tracer.export_chrome_trace(str(chrome))
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "s"
        assert json.loads(chrome.read_text())["traceEvents"]
