"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry
from repro.obs.metrics import _NOOP


class TestCounter:
    def test_counts_and_defaults(self):
        registry = MetricsRegistry()
        counter = registry.counter("gsp.propagations")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            registry.counter("ocs.solves").inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("gsp.sweeps", {"schedule": "bfs"}).inc(3)
        registry.counter("gsp.sweeps", {"schedule": "bfs_colored"}).inc(7)
        assert registry.counter("gsp.sweeps", {"schedule": "bfs"}).value == 3
        assert registry.counter("gsp.sweeps", {"schedule": "bfs_colored"}).value == 7

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", {"a": 1, "b": 2}).inc()
        registry.counter("x", {"b": 2, "a": 1}).inc()
        (entry,) = registry.snapshot()["counters"]
        assert entry["value"] == 2


class TestGauge:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("crowd.budget_remaining")
        gauge.set(30.0)
        gauge.inc(-10.0)
        assert gauge.value == 20.0


class TestHistogram:
    def test_bucket_edges_le_semantics(self):
        """A value equal to an edge lands in that edge's bucket."""
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 1.0001, 5.0, 10.0, 11.0):
            hist.observe(value)
        # buckets: <=1 gets {0.5, 1.0}; <=5 gets {1.0001, 5.0}; <=10 gets
        # {10.0}; +Inf gets {11.0}.
        assert hist.bucket_counts() == (2, 2, 1, 1)
        assert hist.count == 6
        assert hist.sum == pytest.approx(28.5001)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            registry.histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            registry.histogram("h2", buckets=(1.0, 1.0, 2.0))

    def test_bucket_redefinition_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Same edges are fine (idempotent re-registration).
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)


class TestRegistry:
    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("gsp.sweeps")
        with pytest.raises(ObservabilityError, match="is a counter"):
            registry.gauge("gsp.sweeps")

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="invalid metric name"):
            registry.counter("Bad-Name")
        with pytest.raises(ObservabilityError, match="invalid label key"):
            registry.counter("ok", {"Bad Key": "x"})

    def test_label_cardinality_cap(self):
        registry = MetricsRegistry(max_series_per_metric=3)
        for i in range(3):
            registry.counter("c", {"road": i}).inc()
        with pytest.raises(ObservabilityError, match="high-cardinality"):
            registry.counter("c", {"road": 99})
        # Existing series remain reachable after the rejection.
        assert registry.counter("c", {"road": 0}).value == 1

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("anything.goes")
        assert counter is _NOOP
        counter.inc(100)
        assert counter.value == 0.0
        # Nothing was registered.
        snap = registry.snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_enable_disable_toggles_recording(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.enable()
        registry.counter("c").inc()
        registry.disable()
        registry.counter("c").inc()
        registry.enable()
        assert registry.counter("c").value == 1

    def test_reset_zeroes_but_keeps_handles_live(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(1.0,))
        counter.inc(5)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0
        assert hist.count == 0
        counter.inc()  # the old handle still feeds the registry
        assert registry.snapshot()["counters"][0]["value"] == 1

    def test_snapshot_is_deterministic_and_jsonable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b.counter", {"z": 1, "a": 2}).inc()
        registry.counter("a.counter").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(3.0)
        snap = registry.snapshot()
        assert [e["name"] for e in snap["counters"]] == ["a.counter", "b.counter"]
        assert snap["histograms"][0]["counts"] == [0, 0, 1]
        json.dumps(snap)  # must not raise
        assert registry.snapshot() == snap

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(10.0, 100.0))
        n_threads, n_iters = 8, 500

        def worker(seed: int) -> None:
            for i in range(n_iters):
                counter.inc()
                hist.observe(float((seed + i) % 150))
                registry.counter("labeled", {"t": seed % 4}).inc()

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * n_iters
        assert hist.count == n_threads * n_iters
        assert sum(hist.bucket_counts()) == n_threads * n_iters
        labeled = registry.snapshot()["counters"]
        total = sum(e["value"] for e in labeled if e["name"] == "labeled")
        assert total == n_threads * n_iters
