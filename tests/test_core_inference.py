"""Unit tests for repro.core.inference, including numerical gradient checks."""

import numpy as np
import pytest

import repro
from repro.errors import ConvergenceError, ModelError
from repro.core.inference import (
    RTFInferenceConfig,
    _SlotObjective,
    empirical_slot_parameters,
    fit_rtf,
    infer_slot_parameters,
)


def make_samples(net, n_days=20, seed=0, base=50.0, spread=4.0):
    rng = np.random.default_rng(seed)
    shared = rng.normal(size=(n_days, 1))
    noise = rng.normal(size=(n_days, net.n_roads))
    return base + spread * (0.7 * shared + 0.3 * noise)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step": 0},
            {"max_iters": 0},
            {"tol": 0},
            {"init": "magic"},
            {"rho_min": 0.5, "rho_max": 0.4},
            {"sigma_floor": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ModelError):
            RTFInferenceConfig(**kwargs)


class TestEmpiricalParameters:
    def test_matches_sample_moments(self, line_net):
        samples = make_samples(line_net, seed=1)
        params = empirical_slot_parameters(line_net, samples, slot=7)
        assert params.slot == 7
        assert np.allclose(params.mu, samples.mean(axis=0))
        assert np.allclose(params.sigma, samples.std(axis=0, ddof=1))

    def test_rho_clipped_to_unit_interval(self, line_net):
        rng = np.random.default_rng(2)
        # Anti-correlated neighbours -> Pearson < 0 -> clipped to 0.
        base = rng.normal(size=(30, 1))
        samples = 50 + np.concatenate(
            [base, -base, base, -base, base, -base], axis=1
        )
        samples += 0.1 * rng.normal(size=samples.shape)
        params = empirical_slot_parameters(line_net, samples, slot=0)
        assert np.all(params.rho >= 0.0)
        assert np.all(params.rho <= 1.0)

    def test_perfectly_correlated_edges(self, line_net):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(25, 1))
        samples = 50 + np.repeat(base, line_net.n_roads, axis=1)
        samples += 1e-9 * rng.normal(size=samples.shape)
        params = empirical_slot_parameters(line_net, samples, slot=0)
        assert np.all(params.rho > 0.99)

    def test_too_few_samples(self, line_net):
        with pytest.raises(ModelError, match="at least 2"):
            empirical_slot_parameters(line_net, np.ones((1, 6)) * 50, slot=0)

    def test_wrong_width(self, line_net):
        with pytest.raises(ModelError):
            empirical_slot_parameters(line_net, np.ones((5, 3)), slot=0)


class TestGradientsNumerically:
    """Finite-difference verification of every analytic gradient."""

    @pytest.fixture()
    def setup(self, line_net):
        samples = make_samples(line_net, n_days=12, seed=4)
        objective = _SlotObjective(line_net, samples, normalized=True)
        rng = np.random.default_rng(5)
        mu = samples.mean(axis=0) + rng.normal(scale=1.0, size=line_net.n_roads)
        sigma = samples.std(axis=0, ddof=1) * rng.uniform(0.8, 1.2, line_net.n_roads)
        rho = rng.uniform(0.1, 0.8, line_net.n_edges)
        return objective, mu, sigma, rho

    @staticmethod
    def numeric_grad(fn, x, eps=1e-6):
        grad = np.zeros_like(x)
        for k in range(x.size):
            up = x.copy()
            up[k] += eps
            down = x.copy()
            down[k] -= eps
            grad[k] = (fn(up) - fn(down)) / (2 * eps)
        return grad

    def test_grad_mu(self, setup):
        objective, mu, sigma, rho = setup
        analytic = objective.grad_mu(mu, sigma, rho)
        numeric = self.numeric_grad(lambda m: objective.value(m, sigma, rho), mu)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_grad_sigma(self, setup):
        objective, mu, sigma, rho = setup
        analytic = objective.grad_sigma(mu, sigma, rho)
        numeric = self.numeric_grad(lambda s: objective.value(mu, s, rho), sigma)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_grad_rho(self, setup):
        objective, mu, sigma, rho = setup
        analytic = objective.grad_rho(mu, sigma, rho)
        numeric = self.numeric_grad(lambda r: objective.value(mu, sigma, r), rho)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_grads_unnormalized_variant(self, line_net):
        samples = make_samples(line_net, n_days=10, seed=6)
        objective = _SlotObjective(line_net, samples, normalized=False)
        rng = np.random.default_rng(7)
        mu = samples.mean(axis=0)
        sigma = samples.std(axis=0, ddof=1)
        rho = rng.uniform(0.2, 0.7, line_net.n_edges)
        for grad_fn, param, wrap in [
            (objective.grad_mu, mu, lambda x: objective.value(x, sigma, rho)),
            (objective.grad_sigma, sigma, lambda x: objective.value(mu, x, rho)),
            (objective.grad_rho, rho, lambda x: objective.value(mu, sigma, x)),
        ]:
            analytic = grad_fn(mu, sigma, rho)
            numeric = self.numeric_grad(wrap, param)
            assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestInferSlotParameters:
    def test_empirical_init_converges_immediately(self, line_net):
        samples = make_samples(line_net, seed=8)
        params, diag = infer_slot_parameters(line_net, samples, slot=0)
        assert diag.converged
        assert diag.iterations <= 10

    def test_random_init_converges(self, line_net):
        samples = make_samples(line_net, seed=9)
        config = RTFInferenceConfig(init="random", seed=1, max_iters=3000, tol=0.05)
        params, diag = infer_slot_parameters(line_net, samples, slot=0, config=config)
        assert diag.converged
        # Should land near the empirical means.
        empirical = empirical_slot_parameters(line_net, samples, 0)
        assert np.allclose(params.mu, empirical.mu, atol=1.5)

    def test_objective_monotone_under_ccd(self, line_net):
        samples = make_samples(line_net, seed=10)
        config = RTFInferenceConfig(init="random", seed=2, max_iters=50, tol=1e-9)
        _, diag = infer_slot_parameters(line_net, samples, slot=0, config=config)
        objectives = np.array(diag.objective_history)
        # Allow tiny numerical wiggle but require overall ascent.
        assert objectives[-1] > objectives[0]
        assert np.sum(np.diff(objectives) < -1e-6) <= len(objectives) // 10

    def test_strict_mode_raises(self, line_net):
        samples = make_samples(line_net, seed=11)
        config = RTFInferenceConfig(
            init="random", seed=3, max_iters=2, tol=1e-12, strict=True
        )
        with pytest.raises(ConvergenceError):
            infer_slot_parameters(line_net, samples, slot=0, config=config)

    def test_parameters_respect_bounds(self, line_net):
        samples = make_samples(line_net, seed=12)
        config = RTFInferenceConfig(init="random", seed=4, max_iters=100, tol=1e-6)
        params, _ = infer_slot_parameters(line_net, samples, slot=0, config=config)
        assert np.all(params.sigma >= config.sigma_floor)
        assert np.all(params.rho >= config.rho_min)
        assert np.all(params.rho <= config.rho_max)

    def test_recovers_generative_correlation(self):
        # Two roads driven by a shared factor with known correlation.
        net = repro.line_network(2)
        rng = np.random.default_rng(13)
        n = 4000
        shared = rng.normal(size=n)
        a = 50 + 3.0 * shared + 1.0 * rng.normal(size=n)
        b = 55 + 3.0 * shared + 1.0 * rng.normal(size=n)
        true_rho = 9.0 / 10.0  # cov/ (sd*sd) = 9 / (sqrt(10)*sqrt(10))
        samples = np.stack([a, b], axis=1)
        params, _ = infer_slot_parameters(net, samples, slot=0)
        assert params.rho[0] == pytest.approx(true_rho, abs=0.05)


class TestFitRTF:
    def test_fits_all_covered_slots(self, small_world):
        net, history = small_world["network"], small_world["history"]
        model, diags = fit_rtf(net, history)
        assert model.slots == tuple(history.global_slots)
        assert set(diags) == set(history.global_slots)

    def test_fits_selected_slots(self, small_world):
        net, history = small_world["network"], small_world["history"]
        slot = small_world["slot"]
        model, _ = fit_rtf(net, history, slots=[slot])
        assert model.slots == (slot,)

    def test_road_mismatch_rejected(self, small_world, grid_net):
        with pytest.raises(ModelError, match="road ids"):
            fit_rtf(grid_net, small_world["history"])

    def test_empty_slots_rejected(self, small_world):
        with pytest.raises(ModelError, match="no slots"):
            fit_rtf(small_world["network"], small_world["history"], slots=[])
