"""Unit tests for Per, GSPEstimator, HopWeightedEstimator and the base interface."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.baselines import (
    EstimationContext,
    GSPEstimator,
    HopWeightedEstimator,
    PeriodicEstimator,
)
from repro.core.gsp import GSPConfig, propagate


class TestEstimationContext:
    def test_shape_validation(self, line_net):
        with pytest.raises(ModelError):
            EstimationContext(line_net, np.ones((5, 3)), {})

    def test_probe_road_validation(self, line_net):
        with pytest.raises(ModelError):
            EstimationContext(line_net, np.ones((5, 6)), {9: 40.0})

    def test_probe_value_validation(self, line_net):
        with pytest.raises(ModelError):
            EstimationContext(line_net, np.ones((5, 6)), {0: -3.0})

    def test_observed_arrays_sorted_and_aligned(self, line_net):
        context = EstimationContext(
            line_net, np.ones((5, 6)) * 50, {4: 44.0, 1: 11.0}
        )
        assert list(context.observed_indices) == [1, 4]
        assert list(context.observed_values) == [11.0, 44.0]


class TestPeriodicEstimator:
    def test_uses_model_mu_when_available(self, small_world):
        net = small_world["network"]
        params = small_world["params"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {}, slot_params=params)
        field = PeriodicEstimator().estimate(context)
        assert np.allclose(field, params.mu)

    def test_falls_back_to_history_mean(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {})
        field = PeriodicEstimator().estimate(context)
        assert np.allclose(field, samples.mean(axis=0))

    def test_ignores_probes(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        with_probe = EstimationContext(net, samples, {0: 5.0})
        without = EstimationContext(net, samples, {})
        estimator = PeriodicEstimator()
        assert np.allclose(
            estimator.estimate(with_probe), estimator.estimate(without)
        )


class TestGSPEstimatorWrapper:
    def test_matches_direct_propagate(self, small_world):
        net = small_world["network"]
        params = small_world["params"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        probes = {0: 30.0, 10: 60.0}
        context = EstimationContext(net, samples, probes, slot_params=params)
        wrapped = GSPEstimator().estimate(context)
        direct = propagate(net, params, probes, GSPConfig()).speeds
        assert np.allclose(wrapped, direct)

    def test_standalone_without_params(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {0: 30.0})
        field = GSPEstimator().estimate(context)
        assert field[0] == pytest.approx(30.0)
        assert np.all(field > 0)


class TestHopWeightedEstimator:
    def test_config_validation(self):
        with pytest.raises(ModelError):
            HopWeightedEstimator(decay=0.0)
        with pytest.raises(ModelError):
            HopWeightedEstimator(max_hops=0)

    def test_probes_pass_through(self, line_net):
        samples = np.full((8, 6), 50.0)
        context = EstimationContext(line_net, samples, {2: 30.0})
        field = HopWeightedEstimator().estimate(context)
        assert field[2] == pytest.approx(30.0)

    def test_deviation_decays_with_distance(self, line_net):
        samples = np.full((8, 6), 50.0) + np.random.default_rng(0).normal(
            0, 0.5, (8, 6)
        )
        context = EstimationContext(line_net, samples, {0: 30.0})
        field = HopWeightedEstimator(decay=0.5, max_hops=3).estimate(context)
        mean = samples.mean(axis=0)
        pulls = np.abs(field - mean)
        assert pulls[1] > pulls[2] > pulls[3]
        assert field[5] == pytest.approx(mean[5])  # beyond max_hops

    def test_no_probes_returns_mean(self, line_net):
        samples = np.full((8, 6), 42.0)
        context = EstimationContext(line_net, samples, {})
        assert np.allclose(
            HopWeightedEstimator().estimate(context), 42.0
        )

    def test_repr_contains_name(self):
        assert "HopW" in repr(HopWeightedEstimator())
