"""Unit tests for posterior uncertainty of GSP estimates."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.core.exact_inference import exact_conditional_mean
from repro.core.rtf import RTFSlot
from repro.core.uncertainty import (
    conditional_variances,
    confidence_intervals,
    most_uncertain_roads,
)


def flat_slot(net, mu=50.0, sigma=3.0, rho=0.6):
    return RTFSlot(
        0,
        np.full(net.n_roads, float(mu)),
        np.full(net.n_roads, float(sigma)),
        np.full(net.n_edges, float(rho)),
    )


class TestConditionalVariances:
    def test_probed_roads_zero_variance(self, grid_net):
        params = flat_slot(grid_net)
        variances = conditional_variances(grid_net, params, {3: 40.0})
        assert variances[3] == 0.0
        assert np.all(variances >= 0)

    def test_all_probed_all_zero(self, line_net):
        params = flat_slot(line_net)
        observed = {i: 40.0 for i in range(6)}
        assert np.allclose(conditional_variances(line_net, params, observed), 0.0)

    def test_variance_shrinks_near_probes(self, line_net):
        """Roads adjacent to a probe are better determined than distant ones."""
        params = flat_slot(line_net, rho=0.8)
        variances = conditional_variances(line_net, params, {0: 40.0})
        assert variances[1] < variances[3] < variances[5] + 1e-12

    def test_no_probes_bounded_by_prior(self, grid_net):
        """Neighbour coupling can only reduce marginal uncertainty."""
        params = flat_slot(grid_net, sigma=3.0, rho=0.5)
        variances = conditional_variances(grid_net, params, {})
        assert np.all(variances <= 9.0 + 1e-9)
        assert np.all(variances > 0)

    def test_more_probes_never_increase_variance(self, grid_net):
        params = flat_slot(grid_net, rho=0.7)
        one = conditional_variances(grid_net, params, {0: 40.0})
        two = conditional_variances(grid_net, params, {0: 40.0, 24: 60.0})
        assert np.all(two <= one + 1e-9)

    def test_matches_dense_inverse(self, line_net):
        """Cross-check against a dense matrix inverse."""
        params = flat_slot(line_net, rho=0.4)
        from repro.core.exact_inference import conditional_system

        matrix, _, free = conditional_system(line_net, params, {2: 30.0})
        dense = np.linalg.inv(matrix.toarray())
        variances = conditional_variances(line_net, params, {2: 30.0})
        assert np.allclose(variances[free], np.diag(dense), atol=1e-9)


class TestConfidenceIntervals:
    def test_band_contains_estimate(self, grid_net):
        params = flat_slot(grid_net)
        observed = {0: 30.0}
        speeds = exact_conditional_mean(grid_net, params, observed)
        low, high = confidence_intervals(grid_net, params, observed, speeds)
        assert np.all(low <= speeds)
        assert np.all(speeds <= high)
        assert low[0] == high[0] == 30.0  # probed road collapses

    def test_z_scales_width(self, grid_net):
        params = flat_slot(grid_net)
        observed = {0: 30.0}
        speeds = exact_conditional_mean(grid_net, params, observed)
        low1, high1 = confidence_intervals(grid_net, params, observed, speeds, z=1.0)
        low2, high2 = confidence_intervals(grid_net, params, observed, speeds, z=2.0)
        assert np.all(high2 - low2 >= high1 - low1)

    def test_validation(self, grid_net):
        params = flat_slot(grid_net)
        with pytest.raises(ModelError):
            confidence_intervals(grid_net, params, {}, np.ones(3))
        speeds = params.mu
        with pytest.raises(ModelError):
            confidence_intervals(grid_net, params, {}, speeds, z=0)

    def test_coverage_on_simulated_world(self, small_world):
        """~95% of true speeds fall inside the 95% band (loose check)."""
        net = small_world["network"]
        params = small_world["params"]
        history = small_world["history"]
        slot = small_world["slot"]
        truth_day = history.slot_samples(slot)[-1]
        observed = {0: float(truth_day[0]), 20: float(truth_day[20])}
        speeds = exact_conditional_mean(net, params, observed)
        low, high = confidence_intervals(net, params, observed, speeds, z=2.5)
        inside = np.mean((truth_day >= low) & (truth_day <= high))
        assert inside > 0.7


class TestMostUncertainRoads:
    def test_returns_k_roads(self, grid_net):
        params = flat_slot(grid_net)
        top = most_uncertain_roads(grid_net, params, {0: 40.0}, k=3)
        assert len(top) == 3
        assert 0 not in top  # probed road has zero variance

    def test_farthest_road_most_uncertain_on_line(self, line_net):
        params = flat_slot(line_net, rho=0.9)
        top = most_uncertain_roads(line_net, params, {0: 40.0}, k=1)
        assert list(top) == [5]

    def test_invalid_k(self, grid_net):
        with pytest.raises(ModelError):
            most_uncertain_roads(grid_net, flat_slot(grid_net), {}, k=0)
