"""Unit tests for repro.core.exact_inference (the GSP oracle)."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.core.exact_inference import (
    conditional_system,
    exact_conditional_mean,
    gsp_optimality_gap,
    pseudo_objective,
)
from repro.core.gsp import GSPConfig, GSPSchedule, propagate
from repro.core.rtf import RTFSlot


def flat_slot(net, mu=50.0, sigma=3.0, rho=0.6):
    return RTFSlot(
        0,
        np.full(net.n_roads, float(mu)),
        np.full(net.n_roads, float(sigma)),
        np.full(net.n_edges, float(rho)),
    )


class TestConditionalSystem:
    def test_no_observations_solution_is_mu(self, grid_net):
        params = flat_slot(grid_net)
        speeds = exact_conditional_mean(grid_net, params, {})
        assert np.allclose(speeds, params.mu)

    def test_observed_values_kept(self, grid_net):
        params = flat_slot(grid_net)
        speeds = exact_conditional_mean(grid_net, params, {3: 30.0})
        assert speeds[3] == 30.0

    def test_system_is_symmetric_positive_definite(self, grid_net):
        params = flat_slot(grid_net)
        matrix, _, _ = conditional_system(grid_net, params, {0: 40.0})
        dense = matrix.toarray()
        assert np.allclose(dense, dense.T)
        assert np.linalg.eigvalsh(dense).min() > 0

    def test_invalid_observation(self, grid_net):
        params = flat_slot(grid_net)
        with pytest.raises(ModelError):
            exact_conditional_mean(grid_net, params, {99: 40.0})
        with pytest.raises(ModelError):
            exact_conditional_mean(grid_net, params, {0: -4.0})

    def test_all_observed(self, line_net):
        params = flat_slot(line_net)
        observed = {i: 40.0 + i for i in range(6)}
        speeds = exact_conditional_mean(line_net, params, observed)
        assert np.allclose(speeds, [40, 41, 42, 43, 44, 45])


class TestGSPMatchesExact:
    """GSP's fixed point equals the exact GMRF conditional mean."""

    def test_flat_grid(self, grid_net):
        params = flat_slot(grid_net, rho=0.8)
        observed = {0: 25.0, 24: 75.0}
        gsp = propagate(
            grid_net, params, observed, GSPConfig(epsilon=1e-11, max_sweeps=6000)
        )
        gap = gsp_optimality_gap(grid_net, params, observed, gsp.speeds)
        assert gap < 1e-6

    def test_heterogeneous_world(self, small_world):
        net = small_world["network"]
        params = small_world["params"]
        observed = {
            0: float(params.mu[0] * 0.6),
            9: float(params.mu[9] * 1.3),
            21: float(params.mu[21] * 0.9),
        }
        gsp = propagate(
            net, params, observed, GSPConfig(epsilon=1e-11, max_sweeps=8000)
        )
        gap = gsp_optimality_gap(net, params, observed, gsp.speeds)
        assert gap < 1e-5

    @pytest.mark.parametrize(
        "schedule", [GSPSchedule.BFS, GSPSchedule.BFS_COLORED, GSPSchedule.RANDOM]
    )
    def test_every_schedule_reaches_exact_optimum(self, grid_net, schedule):
        params = flat_slot(grid_net, rho=0.5)
        observed = {12: 20.0}
        gsp = propagate(
            grid_net,
            params,
            observed,
            GSPConfig(
                epsilon=1e-11, max_sweeps=8000, schedule=schedule, seed=2
            ),
        )
        gap = gsp_optimality_gap(grid_net, params, observed, gsp.speeds)
        assert gap < 1e-6

    def test_gap_detects_bad_solution(self, grid_net):
        params = flat_slot(grid_net)
        observed = {0: 30.0}
        wrong = params.mu.copy()
        wrong[0] = 30.0
        wrong[1] = 999.0
        gap = gsp_optimality_gap(grid_net, params, observed, wrong)
        assert gap > 100

    def test_gap_shape_check(self, grid_net):
        params = flat_slot(grid_net)
        with pytest.raises(ModelError):
            gsp_optimality_gap(grid_net, params, {}, np.ones(3))


class TestExactVsLikelihood:
    def test_exact_solution_maximizes_pseudo_objective(self, small_world):
        """No perturbation can improve the single-count joint objective
        (the one Eq. 18's update actually maximizes)."""
        net = small_world["network"]
        params = small_world["params"]
        observed = {2: float(params.mu[2] * 0.8)}
        speeds = exact_conditional_mean(net, params, observed)
        base = pseudo_objective(net, params, speeds)
        rng = np.random.default_rng(0)
        for road in rng.choice(net.n_roads, size=10, replace=False):
            if int(road) in observed:
                continue
            for delta in (-0.5, 0.5):
                perturbed = speeds.copy()
                perturbed[int(road)] += delta
                assert pseudo_objective(net, params, perturbed) <= base + 1e-9
        # Random joint perturbations cannot improve it either (global
        # optimum of a concave quadratic).
        for _ in range(5):
            perturbed = speeds + rng.normal(scale=0.3, size=net.n_roads)
            for r in observed:
                perturbed[r] = speeds[r]
            assert pseudo_objective(net, params, perturbed) <= base + 1e-9

    def test_pseudo_objective_is_half_edge_weighted_eq5(self, grid_net):
        """Relationship to Eq. 5: same periodic term, half the edge term."""
        params = flat_slot(grid_net, rho=0.4)
        rng = np.random.default_rng(1)
        speeds = params.mu + rng.normal(scale=2.0, size=grid_net.n_roads)
        eq5 = params.log_likelihood(grid_net, speeds)
        single = pseudo_objective(grid_net, params, speeds)
        # eq5 = periodic + 2*corr ; single = periodic + corr.
        periodic = -float(np.sum(((speeds - params.mu) / params.sigma) ** 2))
        corr_single = single - periodic
        assert eq5 == pytest.approx(periodic + 2 * corr_single, rel=1e-9)
