"""Unit tests for repro.crowd.aggregation."""

import numpy as np
import pytest

from repro.errors import CrowdError
from repro.crowd.aggregation import Aggregator, aggregate_answers


class TestAggregateAnswers:
    def test_mean(self):
        assert aggregate_answers([10, 20, 30], Aggregator.MEAN) == pytest.approx(20.0)

    def test_median(self):
        assert aggregate_answers([10, 20, 90], Aggregator.MEDIAN) == pytest.approx(20.0)

    def test_trimmed_mean_drops_outliers(self):
        answers = [50, 51, 49, 52, 48, 500, 1]
        trimmed = aggregate_answers(answers, Aggregator.TRIMMED_MEAN)
        mean = aggregate_answers(answers, Aggregator.MEAN)
        assert abs(trimmed - 50) < abs(mean - 50)

    def test_trimmed_mean_small_sets_fall_back_to_mean(self):
        assert aggregate_answers([10, 30], Aggregator.TRIMMED_MEAN) == pytest.approx(20.0)

    def test_single_answer(self):
        for agg in Aggregator:
            assert aggregate_answers([42.0], agg) == pytest.approx(42.0)

    def test_empty_rejected(self):
        with pytest.raises(CrowdError):
            aggregate_answers([])

    def test_nonpositive_rejected(self):
        with pytest.raises(CrowdError):
            aggregate_answers([10, -1])

    def test_nan_rejected(self):
        with pytest.raises(CrowdError):
            aggregate_answers([10, float("nan")])

    def test_median_robust_to_one_outlier(self, rng):
        answers = list(rng.normal(60, 2, size=9)) + [600.0]
        assert aggregate_answers(answers, Aggregator.MEDIAN) == pytest.approx(60, rel=0.1)
