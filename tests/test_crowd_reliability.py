"""Unit tests for data-driven cost / reliability estimation."""

import numpy as np
import pytest

import repro
from repro.errors import CrowdError
from repro.crowd.reliability import (
    collect_answer_history,
    estimate_costs_from_answers,
    estimate_worker_noise,
    required_answers,
)
from repro.datasets import truth_oracle_for


class TestEstimateWorkerNoise:
    def test_perfect_worker_zero_noise(self):
        assert estimate_worker_noise([50, 60], [50, 60]) == 0.0

    def test_known_noise_recovered(self, rng):
        truth = 60.0
        noise = 0.1
        answers = truth * (1 + rng.normal(0, noise, 500))
        estimated = estimate_worker_noise(answers, [truth] * 500)
        assert estimated == pytest.approx(noise, rel=0.15)

    def test_single_pair(self):
        assert estimate_worker_noise([55.0], [50.0]) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(CrowdError):
            estimate_worker_noise([], [])
        with pytest.raises(CrowdError):
            estimate_worker_noise([50], [50, 60])
        with pytest.raises(CrowdError):
            estimate_worker_noise([50], [0])


class TestRequiredAnswers:
    def test_zero_noise_needs_one(self):
        assert required_answers(0.0) == 1

    def test_inverse_square_law(self):
        # noise 0.1, target 0.05 -> n = (0.1/0.05)^2 = 4.
        assert required_answers(0.1, 0.05) == 4
        # noise 0.15 -> n = 9.
        assert required_answers(0.15, 0.05) == 9

    def test_capped(self):
        assert required_answers(1.0, 0.05, max_answers=10) == 10

    def test_monotone_in_noise(self):
        counts = [required_answers(s, 0.05) for s in (0.02, 0.05, 0.1, 0.2)]
        assert counts == sorted(counts)

    def test_validation(self):
        with pytest.raises(CrowdError):
            required_answers(-0.1)
        with pytest.raises(CrowdError):
            required_answers(0.1, target_relative_error=0)
        with pytest.raises(CrowdError):
            required_answers(0.1, max_answers=0)


class TestEstimateCostsFromAnswers:
    def test_noisy_roads_cost_more(self, line_net, rng):
        quiet = list(60 * (1 + rng.normal(0, 0.02, 40)))
        loud = list(60 * (1 + rng.normal(0, 0.25, 40)))
        model = estimate_costs_from_answers(
            line_net,
            {0: quiet, 1: loud},
            {0: 60.0, 1: 60.0},
        )
        assert model.cost_of(1) > model.cost_of(0)

    def test_default_for_unknown_roads(self, line_net):
        model = estimate_costs_from_answers(line_net, {}, {}, default_cost=7)
        assert all(model.cost_of(i) == 7 for i in range(6))

    def test_missing_truth_rejected(self, line_net):
        with pytest.raises(CrowdError):
            estimate_costs_from_answers(line_net, {0: [50.0]}, {})

    def test_unknown_road_rejected(self, line_net):
        with pytest.raises(CrowdError):
            estimate_costs_from_answers(line_net, {9: [50.0]}, {9: 50.0})

    def test_bad_default(self, line_net):
        with pytest.raises(CrowdError):
            estimate_costs_from_answers(line_net, {}, {}, default_cost=0)


class TestCollectAnswerHistory:
    def test_round_trip_from_market(self, tiny_dataset, tiny_system):
        """Receipts from real probes feed the cost estimator."""
        market = repro.CrowdMarket(
            tiny_dataset.network,
            tiny_dataset.pool,
            tiny_dataset.cost_model,
            rng=np.random.default_rng(1),
        )
        truth = truth_oracle_for(tiny_dataset.test_history, 0, tiny_dataset.slot)
        result = tiny_system.answer_query(
            tiny_dataset.queried, tiny_dataset.slot, budget=25,
            market=market, truth=truth,
        )
        answers, truths = collect_answer_history(result.receipts)
        assert set(answers) == set(result.selection.selected)
        model = estimate_costs_from_answers(
            tiny_dataset.network, answers, truths
        )
        lo, hi = model.cost_range
        assert 1 <= lo <= hi <= 10

    def test_multiple_receipts_concatenate(self, tiny_dataset, tiny_system):
        market = repro.CrowdMarket(
            tiny_dataset.network,
            tiny_dataset.pool,
            tiny_dataset.cost_model,
            rng=np.random.default_rng(2),
        )
        truth = truth_oracle_for(tiny_dataset.test_history, 1, tiny_dataset.slot)
        _, receipts_a = market.probe([0], truth)
        _, receipts_b = market.probe([0], truth)
        answers, _ = collect_answer_history(receipts_a + receipts_b)
        assert len(answers[0]) == 2 * tiny_dataset.cost_model.cost_of(0)
