"""Unit tests for repro.network.routing and routed trajectories."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError, NetworkError, RoadNotFoundError
from repro.network.routing import (
    RouteWeight,
    k_hop_neighborhood,
    shortest_route,
    travel_time_minutes,
)
from repro.traffic.trajectories import TrajectoryGenerator, extract_road_speeds


class TestShortestRoute:
    def test_hops_on_line(self, line_net):
        route, cost = shortest_route(line_net, 0, 4)
        assert route == [0, 1, 2, 3, 4]
        assert cost == 4.0

    def test_source_equals_target(self, line_net):
        route, cost = shortest_route(line_net, 3, 3)
        assert route == [3]
        assert cost == 0.0

    def test_route_roads_adjacent(self, grid_net):
        route, _ = shortest_route(grid_net, 0, 24)
        for a, b in zip(route, route[1:]):
            assert grid_net.are_adjacent(a, b)

    def test_no_route_raises(self):
        roads = [repro.Road(road_id=f"r{i}") for i in range(3)]
        net = repro.TrafficNetwork(roads, [("r0", "r1")])
        with pytest.raises(NetworkError, match="no route"):
            shortest_route(net, 0, 2)

    def test_invalid_endpoint(self, line_net):
        with pytest.raises(RoadNotFoundError):
            shortest_route(line_net, 0, 99)

    def test_time_weight_avoids_jam(self):
        # Square 0-1-3 / 0-2-3; road 1 is jammed -> route via road 2.
        net = repro.grid_network(2, 2)
        speeds = np.array([50.0, 2.0, 50.0, 50.0])
        route, _ = shortest_route(
            net, 0, 3, weight=RouteWeight.TIME, speeds_kmh=speeds
        )
        assert route == [0, 2, 3]

    def test_time_weight_requires_speeds(self, line_net):
        with pytest.raises(NetworkError, match="needs"):
            shortest_route(line_net, 0, 2, weight=RouteWeight.TIME)

    def test_length_weight(self, line_net):
        route, cost = shortest_route(line_net, 0, 2, weight=RouteWeight.LENGTH)
        # Entering roads 1 and 2, each 0.5 km.
        assert cost == pytest.approx(1.0)


class TestTravelTime:
    def test_known_route(self, line_net):
        speeds = np.full(6, 30.0)  # 0.5 km at 30 km/h = 1 minute/road
        minutes = travel_time_minutes(line_net, [0, 1, 2], speeds)
        assert minutes == pytest.approx(3.0)

    def test_exclude_first(self, line_net):
        speeds = np.full(6, 30.0)
        minutes = travel_time_minutes(line_net, [0, 1, 2], speeds, include_first=False)
        assert minutes == pytest.approx(2.0)

    def test_non_adjacent_rejected(self, line_net):
        with pytest.raises(NetworkError):
            travel_time_minutes(line_net, [0, 3], np.full(6, 30.0))

    def test_empty_route_rejected(self, line_net):
        with pytest.raises(NetworkError):
            travel_time_minutes(line_net, [], np.full(6, 30.0))

    def test_congestion_slows_route(self, line_net):
        free = travel_time_minutes(line_net, [0, 1, 2], np.full(6, 60.0))
        jammed_speeds = np.full(6, 60.0)
        jammed_speeds[1] = 10.0
        jammed = travel_time_minutes(line_net, [0, 1, 2], jammed_speeds)
        assert jammed > free


class TestKHopNeighborhood:
    def test_zero_is_self(self, grid_net):
        assert k_hop_neighborhood(grid_net, 12, 0) == [12]

    def test_line_two_hops(self, line_net):
        assert k_hop_neighborhood(line_net, 2, 2) == [0, 1, 2, 3, 4]

    def test_negative_k(self, grid_net):
        with pytest.raises(NetworkError):
            k_hop_neighborhood(grid_net, 0, -1)


class TestRoutedTrajectories:
    def test_route_is_followed_in_order(self, grid_net):
        generator = TrajectoryGenerator(
            grid_net, np.full(grid_net.n_roads, 36.0), seed=1,
            gps_noise_fraction=0.0, fix_interval_s=5.0,
        )
        route, _ = shortest_route(grid_net, 0, 24)
        trace = generator.drive_route("v0", route)
        visited = trace.roads_visited()
        assert visited == route

    def test_extracted_speeds_match_field(self, line_net):
        speeds = np.array([20.0, 40.0, 60.0, 30.0, 50.0, 25.0])
        generator = TrajectoryGenerator(
            line_net, speeds, gps_noise_fraction=0.0, fix_interval_s=2.0, seed=2
        )
        trace = generator.drive_route("v0", [0, 1, 2, 3, 4, 5])
        observed = extract_road_speeds(line_net, trace, min_dwell_s=10.0)
        for road, value in observed.items():
            assert value == pytest.approx(speeds[road], rel=0.2)

    def test_invalid_routes(self, line_net):
        generator = TrajectoryGenerator(
            line_net, np.full(6, 30.0), seed=3
        )
        with pytest.raises(DatasetError):
            generator.drive_route("v0", [])
        with pytest.raises(DatasetError):
            generator.drive_route("v0", [0, 3])

    def test_single_road_route(self, line_net):
        generator = TrajectoryGenerator(
            line_net, np.full(6, 30.0), seed=4, gps_noise_fraction=0.0
        )
        trace = generator.drive_route("v0", [2])
        assert set(trace.roads_visited()) == {2}
        # 0.5 km at 30 km/h = 60 s.
        assert trace.duration_s == pytest.approx(60.0, abs=10.0)
