"""Warm-started GSP: seeding, outcomes, and refresh invalidation.

A converged propagation's field is cached per ``(parameter digest,
R^c)`` and reused as the next same-shaped query's starting iterate.
These tests pin the semantics:

* the ``gsp.warm_start`` outcome counter distinguishes ``used`` /
  ``miss`` / ``mismatch`` / ``disabled``;
* a warm-started answer converges to the same fixed point as a cold
  start within the solver's ε (never asserted bit-identical — that is
  exactly why legacy spellings default the feature off);
* a hot refresh drops the touched slot's seed inside the same atomic
  publish, so a post-refresh query can never be seeded from pre-refresh
  parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.request import EstimationRequest


@pytest.fixture()
def system(tiny_dataset):
    """A fresh fitted system per test — these tests refresh the store."""
    return repro.CrowdRTSE.fit(
        tiny_dataset.network, tiny_dataset.train_history, slots=[tiny_dataset.slot]
    )


@pytest.fixture()
def metrics():
    obs.configure(metrics=True, tracing=False)
    obs.get_metrics().clear()
    yield obs.get_metrics()
    obs.get_metrics().clear()
    obs.configure(metrics=False, tracing=False)


def _outcomes(registry):
    return {
        e["labels"]["outcome"]: e["value"]
        for e in registry.snapshot()["counters"]
        if e["name"] == "gsp.warm_start"
    }


def _answer(system, data, *, warm_start=True, budget=15, seed=3):
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(seed),
    )
    truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
    return system.answer_query(
        EstimationRequest(
            queried=data.queried,
            slot=data.slot,
            budget=budget,
            warm_start=warm_start,
        ),
        market=market,
        truth=truth,
    )


class TestOutcomes:
    def test_first_query_misses_second_uses(self, system, tiny_dataset, metrics):
        _answer(system, tiny_dataset)
        assert _outcomes(metrics) == {"miss": 1}
        _answer(system, tiny_dataset)
        assert _outcomes(metrics) == {"miss": 1, "used": 1}

    def test_different_selection_mismatches(self, system, tiny_dataset, metrics):
        _answer(system, tiny_dataset, budget=15)
        # A different budget buys a different R^c under the same digest.
        _answer(system, tiny_dataset, budget=25)
        outcomes = _outcomes(metrics)
        assert outcomes.get("mismatch", 0) == 1

    def test_opted_out_request_is_disabled(self, system, tiny_dataset, metrics):
        _answer(system, tiny_dataset, warm_start=False)
        assert _outcomes(metrics) == {"disabled": 1}

    def test_disabled_request_stores_no_seed(self, system, tiny_dataset, metrics):
        _answer(system, tiny_dataset, warm_start=False)
        _answer(system, tiny_dataset, warm_start=True)
        outcomes = _outcomes(metrics)
        assert outcomes == {"disabled": 1, "miss": 1}


class TestEquivalence:
    def test_warm_answer_matches_cold_within_epsilon(self, system, tiny_dataset):
        cold = _answer(system, tiny_dataset, warm_start=False)
        _answer(system, tiny_dataset)  # populate the seed
        warm = _answer(system, tiny_dataset)
        assert warm.probes == cold.probes
        # Same fixed point within the solver's tolerance — the contract
        # is ε-equivalence, not bit-identity.
        np.testing.assert_allclose(
            warm.full_field_kmh, cold.full_field_kmh, rtol=0, atol=1e-2
        )


class TestRefreshInvalidation:
    def test_refresh_drops_touched_slot_seed(self, system, tiny_dataset, metrics):
        data = tiny_dataset
        _answer(system, data)
        _answer(system, data)
        assert _outcomes(metrics)["used"] == 1
        local = data.test_history.local_slot(data.slot)
        system.refresh({data.slot: data.test_history.day(0)[local]})
        _answer(system, data)
        # Post-refresh digest is new: the old seed is unreachable and
        # was dropped in the same publish, so this is a miss, not a hit
        # off stale parameters.
        assert _outcomes(metrics) == {"miss": 2, "used": 1}

    def test_snapshot_warm_field_misses_after_refresh(self, system, tiny_dataset):
        data = tiny_dataset
        result = _answer(system, data)
        observed_key = frozenset(result.probes)
        snapshot = system.store.current()
        field, outcome = snapshot.warm_field(data.slot, observed_key)
        assert outcome == "hit" and field is not None
        local = data.test_history.local_slot(data.slot)
        system.refresh({data.slot: data.test_history.day(1)[local]})
        refreshed = system.store.current()
        field, outcome = refreshed.warm_field(data.slot, observed_key)
        assert outcome == "miss" and field is None
