"""Unit/integration tests for repro.core.pipeline (CrowdRTSE facade)."""

import numpy as np
import pytest

import repro
from repro.core.correlation import CorrelationTable
from repro.core.store import ModelStore
from repro import errors
from repro.errors import ModelError, SelectionError
from repro.datasets import truth_oracle_for


@pytest.fixture()
def market(tiny_dataset):
    return repro.CrowdMarket(
        tiny_dataset.network,
        tiny_dataset.pool,
        tiny_dataset.cost_model,
        rng=np.random.default_rng(0),
    )


@pytest.fixture()
def truth(tiny_dataset):
    return truth_oracle_for(tiny_dataset.test_history, 0, tiny_dataset.slot)


class TestFit:
    def test_fit_builds_model_and_table(self, tiny_dataset, tiny_system):
        assert tiny_dataset.slot in tiny_system.model
        assert tiny_dataset.slot in tiny_system.correlations.slots

    def test_network_mismatch_rejected(self, tiny_system, grid_net):
        with pytest.raises(ModelError):
            repro.CrowdRTSE(grid_net, tiny_system.model, tiny_system.correlations)

    def test_fit_publishes_store_version_1(self, tiny_system):
        assert tiny_system.store.version == 1
        assert tiny_system.store.current().slots == tiny_system.model.slots

    def test_fit_exposes_diagnostics(self, tiny_dataset, tiny_system):
        diags = tiny_system.fit_diagnostics
        assert diags is not None and tiny_dataset.slot in diags
        assert diags[tiny_dataset.slot].iterations >= 1

    def test_correlations_is_lazy_table_view(self, tiny_dataset, tiny_system):
        table = tiny_system.correlations
        assert isinstance(table, CorrelationTable)
        n = tiny_dataset.n_roads
        assert table.matrix(tiny_dataset.slot).shape == (n, n)


class TestLegacyConstruction:
    def test_model_plus_matching_table_adopted(self, tiny_dataset, tiny_system):
        """The eager table's matrices seed the store: nothing re-derives."""
        model = tiny_system.model
        table = CorrelationTable.precompute(model, slots=[tiny_dataset.slot])
        system = repro.CrowdRTSE(tiny_dataset.network, model, table)
        np.testing.assert_allclose(
            system.correlations.matrix(tiny_dataset.slot),
            table.matrix(tiny_dataset.slot),
        )
        assert system.store.stats.correlation_derivations == 0
        assert system.fit_diagnostics is None

    def test_stale_table_warns_and_refuses_to_serve(
        self, tiny_dataset, tiny_system, market, truth
    ):
        """A Γ_R generation that mismatches the model is a trap, not a bug."""
        model = tiny_system.model
        table = CorrelationTable.precompute(model, slots=[tiny_dataset.slot])
        stale_model = repro.refresh_model(
            tiny_dataset.network,
            model,
            {tiny_dataset.slot: tiny_dataset.test_history.day(0)[
                tiny_dataset.test_history.local_slot(tiny_dataset.slot)
            ]},
            learning_rate=0.5,
        )
        errors.reset_deprecation_warnings("pipeline.legacy_model_table")
        with pytest.warns(DeprecationWarning, match="stale"):
            system = repro.CrowdRTSE(tiny_dataset.network, stale_model, table)
        with pytest.raises(ModelError, match="digest mismatch"):
            system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=15,
                market=market,
                truth=truth,
            )

    def test_refresh_clears_the_stale_trap(self, tiny_dataset, tiny_system,
                                           market, truth):
        model = tiny_system.model
        table = CorrelationTable.precompute(model, slots=[tiny_dataset.slot])
        sample = tiny_dataset.test_history.day(0)[
            tiny_dataset.test_history.local_slot(tiny_dataset.slot)
        ]
        stale_model = repro.refresh_model(
            tiny_dataset.network, model, {tiny_dataset.slot: sample},
            learning_rate=0.5,
        )
        errors.reset_deprecation_warnings("pipeline.legacy_model_table")
        with pytest.warns(DeprecationWarning):
            system = repro.CrowdRTSE(tiny_dataset.network, stale_model, table)
        system.refresh({tiny_dataset.slot: sample})
        result = system.answer_query(
            tiny_dataset.queried, tiny_dataset.slot, budget=15,
            market=market, truth=truth,
        )
        assert np.all(np.isfinite(result.estimates_kmh))


class TestRefresh:
    def test_refresh_publishes_new_version(
        self, tiny_dataset, tiny_system, market, truth
    ):
        # A fresh store over the fitted parameters, so the shared
        # session fixture's own store is left untouched.
        system = repro.CrowdRTSE(
            tiny_dataset.network, store=ModelStore(tiny_system.model)
        )
        local = tiny_dataset.test_history.local_slot(tiny_dataset.slot)
        mu_before = system.model.slot(tiny_dataset.slot).mu.copy()
        snapshot = system.refresh(
            {tiny_dataset.slot: tiny_dataset.test_history.day(0)[local]},
            learning_rate=0.3,
        )
        assert snapshot.version == 2
        assert system.store.version == 2
        assert not np.allclose(
            system.model.slot(tiny_dataset.slot).mu, mu_before
        )
        result = system.answer_query(
            tiny_dataset.queried, tiny_dataset.slot, budget=15,
            market=market, truth=truth,
        )
        assert np.all(np.isfinite(result.estimates_kmh))

    def test_store_and_model_pair_rejected(self, tiny_dataset, tiny_system):
        with pytest.raises(ModelError, match="not both"):
            repro.CrowdRTSE(
                tiny_dataset.network,
                tiny_system.model,
                store=ModelStore(tiny_system.model),
            )


class TestBuildOCSInstance:
    def test_candidates_are_worker_roads(self, tiny_dataset, tiny_system, market):
        instance = tiny_system.build_ocs_instance(
            tiny_dataset.queried, tiny_dataset.slot, budget=20, market=market
        )
        assert instance.candidates == market.candidate_roads()
        assert instance.budget == 20

    def test_costs_match_cost_model(self, tiny_dataset, tiny_system, market):
        instance = tiny_system.build_ocs_instance(
            tiny_dataset.queried, tiny_dataset.slot, budget=20, market=market
        )
        expected = tiny_dataset.cost_model.costs_of(instance.candidates)
        assert np.allclose(instance.costs, expected)


class TestAnswerQuery:
    def test_basic_roundtrip(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=20,
            market=market,
            truth=truth,
        )
        assert result.queried == tiny_dataset.queried
        assert result.estimates_kmh.shape == (len(tiny_dataset.queried),)
        assert np.all(result.estimates_kmh > 0)
        assert result.full_field_kmh.shape == (tiny_dataset.n_roads,)

    def test_budget_respected(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=15,
            market=market,
            truth=truth,
        )
        assert result.budget_spent <= 15
        assert result.selection.cost <= 15

    def test_probed_roads_keep_probe_values(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=20,
            market=market,
            truth=truth,
        )
        for road, value in result.probes.items():
            assert result.full_field_kmh[road] == pytest.approx(value)

    @pytest.mark.parametrize("selector", ["hybrid", "ratio", "objective", "random"])
    def test_all_selectors_work(self, tiny_dataset, tiny_system, market, truth, selector):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=15,
            market=market,
            truth=truth,
            selector=selector,
            rng=np.random.default_rng(1),
        )
        assert result.budget_spent <= 15

    def test_unknown_selector_rejected(self, tiny_dataset, tiny_system, market, truth):
        with pytest.raises(SelectionError, match="unknown selector"):
            tiny_system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=15,
                market=market,
                truth=truth,
                selector="genie",
            )

    def test_estimate_of_lookup(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=20,
            market=market,
            truth=truth,
        )
        road = tiny_dataset.queried[3]
        assert result.estimate_of(road) == pytest.approx(
            result.estimates_kmh[3]
        )
        with pytest.raises(ModelError):
            result.estimate_of(10_000)

    def test_receipts_align_with_selection(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=25,
            market=market,
            truth=truth,
        )
        assert {r.road_index for r in result.receipts} == set(result.selection.selected)
        for receipt in result.receipts:
            assert receipt.paid == tiny_dataset.cost_model.cost_of(receipt.road_index)
            assert len(receipt.answers) == receipt.paid

    def test_estimation_beats_pure_periodicity_on_average(
        self, tiny_dataset, tiny_system
    ):
        """GSP answers should beat Per over the test days (the headline)."""
        gsp_errors, per_errors = [], []
        params = tiny_system.model.slot(tiny_dataset.slot)
        for day in range(tiny_dataset.test_history.n_days):
            market = repro.CrowdMarket(
                tiny_dataset.network,
                tiny_dataset.pool,
                tiny_dataset.cost_model,
                rng=np.random.default_rng(day),
            )
            truth = truth_oracle_for(tiny_dataset.test_history, day, tiny_dataset.slot)
            result = tiny_system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=30,
                market=market,
                truth=truth,
            )
            truths = np.array([truth(q) for q in tiny_dataset.queried])
            gsp_errors.append(
                repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
            )
            per_errors.append(
                repro.mean_absolute_percentage_error(
                    params.mu[list(tiny_dataset.queried)], truths
                )
            )
        assert np.mean(gsp_errors) < np.mean(per_errors)
