"""Unit/integration tests for repro.core.pipeline (CrowdRTSE facade)."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError, SelectionError
from repro.datasets import truth_oracle_for


@pytest.fixture()
def market(tiny_dataset):
    return repro.CrowdMarket(
        tiny_dataset.network,
        tiny_dataset.pool,
        tiny_dataset.cost_model,
        rng=np.random.default_rng(0),
    )


@pytest.fixture()
def truth(tiny_dataset):
    return truth_oracle_for(tiny_dataset.test_history, 0, tiny_dataset.slot)


class TestFit:
    def test_fit_builds_model_and_table(self, tiny_dataset, tiny_system):
        assert tiny_dataset.slot in tiny_system.model
        assert tiny_dataset.slot in tiny_system.correlations.slots

    def test_network_mismatch_rejected(self, tiny_system, grid_net):
        with pytest.raises(ModelError):
            repro.CrowdRTSE(grid_net, tiny_system.model, tiny_system.correlations)


class TestBuildOCSInstance:
    def test_candidates_are_worker_roads(self, tiny_dataset, tiny_system, market):
        instance = tiny_system.build_ocs_instance(
            tiny_dataset.queried, tiny_dataset.slot, budget=20, market=market
        )
        assert instance.candidates == market.candidate_roads()
        assert instance.budget == 20

    def test_costs_match_cost_model(self, tiny_dataset, tiny_system, market):
        instance = tiny_system.build_ocs_instance(
            tiny_dataset.queried, tiny_dataset.slot, budget=20, market=market
        )
        expected = tiny_dataset.cost_model.costs_of(instance.candidates)
        assert np.allclose(instance.costs, expected)


class TestAnswerQuery:
    def test_basic_roundtrip(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=20,
            market=market,
            truth=truth,
        )
        assert result.queried == tiny_dataset.queried
        assert result.estimates_kmh.shape == (len(tiny_dataset.queried),)
        assert np.all(result.estimates_kmh > 0)
        assert result.full_field_kmh.shape == (tiny_dataset.n_roads,)

    def test_budget_respected(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=15,
            market=market,
            truth=truth,
        )
        assert result.budget_spent <= 15
        assert result.selection.cost <= 15

    def test_probed_roads_keep_probe_values(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=20,
            market=market,
            truth=truth,
        )
        for road, value in result.probes.items():
            assert result.full_field_kmh[road] == pytest.approx(value)

    @pytest.mark.parametrize("selector", ["hybrid", "ratio", "objective", "random"])
    def test_all_selectors_work(self, tiny_dataset, tiny_system, market, truth, selector):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=15,
            market=market,
            truth=truth,
            selector=selector,
            rng=np.random.default_rng(1),
        )
        assert result.budget_spent <= 15

    def test_unknown_selector_rejected(self, tiny_dataset, tiny_system, market, truth):
        with pytest.raises(SelectionError, match="unknown selector"):
            tiny_system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=15,
                market=market,
                truth=truth,
                selector="genie",
            )

    def test_estimate_of_lookup(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=20,
            market=market,
            truth=truth,
        )
        road = tiny_dataset.queried[3]
        assert result.estimate_of(road) == pytest.approx(
            result.estimates_kmh[3]
        )
        with pytest.raises(ModelError):
            result.estimate_of(10_000)

    def test_receipts_align_with_selection(self, tiny_dataset, tiny_system, market, truth):
        result = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=25,
            market=market,
            truth=truth,
        )
        assert {r.road_index for r in result.receipts} == set(result.selection.selected)
        for receipt in result.receipts:
            assert receipt.paid == tiny_dataset.cost_model.cost_of(receipt.road_index)
            assert len(receipt.answers) == receipt.paid

    def test_estimation_beats_pure_periodicity_on_average(
        self, tiny_dataset, tiny_system
    ):
        """GSP answers should beat Per over the test days (the headline)."""
        gsp_errors, per_errors = [], []
        params = tiny_system.model.slot(tiny_dataset.slot)
        for day in range(tiny_dataset.test_history.n_days):
            market = repro.CrowdMarket(
                tiny_dataset.network,
                tiny_dataset.pool,
                tiny_dataset.cost_model,
                rng=np.random.default_rng(day),
            )
            truth = truth_oracle_for(tiny_dataset.test_history, day, tiny_dataset.slot)
            result = tiny_system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=30,
                market=market,
                truth=truth,
            )
            truths = np.array([truth(q) for q in tiny_dataset.queried])
            gsp_errors.append(
                repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
            )
            per_errors.append(
                repro.mean_absolute_percentage_error(
                    params.mu[list(tiny_dataset.queried)], truths
                )
            )
        assert np.mean(gsp_errors) < np.mean(per_errors)
