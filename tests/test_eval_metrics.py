"""Unit tests for repro.eval.metrics."""

import numpy as np
import pytest

import repro
from repro.errors import ExperimentError
from repro.eval.metrics import (
    DEFAULT_FER_THRESHOLD,
    absolute_percentage_errors,
    dape_histogram,
    false_estimation_rate,
    mean_absolute_percentage_error,
    summarize_errors,
)


class TestAPE:
    def test_exact_estimates_zero_error(self):
        y = np.array([50.0, 60.0])
        assert np.allclose(absolute_percentage_errors(y, y), 0.0)

    def test_known_values(self):
        ape = absolute_percentage_errors(np.array([55.0]), np.array([50.0]))
        assert ape[0] == pytest.approx(0.1)

    def test_symmetric_in_error_sign(self):
        over = absolute_percentage_errors(np.array([55.0]), np.array([50.0]))
        under = absolute_percentage_errors(np.array([45.0]), np.array([50.0]))
        assert over[0] == pytest.approx(under[0])

    def test_shape_mismatch(self):
        with pytest.raises(ExperimentError):
            absolute_percentage_errors(np.ones(3), np.ones(2))

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            absolute_percentage_errors(np.array([]), np.array([]))

    def test_nonpositive_truth_rejected(self):
        with pytest.raises(ExperimentError):
            absolute_percentage_errors(np.array([50.0]), np.array([0.0]))

    def test_nan_estimate_rejected(self):
        with pytest.raises(ExperimentError):
            absolute_percentage_errors(np.array([np.nan]), np.array([50.0]))


class TestMAPEAndFER:
    def test_mape_average(self):
        estimates = np.array([55.0, 60.0])
        truths = np.array([50.0, 50.0])
        assert mean_absolute_percentage_error(estimates, truths) == pytest.approx(0.15)

    def test_fer_default_threshold(self):
        assert DEFAULT_FER_THRESHOLD == 0.2

    def test_fer_counts_exceedances(self):
        estimates = np.array([50.0, 65.0, 80.0, 50.5])
        truths = np.full(4, 50.0)
        # APEs: 0, 0.3, 0.6, 0.01 -> 2 of 4 above 0.2.
        assert false_estimation_rate(estimates, truths) == pytest.approx(0.5)

    def test_fer_boundary_not_false(self):
        estimates = np.array([60.0])
        truths = np.array([50.0])  # APE exactly 0.2
        assert false_estimation_rate(estimates, truths) == 0.0

    def test_fer_custom_threshold(self):
        estimates = np.array([55.0])
        truths = np.array([50.0])
        assert false_estimation_rate(estimates, truths, threshold=0.05) == 1.0

    def test_fer_bad_threshold(self):
        with pytest.raises(ExperimentError):
            false_estimation_rate(np.ones(1), np.ones(1), threshold=0)


class TestDAPE:
    def test_fractions_sum_to_one(self, rng):
        truths = rng.uniform(30, 80, 200)
        estimates = truths * rng.uniform(0.7, 1.3, 200)
        fractions, _ = dape_histogram(estimates, truths)
        assert fractions.sum() == pytest.approx(1.0)

    def test_overflow_bin(self):
        estimates = np.array([500.0])
        truths = np.array([50.0])
        fractions, edges = dape_histogram(estimates, truths)
        assert fractions[-1] == 1.0

    def test_custom_bins(self):
        estimates = np.array([52.0, 58.0])
        truths = np.array([50.0, 50.0])  # APEs 0.04, 0.16
        fractions, edges = dape_histogram(estimates, truths, bins=[0.0, 0.1, 0.2])
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[1] == pytest.approx(0.5)

    def test_bad_bins(self):
        with pytest.raises(ExperimentError):
            dape_histogram(np.ones(1), np.ones(1), bins=[0.2, 0.1])


class TestSummary:
    def test_summary_consistency(self, rng):
        truths = rng.uniform(30, 80, 500)
        estimates = truths * rng.uniform(0.8, 1.4, 500)
        summary = summarize_errors(estimates, truths)
        assert summary.n_cases == 500
        assert summary.mape == pytest.approx(
            mean_absolute_percentage_error(estimates, truths)
        )
        assert summary.fer == pytest.approx(false_estimation_rate(estimates, truths))
        assert sum(summary.dape) == pytest.approx(1.0)
        assert summary.max_ape >= summary.mape
