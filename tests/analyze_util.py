"""Helpers for the static-analyzer tests: throwaway projects on disk."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List, Sequence

from tools.analyze.core import Project, Rule, run_rules


def write_files(root: Path, files: Dict[str, str]) -> None:
    """Write dedented sources under ``root`` without parsing them."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def make_project(
    root: Path,
    files: Dict[str, str],
    analyze: Sequence[str] = ("src",),
) -> Project:
    """Write dedented sources under ``root`` and parse the analyze paths.

    ``files`` maps repo-relative paths to sources; docs land on disk too
    (rules read them through ``project.doc_text``) but only the paths in
    ``analyze`` are parsed as modules.
    """
    write_files(root, files)
    return Project.load(root, [root / p for p in analyze])


def check(
    rule: Rule,
    root: Path,
    files: Dict[str, str],
    analyze: Sequence[str] = ("src",),
    with_engine: bool = False,
) -> List:
    """Run one rule over a throwaway project; returns findings.

    ``with_engine=True`` routes through :func:`run_rules` so suppression
    comments apply (rule.check alone is pre-suppression).
    """
    project = make_project(root, files, analyze)
    if with_engine:
        return run_rules(project, [rule]).findings
    return sorted(rule.check(project), key=lambda f: f.sort_key())
