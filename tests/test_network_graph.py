"""Unit tests for repro.network.graph."""

import numpy as np
import pytest

import repro
from repro.errors import EdgeNotFoundError, NetworkError, RoadNotFoundError
from repro.network.graph import DEFAULT_FREE_FLOW_KMH, Road, RoadKind, TrafficNetwork


def make_triangle():
    roads = [Road(road_id=f"r{i}") for i in range(3)]
    return TrafficNetwork(roads, [("r0", "r1"), ("r1", "r2"), ("r0", "r2")])


class TestRoad:
    def test_defaults(self):
        road = Road(road_id="a")
        assert road.kind is RoadKind.ARTERIAL
        assert road.length_km > 0

    def test_empty_id_rejected(self):
        with pytest.raises(NetworkError):
            Road(road_id="")

    def test_nonpositive_length_rejected(self):
        with pytest.raises(NetworkError):
            Road(road_id="a", length_km=0)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(NetworkError):
            Road(road_id="a", free_flow_kmh=-5)

    def test_with_kind_updates_speed(self):
        road = Road(road_id="a").with_kind(RoadKind.HIGHWAY)
        assert road.kind is RoadKind.HIGHWAY
        assert road.free_flow_kmh == DEFAULT_FREE_FLOW_KMH[RoadKind.HIGHWAY]


class TestConstruction:
    def test_basic_counts(self):
        net = make_triangle()
        assert net.n_roads == 3
        assert net.n_edges == 3
        assert len(net) == 3

    def test_duplicate_road_id_rejected(self):
        roads = [Road(road_id="a"), Road(road_id="a")]
        with pytest.raises(NetworkError, match="duplicate road id"):
            TrafficNetwork(roads, [])

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkError, match="self-loop"):
            TrafficNetwork([Road(road_id="a")], [("a", "a")])

    def test_duplicate_edge_rejected(self):
        roads = [Road(road_id="a"), Road(road_id="b")]
        with pytest.raises(NetworkError, match="duplicate edge"):
            TrafficNetwork(roads, [("a", "b"), ("b", "a")])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(RoadNotFoundError):
            TrafficNetwork([Road(road_id="a")], [("a", "zzz")])

    def test_edges_normalized_i_lt_j(self):
        net = make_triangle()
        assert all(i < j for i, j in net.edges)

    def test_equality_and_hash(self):
        assert make_triangle() == make_triangle()
        assert hash(make_triangle()) == hash(make_triangle())

    def test_inequality_different_edges(self):
        roads = [Road(road_id=f"r{i}") for i in range(3)]
        other = TrafficNetwork(roads, [("r0", "r1")])
        assert make_triangle() != other


class TestLookup:
    def test_index_roundtrip(self):
        net = make_triangle()
        for rid in net.road_ids:
            assert net.road_at(net.index_of(rid)).road_id == rid

    def test_unknown_id_raises(self):
        with pytest.raises(RoadNotFoundError):
            make_triangle().index_of("nope")

    def test_road_at_out_of_range(self):
        with pytest.raises(RoadNotFoundError):
            make_triangle().road_at(99)

    def test_contains(self):
        net = make_triangle()
        assert "r0" in net
        assert "zzz" not in net

    def test_indices_of_preserves_order(self):
        net = make_triangle()
        assert net.indices_of(["r2", "r0"]) == [2, 0]


class TestTopology:
    def test_neighbors_sorted(self, grid_net):
        for i in range(grid_net.n_roads):
            neigh = grid_net.neighbors(i)
            assert list(neigh) == sorted(neigh)

    def test_degree_matches_neighbors(self, grid_net):
        for i in range(grid_net.n_roads):
            assert grid_net.degree(i) == len(grid_net.neighbors(i))

    def test_are_adjacent_symmetric(self):
        net = make_triangle()
        assert net.are_adjacent(0, 1) and net.are_adjacent(1, 0)

    def test_edge_id_raises_for_non_adjacent(self, line_net):
        with pytest.raises(EdgeNotFoundError):
            line_net.edge_id(0, 5)

    def test_edge_id_order_insensitive(self):
        net = make_triangle()
        assert net.edge_id(0, 1) == net.edge_id(1, 0)

    def test_neighbors_out_of_range(self, line_net):
        with pytest.raises(RoadNotFoundError):
            line_net.neighbors(-1)


class TestBFS:
    def test_layers_on_line(self, line_net):
        layers = line_net.bfs_layers([0])
        assert layers == [[1], [2], [3], [4], [5]]

    def test_layers_from_middle(self, line_net):
        layers = line_net.bfs_layers([2])
        assert layers == [[1, 3], [0, 4], [5]]

    def test_layers_multi_source(self, line_net):
        layers = line_net.bfs_layers([0, 5])
        assert layers == [[1, 4], [2, 3]]

    def test_layers_empty_sources_collects_all(self, line_net):
        layers = line_net.bfs_layers([])
        assert layers == [list(range(6))]

    def test_hop_distances_line(self, line_net):
        dist = line_net.hop_distances([0])
        assert dist == [0, 1, 2, 3, 4, 5]

    def test_hop_distances_unreachable(self):
        roads = [Road(road_id="a"), Road(road_id="b")]
        net = TrafficNetwork(roads, [])
        assert net.hop_distances([0]) == [0, None]

    def test_bfs_unreachable_layer(self):
        roads = [Road(road_id=f"r{i}") for i in range(3)]
        net = TrafficNetwork(roads, [("r0", "r1")])
        layers = net.bfs_layers([0])
        assert layers == [[1], [2]]  # r2 unreachable, appended last


class TestComponents:
    def test_connected_grid(self, grid_net):
        assert grid_net.is_connected()
        assert len(grid_net.connected_components()) == 1

    def test_disconnected(self):
        roads = [Road(road_id=f"r{i}") for i in range(4)]
        net = TrafficNetwork(roads, [("r0", "r1"), ("r2", "r3")])
        comps = net.connected_components()
        assert len(comps) == 2
        assert frozenset({0, 1}) in comps

    def test_empty_network_not_connected(self):
        assert not TrafficNetwork([], []).is_connected()


class TestSubnetwork:
    def test_induced_edges(self, grid_net):
        ids = [grid_net.roads[i].road_id for i in (0, 1, 2, 5)]
        sub = grid_net.subnetwork(ids)
        assert sub.n_roads == 4
        # 0-1, 1-2, 0-5 survive in a 5-wide grid.
        assert sub.n_edges == 3

    def test_duplicate_selection_rejected(self, grid_net):
        with pytest.raises(NetworkError, match="duplicate"):
            grid_net.subnetwork(["r0", "r0"])

    def test_connected_subcomponent_size(self, grid_net):
        sub = grid_net.connected_subcomponent(10)
        assert sub.n_roads == 10
        assert sub.is_connected()

    def test_connected_subcomponent_too_large(self):
        roads = [Road(road_id=f"r{i}") for i in range(3)]
        net = TrafficNetwork(roads, [("r0", "r1")])
        with pytest.raises(NetworkError, match="only"):
            net.connected_subcomponent(3)

    def test_connected_subcomponent_bad_size(self, grid_net):
        with pytest.raises(NetworkError):
            grid_net.connected_subcomponent(0)


class TestNetworkxExport:
    def test_roundtrip_counts(self, grid_net):
        g = grid_net.to_networkx()
        assert g.number_of_nodes() == grid_net.n_roads
        assert g.number_of_edges() == grid_net.n_edges

    def test_node_attributes(self, grid_net):
        g = grid_net.to_networkx()
        attrs = g.nodes["r0"]
        assert set(attrs) >= {"kind", "length_km", "free_flow_kmh", "position"}
