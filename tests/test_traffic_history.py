"""Unit tests for repro.traffic.history."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.traffic.history import SpeedHistory


def make_history(n_days=5, n_slots=4, n_roads=3, offset=10, seed=0):
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(20, 80, size=(n_days, n_slots, n_roads)).astype(np.float32)
    ids = [f"r{i}" for i in range(n_roads)]
    return SpeedHistory(speeds, ids, slot_offset=offset)


class TestValidation:
    def test_shape_must_be_3d(self):
        with pytest.raises(DatasetError, match="3-d"):
            SpeedHistory(np.ones((3, 4)), ["a", "b", "c", "d"])

    def test_road_count_mismatch(self):
        with pytest.raises(DatasetError, match="roads"):
            SpeedHistory(np.ones((2, 2, 3)), ["a", "b"])

    def test_negative_speed_rejected(self):
        speeds = np.ones((2, 2, 2))
        speeds[0, 0, 0] = -1
        with pytest.raises(DatasetError, match="positive"):
            SpeedHistory(speeds, ["a", "b"])

    def test_nan_rejected(self):
        speeds = np.ones((2, 2, 2))
        speeds[1, 1, 1] = np.nan
        with pytest.raises(DatasetError, match="NaN"):
            SpeedHistory(speeds, ["a", "b"])

    def test_window_spill_rejected(self):
        with pytest.raises(DatasetError, match="spills"):
            SpeedHistory(np.ones((1, 10, 1)), ["a"], slot_offset=280)

    def test_bad_offset_rejected(self):
        with pytest.raises(DatasetError):
            SpeedHistory(np.ones((1, 1, 1)), ["a"], slot_offset=288)


class TestAccessors:
    def test_counts(self):
        hist = make_history()
        assert hist.n_days == 5
        assert hist.n_slots == 4
        assert hist.n_roads == 3
        assert hist.n_records == 60

    def test_global_slots(self):
        hist = make_history(offset=10, n_slots=4)
        assert list(hist.global_slots) == [10, 11, 12, 13]

    def test_slot_samples_shape(self):
        hist = make_history()
        assert hist.slot_samples(11).shape == (5, 3)

    def test_slot_out_of_window(self):
        hist = make_history(offset=10, n_slots=4)
        with pytest.raises(DatasetError, match="not covered"):
            hist.slot_samples(20)

    def test_day_access(self):
        hist = make_history()
        assert hist.day(0).shape == (4, 3)
        with pytest.raises(DatasetError):
            hist.day(5)

    def test_values_read_only(self):
        hist = make_history()
        with pytest.raises(ValueError):
            hist.values[0, 0, 0] = 1.0


class TestStatistics:
    def test_empirical_mean_matches_numpy(self):
        hist = make_history(seed=1)
        samples = hist.slot_samples(12)
        assert np.allclose(hist.empirical_mean(12), samples.mean(axis=0))

    def test_empirical_std_floored(self):
        speeds = np.full((4, 1, 2), 50.0, dtype=np.float32)
        hist = SpeedHistory(speeds, ["a", "b"], slot_offset=0)
        assert np.all(hist.empirical_std(0) >= 1e-3)

    def test_empirical_correlation_perfect(self):
        base = np.linspace(30, 60, 6)
        speeds = np.stack([base, base * 1.5], axis=1)[:, None, :]
        hist = SpeedHistory(speeds.astype(np.float32), ["a", "b"], slot_offset=0)
        assert hist.empirical_correlation(0, 0, 1) == pytest.approx(1.0, abs=1e-6)

    def test_empirical_correlation_zero_variance(self):
        speeds = np.ones((4, 1, 2), dtype=np.float32) * 40
        hist = SpeedHistory(speeds, ["a", "b"], slot_offset=0)
        assert hist.empirical_correlation(0, 0, 1) == 0.0


class TestSplitAndRestrict:
    def test_split_days(self):
        hist = make_history(n_days=6)
        train, test = hist.split_days(4)
        assert train.n_days == 4 and test.n_days == 2
        assert np.allclose(train.values, hist.values[:4])

    def test_split_invalid(self):
        hist = make_history(n_days=3)
        with pytest.raises(DatasetError):
            hist.split_days(0)
        with pytest.raises(DatasetError):
            hist.split_days(3)

    def test_restrict_roads(self, grid_net):
        rng = np.random.default_rng(2)
        speeds = rng.uniform(20, 80, size=(3, 2, grid_net.n_roads)).astype(np.float32)
        hist = SpeedHistory(speeds, grid_net.road_ids, slot_offset=0)
        sub = grid_net.connected_subcomponent(6)
        restricted = hist.restrict_roads(sub)
        assert restricted.n_roads == 6
        assert restricted.road_ids == sub.road_ids

    def test_restrict_unknown_road(self, line_net):
        hist = make_history(n_roads=3)
        with pytest.raises(DatasetError, match="no record"):
            hist.restrict_roads(line_net)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        hist = make_history(seed=3)
        path = tmp_path / "hist.npz"
        hist.save(path)
        loaded = SpeedHistory.load(path)
        assert loaded.road_ids == hist.road_ids
        assert loaded.slot_offset == hist.slot_offset
        assert np.allclose(loaded.values, hist.values)
