"""Concurrency soak: streaming refresh racing concurrent serving.

Modeled on test_serve_concurrency.py, with the writer replaced by the
real streaming path: the main thread replays a synthesized day through
an async :class:`StreamRefresher` (bounded queue, background publisher)
while client threads hammer the same system's :class:`QueryService`.

Required outcomes (ISSUE 6 acceptance):

* the replay sustains >= 2k events/sec while serving stays concurrent;
* every ticket resolves with finite estimates and no snapshot tearing
  (each served version lies between the store versions bracketing the
  request);
* the watermark is monotone across the replay and the publish-lag
  (freshness) gauge is exported and bounded by the lateness horizon
  plus the feed's slot granularity — lag is event time, so it cannot
  drift with wall-clock load.

Run in CI with faulthandler and a hard timeout so a deadlock shows a
stack dump instead of hanging the job.
"""

from __future__ import annotations

import threading
import time
from typing import List

import numpy as np
import pytest

import repro
from repro import obs
from repro.serve import QueryService, ServeConfig, ServeRequest
from repro.stream import (
    SLOT_SECONDS,
    StreamConfig,
    StreamRefresher,
    synthesize_day_feed,
)

MIN_EVENTS_PER_S = 2000.0
N_CLIENTS = 3
REQUESTS_PER_CLIENT = 4
LATENESS_S = 60.0


@pytest.fixture(scope="module")
def world(tiny_dataset):
    """A system fitted on the dataset's full slot window (so the whole
    synthesized day is publishable), plus serving ingredients."""
    slots = list(tiny_dataset.train_history.global_slots)
    system = repro.CrowdRTSE.fit(
        tiny_dataset.network, tiny_dataset.train_history, slots=slots
    )
    return {
        "data": tiny_dataset,
        "system": system,
        "slots": slots,
        "truth": repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        ),
    }


def _request(world, seed: int) -> ServeRequest:
    data = world["data"]
    return ServeRequest(
        queried=tuple(data.queried[:6]),
        slot=data.slot,
        budget=12,
        market=repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(seed),
        ),
        truth=world["truth"],
        rng=np.random.default_rng(seed),
    )


def test_streaming_refresh_while_serving(world):
    data = world["data"]
    system = world["system"]
    feed = synthesize_day_feed(
        data.test_history,
        0,
        slots=world["slots"],
        coverage=0.6,
        seed=41,
    )
    events = sum(len(snapshot) for snapshot in feed)
    assert events >= 500, "feed too small to be a meaningful soak"

    obs.configure(metrics=True)
    obs.get_metrics().clear()
    failures: List[str] = []
    versions: List[int] = []
    lock = threading.Lock()

    def client(seed: int) -> None:
        service_local = service  # bound after service starts
        for k in range(REQUESTS_PER_CLIENT):
            floor = system.store.version
            try:
                result = service_local.serve(_request(world, seed * 100 + k))
            except repro.ReproError as exc:
                failures.append(f"client {seed}: {exc!r}")
                return
            ceiling = system.store.version
            if not np.all(np.isfinite(result.estimates_kmh)):
                failures.append("non-finite estimates under streaming refresh")
                return
            if not (floor <= result.model_version <= ceiling):
                failures.append(
                    f"torn snapshot: served v{result.model_version} "
                    f"outside [{floor}, {ceiling}]"
                )
                return
            with lock:
                versions.append(result.model_version)

    # One queued job + one slot per publish: when slot j's publish runs,
    # the feed can have submitted at most slots j+1 (queued) and j+2
    # (blocked in backpressure), so the watermark sits no further than
    # slot j+2's close point — a derivable freshness bound.
    config = StreamConfig(
        lateness_s=LATENESS_S,
        learning_rate=0.2,
        max_pending=1,
        max_slots_per_publish=1,
    )
    watermarks: List[float] = []
    try:
        with QueryService(
            system, config=ServeConfig(num_workers=3)
        ) as service:
            clients = [
                threading.Thread(target=client, args=(seed,), daemon=True)
                for seed in range(N_CLIENTS)
            ]
            refresher = StreamRefresher(system, config)
            for thread in clients:
                thread.start()
            started = time.perf_counter()
            for snapshot in feed:
                refresher.ingest(snapshot)
                watermarks.append(refresher.log.watermark)
            stats = refresher.close()
            elapsed = time.perf_counter() - started
            for thread in clients:
                thread.join(timeout=60.0)
                assert not thread.is_alive(), "client thread hung"

        assert failures == []
        # Throughput floor while serving concurrently.
        assert events / elapsed >= MIN_EVENTS_PER_S, (
            f"replayed {events} events in {elapsed:.3f}s "
            f"({events / elapsed:.0f}/s) — below the "
            f"{MIN_EVENTS_PER_S:.0f}/s floor"
        )
        # Every client resolved every request.
        assert len(versions) == N_CLIENTS * REQUESTS_PER_CLIENT

        # The stream actually refreshed the model, bounded-batch style.
        assert stats.publishes >= 2
        assert stats.published_slots == len(world["slots"])
        assert system.store.version == 1 + stats.publishes
        assert stats.max_pending_seen <= config.max_pending

        # Watermark (event-time clock) is monotone over the replay.
        assert all(a <= b for a, b in zip(watermarks, watermarks[1:]))

        # Freshness: one lag sample per publish, max is the running max,
        # and the lag stays bounded: two slots of backpressure exposure
        # plus the lateness horizon plus one snapshot window of
        # watermark granularity — in event time, independent of load.
        assert len(stats.lag_history) == stats.publishes
        assert all(lag >= 0.0 for lag in stats.lag_history)
        assert stats.max_publish_lag_s == max(stats.lag_history)
        bound = 2 * SLOT_SECONDS + LATENESS_S + 120.0
        assert stats.max_publish_lag_s <= bound

        # The freshness gauge is exported and mirrors the final publish.
        metrics = obs.get_metrics()
        exported_gauges = {g["name"] for g in metrics.snapshot()["gauges"]}
        assert "stream.publish_lag_seconds" in exported_gauges
        gauge = metrics.gauge("stream.publish_lag_seconds").value
        assert gauge == pytest.approx(stats.last_publish_lag_s)
        assert 0.0 <= gauge <= bound
        assert metrics.gauge("stream.watermark_seconds").value == watermarks[-1]
        accepted = metrics.counter(
            "stream.messages", {"outcome": "accepted"}
        ).value
        assert accepted == refresher.log.accepted > 0
    finally:
        obs.disable_all()
        obs.get_metrics().clear()
