"""Unit/integration tests for batched query answering."""

import numpy as np
import pytest

import repro
from repro.errors import SelectionError
from repro.core.batch import answer_batch, sequential_baseline
from repro.datasets import truth_oracle_for


@pytest.fixture()
def market(tiny_dataset):
    return repro.CrowdMarket(
        tiny_dataset.network,
        tiny_dataset.pool,
        tiny_dataset.cost_model,
        rng=np.random.default_rng(0),
    )


@pytest.fixture()
def truth(tiny_dataset):
    return truth_oracle_for(tiny_dataset.test_history, 0, tiny_dataset.slot)


def split_queries(dataset, n_parts=3):
    queried = list(dataset.queried)
    size = max(1, len(queried) // n_parts)
    return [queried[k : k + size] for k in range(0, len(queried), size)]


class TestAnswerBatch:
    def test_per_query_alignment(self, tiny_dataset, tiny_system, market, truth):
        queries = split_queries(tiny_dataset)
        batch = answer_batch(
            tiny_system, queries, tiny_dataset.slot, budget=25,
            market=market, truth=truth,
        )
        assert len(batch.per_query) == len(queries)
        for query, estimates in zip(queries, batch.per_query):
            assert estimates.shape == (len(query),)
            for road, estimate in zip(query, estimates):
                assert estimate == pytest.approx(batch.shared.full_field_kmh[road])

    def test_overlapping_queries_share_probes(self, tiny_dataset, tiny_system, market, truth):
        base = list(tiny_dataset.queried)[:6]
        queries = [base, base[:3] + base[3:]]  # identical unions
        batch = answer_batch(
            tiny_system, queries, tiny_dataset.slot, budget=20,
            market=market, truth=truth,
        )
        assert np.allclose(batch.per_query[0], batch.per_query[1])
        assert batch.budget_spent <= 20

    def test_empty_batch_rejected(self, tiny_dataset, tiny_system, market, truth):
        with pytest.raises(SelectionError):
            answer_batch(
                tiny_system, [], tiny_dataset.slot, budget=20,
                market=market, truth=truth,
            )

    def test_empty_query_rejected(self, tiny_dataset, tiny_system, market, truth):
        with pytest.raises(SelectionError):
            answer_batch(
                tiny_system, [[1], []], tiny_dataset.slot, budget=20,
                market=market, truth=truth,
            )

    def test_budget_respected(self, tiny_dataset, tiny_system, market, truth):
        queries = split_queries(tiny_dataset)
        batch = answer_batch(
            tiny_system, queries, tiny_dataset.slot, budget=18,
            market=market, truth=truth,
        )
        assert batch.budget_spent <= 18


class TestBatchVsSequential:
    def test_batch_at_least_as_accurate_on_average(self, tiny_dataset, tiny_system):
        """Pooled probing dominates an even per-query budget split."""
        queries = split_queries(tiny_dataset, n_parts=3)
        batch_errors, seq_errors = [], []
        for day in range(tiny_dataset.test_history.n_days):
            truth = truth_oracle_for(tiny_dataset.test_history, day, tiny_dataset.slot)

            market = repro.CrowdMarket(
                tiny_dataset.network, tiny_dataset.pool, tiny_dataset.cost_model,
                rng=np.random.default_rng(day),
            )
            batch = answer_batch(
                tiny_system, queries, tiny_dataset.slot, budget=24,
                market=market, truth=truth,
            )
            market = repro.CrowdMarket(
                tiny_dataset.network, tiny_dataset.pool, tiny_dataset.cost_model,
                rng=np.random.default_rng(day),
            )
            sequential, spent = sequential_baseline(
                tiny_system, queries, tiny_dataset.slot, budget=24,
                market=market, truth=truth,
            )
            assert spent <= 24
            for query, b_est, s_est in zip(queries, batch.per_query, sequential):
                truths = np.array([truth(q) for q in query])
                batch_errors.append(
                    repro.mean_absolute_percentage_error(b_est, truths)
                )
                seq_errors.append(
                    repro.mean_absolute_percentage_error(s_est, truths)
                )
        assert np.mean(batch_errors) <= np.mean(seq_errors) + 0.01

    def test_sequential_budget_too_small(self, tiny_dataset, tiny_system, market, truth):
        queries = [[1], [2], [3], [4]]
        with pytest.raises(SelectionError):
            sequential_baseline(
                tiny_system, queries, tiny_dataset.slot, budget=2,
                market=market, truth=truth,
            )
