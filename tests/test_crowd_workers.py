"""Unit tests for repro.crowd.workers."""

import numpy as np
import pytest

import repro
from repro.errors import CrowdError, NoWorkersError
from repro.crowd.workers import Worker, WorkerPool


class TestWorker:
    def test_valid(self):
        worker = Worker(worker_id="w1", road_index=0)
        assert worker.noise_std_fraction > 0

    def test_empty_id_rejected(self):
        with pytest.raises(CrowdError):
            Worker(worker_id="", road_index=0)

    def test_negative_noise_rejected(self):
        with pytest.raises(CrowdError):
            Worker(worker_id="w", road_index=0, noise_std_fraction=-0.1)

    def test_measure_near_truth(self, rng):
        worker = Worker(worker_id="w", road_index=0, noise_std_fraction=0.05)
        readings = [worker.measure(60.0, rng) for _ in range(300)]
        assert np.mean(readings) == pytest.approx(60.0, rel=0.02)
        assert np.std(readings) == pytest.approx(3.0, rel=0.3)

    def test_measure_floor(self, rng):
        worker = Worker(worker_id="w", road_index=0, noise_std_fraction=2.0)
        readings = [worker.measure(1.0, rng) for _ in range(100)]
        assert min(readings) >= 0.5

    def test_measure_requires_positive_truth(self, rng):
        worker = Worker(worker_id="w", road_index=0)
        with pytest.raises(CrowdError):
            worker.measure(0.0, rng)

    def test_bias_shifts_mean(self, rng):
        worker = Worker(
            worker_id="w", road_index=0, noise_std_fraction=0.01, bias_fraction=0.1
        )
        readings = [worker.measure(50.0, rng) for _ in range(200)]
        assert np.mean(readings) == pytest.approx(55.0, rel=0.02)


class TestWorkerPool:
    def test_worker_on_unknown_road_rejected(self, line_net):
        with pytest.raises(CrowdError, match="unknown road"):
            WorkerPool(line_net, [Worker(worker_id="w", road_index=99)])

    def test_roads_with_workers_sorted(self, line_net):
        pool = WorkerPool(
            line_net,
            [
                Worker(worker_id="a", road_index=4),
                Worker(worker_id="b", road_index=1),
                Worker(worker_id="c", road_index=4),
            ],
        )
        assert pool.roads_with_workers() == (1, 4)
        assert pool.count_on(4) == 2
        assert pool.count_on(0) == 0

    def test_workers_on_missing_road_raises(self, line_net):
        pool = WorkerPool(line_net, [Worker(worker_id="a", road_index=0)])
        with pytest.raises(NoWorkersError):
            pool.workers_on(3)

    def test_cover_all_roads(self, line_net):
        pool = WorkerPool.cover_all_roads(line_net, workers_per_road=3, seed=1)
        assert pool.n_workers == 18
        assert pool.roads_with_workers() == tuple(range(6))

    def test_cover_all_roads_invalid(self, line_net):
        with pytest.raises(CrowdError):
            WorkerPool.cover_all_roads(line_net, workers_per_road=0)

    def test_on_roads(self, line_net):
        pool = WorkerPool.on_roads(line_net, [1, 3], workers_per_road=2, seed=2)
        assert pool.roads_with_workers() == (1, 3)
        assert pool.count_on(1) == 2

    def test_random_distribution(self, grid_net):
        pool = WorkerPool.random_distribution(grid_net, n_workers=40, seed=3)
        assert pool.n_workers == 40
        assert all(
            0 <= w.road_index < grid_net.n_roads for w in pool.workers
        )

    def test_random_distribution_invalid(self, grid_net):
        with pytest.raises(CrowdError):
            WorkerPool.random_distribution(grid_net, n_workers=0)
