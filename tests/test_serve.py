"""Unit/integration tests for the serving layer (repro.serve).

Covers the ISSUE 4 serving contract: bounded admission with typed
backpressure, deadline expiry (degrade vs raise), coalescing
correctness against a sequential ``answer_query`` oracle, and the
degraded fallback's provable equivalence to the Per baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import errors
from repro.baselines import EstimationContext, PeriodicEstimator, periodic_field
from repro.core.pipeline import Deadline
from repro.serve import (
    DEGRADED_BUDGET,
    DEGRADED_DEADLINE,
    EstimationRequest,
    QueryService,
    ReplayReport,
    ServeConfig,
    ServeRequest,
    WorkloadItem,
    load_workload,
    replay,
    save_workload,
    synthesize_workload,
)

N_SERVE_SLOTS = 3


@pytest.fixture(scope="module")
def serve_world(tiny_dataset):
    """A CrowdRTSE fitted over a window of slots, for mixed-slot serving."""
    slots = [
        s
        for s in range(tiny_dataset.slot, tiny_dataset.slot + N_SERVE_SLOTS)
        if s in tiny_dataset.train_history.global_slots
    ]
    system = repro.CrowdRTSE.fit(
        tiny_dataset.network, tiny_dataset.train_history, slots=slots
    )
    truths = {
        s: repro.truth_oracle_for(tiny_dataset.test_history, 0, s) for s in slots
    }
    return {"data": tiny_dataset, "system": system, "slots": slots, "truths": truths}


def make_market(data, seed):
    return repro.CrowdMarket(
        data.network, data.pool, data.cost_model, rng=np.random.default_rng(seed)
    )


def make_request(world, slot=None, seed=0, **overrides):
    data = world["data"]
    slot = world["slots"][0] if slot is None else slot
    kwargs = dict(
        queried=tuple(data.queried[:8]),
        slot=slot,
        budget=15,
        market=make_market(data, seed),
        truth=world["truths"][slot],
        rng=np.random.default_rng(seed),
    )
    kwargs.update(overrides)
    return ServeRequest(**kwargs)


class CountingMarket:
    """Delegating market that counts probe calls."""

    def __init__(self, inner):
        self._inner = inner
        self.probe_calls = 0

    def probe(self, roads, truth, ledger=None):
        self.probe_calls += 1
        return self._inner.probe(roads, truth, ledger)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FailingMarket:
    """Market whose crowd is gone: every probe raises NoWorkersError."""

    def __init__(self, inner):
        self._inner = inner

    def probe(self, roads, truth, ledger=None):
        raise errors.NoWorkersError("no drivers on any selected road")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"max_queue_depth": 0},
            {"max_coalesce": 0},
            {"coalesce_window_s": -0.1},
            {"degrade_margin_s": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(errors.ServeError):
            ServeConfig(**kwargs)


class TestDeadline:
    def test_check_raises_typed_timeout_after_expiry(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired
        with pytest.raises(errors.QueryTimeoutError) as excinfo:
            deadline.check("probe")
        assert excinfo.value.stage == "probe"
        assert excinfo.value.deadline_seconds == 0.0

    def test_remaining_positive_before_expiry(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0 < deadline.remaining() <= 60.0
        deadline.check("ocs")  # no raise


class TestAdmission:
    def test_served_result_matches_direct_answer_query(self, serve_world):
        request = make_request(serve_world, seed=11)
        with QueryService(serve_world["system"]) as service:
            served = service.serve(request)
        direct = serve_world["system"].answer_query(
            request.queried,
            request.slot,
            budget=request.budget,
            market=make_market(serve_world["data"], 11),
            truth=request.truth,
            rng=np.random.default_rng(11),
        )
        np.testing.assert_allclose(served.estimates_kmh, direct.estimates_kmh)
        assert served.model_version == direct.model_version
        assert not served.degraded
        assert served.result is not None
        assert served.total_seconds > 0

    def test_queue_depth_visible_before_start(self, serve_world):
        service = QueryService(serve_world["system"], autostart=False)
        assert service.queue_depth() == 0
        tickets = [
            service.submit(make_request(serve_world, seed=s)) for s in range(3)
        ]
        assert service.queue_depth() == 3
        service.start()
        for ticket in tickets:
            assert np.all(np.isfinite(ticket.result(timeout=60).estimates_kmh))
        service.close()

    def test_submit_after_close_raises(self, serve_world):
        service = QueryService(serve_world["system"])
        service.close()
        with pytest.raises(errors.ServeError):
            service.submit(make_request(serve_world))

    def test_close_without_drain_fails_pending(self, serve_world):
        service = QueryService(serve_world["system"], autostart=False)
        ticket = service.submit(make_request(serve_world))
        service.close(drain=False)
        with pytest.raises(errors.ServeError, match="closed"):
            ticket.result(timeout=5)

    def test_missing_market_is_a_serve_error(self, serve_world):
        request = make_request(serve_world, market=None)
        with QueryService(serve_world["system"]) as service:
            with pytest.raises(errors.ServeError, match="market"):
                service.serve(request)


class TestBackpressure:
    def test_rejection_beyond_capacity(self, serve_world):
        config = ServeConfig(num_workers=1, max_queue_depth=2)
        service = QueryService(
            serve_world["system"], config=config, autostart=False
        )
        tickets = [
            service.submit(make_request(serve_world, seed=s)) for s in range(2)
        ]
        with pytest.raises(errors.OverloadedError) as excinfo:
            service.submit(make_request(serve_world, seed=9))
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.max_queue_depth == 2
        # Admitted work still completes once workers start.
        service.start()
        for ticket in tickets:
            ticket.result(timeout=60)
        service.close()

    def test_rejection_is_typed_repro_error(self, serve_world):
        config = ServeConfig(max_queue_depth=1)
        service = QueryService(
            serve_world["system"], config=config, autostart=False
        )
        service.submit(make_request(serve_world))
        with pytest.raises(repro.ReproError):
            service.submit(make_request(serve_world))
        service.close(drain=False)


class TestDeadlines:
    def test_expired_deadline_degrades_to_per(self, serve_world):
        request = make_request(serve_world, deadline_s=1e-9)
        with QueryService(serve_world["system"]) as service:
            served = service.serve(request)
        assert served.degraded
        assert served.degraded_reason == DEGRADED_DEADLINE
        assert served.result is None
        snapshot = serve_world["system"].store.current()
        expected = periodic_field(snapshot.slot(request.slot))
        np.testing.assert_array_equal(served.full_field_kmh, expected)
        np.testing.assert_array_equal(
            served.estimates_kmh, expected[np.asarray(request.queried)]
        )

    def test_degrade_on_timeout_false_raises_typed_timeout(self, serve_world):
        config = ServeConfig(degrade_on_timeout=False)
        request = make_request(serve_world, deadline_s=1e-9)
        with QueryService(serve_world["system"], config=config) as service:
            ticket = service.submit(request)
            with pytest.raises(errors.QueryTimeoutError) as excinfo:
                ticket.result(timeout=60)
        assert excinfo.value.deadline_seconds == pytest.approx(1e-9)

    def test_default_deadline_from_config(self, serve_world):
        config = ServeConfig(default_deadline_s=1e-9)
        with QueryService(serve_world["system"], config=config) as service:
            served = service.serve(make_request(serve_world))
        assert served.degraded
        assert served.degraded_reason == DEGRADED_DEADLINE

    def test_generous_deadline_serves_normally(self, serve_world):
        request = make_request(serve_world, deadline_s=120.0)
        with QueryService(serve_world["system"]) as service:
            served = service.serve(request)
        assert not served.degraded
        assert served.result is not None


class TestDegradedEquivalence:
    def test_degraded_answer_equals_per_baseline(self, serve_world):
        """ISSUE 4 acceptance: degraded == Per, not just 'some numbers'."""
        data = serve_world["data"]
        slot = serve_world["slots"][0]
        request = make_request(serve_world, slot=slot, deadline_s=1e-9)
        with QueryService(serve_world["system"]) as service:
            served = service.serve(request)
        assert served.degraded
        snapshot = serve_world["system"].store.current()
        context = EstimationContext(
            network=data.network,
            history_samples=data.train_history.slot_samples(slot),
            probes={},
            slot_params=snapshot.slot(slot),
        )
        per = PeriodicEstimator().estimate(context)
        np.testing.assert_array_equal(served.full_field_kmh, per)

    def test_budget_exhaustion_degrades_with_budget_reason(self, serve_world):
        request = make_request(
            serve_world, market=FailingMarket(make_market(serve_world["data"], 44))
        )
        with QueryService(serve_world["system"]) as service:
            served = service.serve(request)
        assert served.degraded
        assert served.degraded_reason == DEGRADED_BUDGET
        snapshot = serve_world["system"].store.current()
        np.testing.assert_array_equal(
            served.full_field_kmh, periodic_field(snapshot.slot(request.slot))
        )


class TestCoalescing:
    def test_identical_requests_share_one_execution(self, serve_world):
        market = CountingMarket(make_market(serve_world["data"], 21))
        request = make_request(serve_world, market=market, rng=None)
        config = ServeConfig(num_workers=1)
        service = QueryService(
            serve_world["system"], config=config, autostart=False
        )
        tickets = [service.submit(request) for _ in range(5)]
        service.start()
        results = [t.result(timeout=60) for t in tickets]
        service.close()
        assert market.probe_calls == 1
        leader = results[0]
        assert not leader.coalesced
        assert sum(r.coalesced for r in results) == 4
        for follower in results[1:]:
            assert follower.result is leader.result
            np.testing.assert_array_equal(
                follower.estimates_kmh, leader.estimates_kmh
            )

    def test_mixed_slot_batch_matches_sequential_oracle(self, serve_world):
        """Coalesced batched serving returns exactly what a sequential
        answer_query loop would, request by request."""
        data = serve_world["data"]
        requests = []
        for k in range(6):
            slot = serve_world["slots"][k % len(serve_world["slots"])]
            requests.append(
                make_request(
                    serve_world,
                    slot=slot,
                    seed=100 + k,
                    queried=tuple(data.queried[k % 3 : k % 3 + 6]),
                    budget=10 + k,
                )
            )
        config = ServeConfig(num_workers=1, max_coalesce=16)
        service = QueryService(
            serve_world["system"], config=config, autostart=False
        )
        tickets = [service.submit(r) for r in requests]
        service.start()
        served = [t.result(timeout=120) for t in tickets]
        service.close()

        for k, (request, result) in enumerate(zip(requests, served)):
            oracle = serve_world["system"].answer_query(
                request.queried,
                request.slot,
                budget=request.budget,
                market=make_market(data, 100 + k),
                truth=request.truth,
                theta=request.theta,
                selector=request.selector,
                rng=np.random.default_rng(100 + k),
            )
            np.testing.assert_allclose(
                result.estimates_kmh, oracle.estimates_kmh, rtol=1e-10
            )
            assert result.model_version == oracle.model_version

    def test_non_coalescable_requests_run_alone(self, serve_world):
        request = make_request(serve_world, coalescable=False)
        config = ServeConfig(num_workers=1)
        service = QueryService(
            serve_world["system"], config=config, autostart=False
        )
        tickets = [service.submit(request) for _ in range(3)]
        service.start()
        results = [t.result(timeout=60) for t in tickets]
        service.close()
        assert all(not r.coalesced for r in results)

    def test_max_coalesce_bounds_batches(self, serve_world):
        market = CountingMarket(make_market(serve_world["data"], 33))
        request = make_request(serve_world, market=market, rng=None)
        config = ServeConfig(num_workers=1, max_coalesce=2)
        service = QueryService(
            serve_world["system"], config=config, autostart=False
        )
        tickets = [service.submit(request) for _ in range(4)]
        service.start()
        for ticket in tickets:
            ticket.result(timeout=60)
        service.close()
        # 4 identical requests in batches of <=2 -> exactly 2 executions.
        assert market.probe_calls == 2


class TestExceptionBoundary:
    def test_only_repro_errors_escape_the_service(self, serve_world, monkeypatch):
        """A stray TypeError inside the pipeline surfaces as InternalError."""
        def explode(*args, **kwargs):
            raise TypeError("stray internal bug")

        monkeypatch.setattr(
            serve_world["system"], "answer_query", explode, raising=True
        )
        with QueryService(serve_world["system"]) as service:
            ticket = service.submit(make_request(serve_world))
            with pytest.raises(errors.InternalError) as excinfo:
                ticket.result(timeout=60)
        assert excinfo.value.stage == "serve"
        assert isinstance(excinfo.value.original, TypeError)

    def test_repro_error_passes_through_untouched(self, serve_world):
        request = make_request(serve_world, selector="no-such-selector")
        with QueryService(serve_world["system"]) as service:
            ticket = service.submit(request)
            with pytest.raises(errors.SelectionError, match="no-such-selector"):
                ticket.result(timeout=60)


class TestServeMetrics:
    def test_serve_counters_and_spans(self, serve_world):
        from repro import obs

        obs.configure(metrics=True, tracing=True)
        obs.get_metrics().clear()
        obs.get_tracer().reset()
        try:
            config = ServeConfig(num_workers=1)
            service = QueryService(
                serve_world["system"], config=config, autostart=False
            )
            request = make_request(serve_world, seed=5)
            tickets = [service.submit(request) for _ in range(3)]
            service.start()
            for ticket in tickets:
                ticket.result(timeout=60)
            service.close()
            snap = obs.get_metrics().snapshot()
            counters = {
                (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
                for e in snap["counters"]
            }
            assert counters[("serve.admitted", ())] == 3
            assert counters[("serve.completed", (("outcome", "ok"),))] == 3
            assert counters[("serve.coalesced", ())] == 2
            names = {record.name for record in obs.get_tracer().records()}
            assert "serve.batch" in names
            assert "serve.request" in names
            assert "pipeline.answer_query" in names
        finally:
            obs.disable_all()
            obs.get_metrics().clear()
            obs.get_tracer().reset()


class TestWorkload:
    def test_roundtrip(self, tmp_path):
        items = [
            EstimationRequest(queried=(1, 2, 3), slot=93, budget=20.0),
            EstimationRequest(
                queried=(4,), slot=94, budget=10.0, theta=0.9,
                selector="ratio", deadline_s=0.25, day=1,
                precision="float32", warm_start=False,
            ),
        ]
        path = tmp_path / "trace.jsonl"
        save_workload(items, path)
        assert load_workload(path) == items

    def test_legacy_workload_item_still_loads(self, tmp_path):
        errors.reset_deprecation_warnings("serve.workload_item")
        with pytest.warns(DeprecationWarning):
            items = [
                WorkloadItem(
                    slot=94, queried=(4,), budget=10.0, theta=0.9,
                    selector="ratio", deadline_ms=250.0, day=1,
                ),
            ]
        path = tmp_path / "trace.jsonl"
        save_workload(items, path)
        loaded = load_workload(path)
        assert loaded == [items[0].as_request()]
        assert loaded[0].deadline_s == pytest.approx(0.25)
        # The canonical writer never emits the deprecated key.
        assert "deadline_ms" not in path.read_text()

    def test_deadline_ms_key_still_loads_and_conflicts_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"slot": 1, "queried": [1], "budget": 5, "deadline_ms": 500}\n'
        )
        loaded = load_workload(path)
        assert loaded[0].deadline_s == pytest.approx(0.5)
        path.write_text(
            '{"slot": 1, "queried": [1], "budget": 5, '
            '"deadline_ms": 500, "deadline_s": 0.5}\n'
        )
        with pytest.raises(errors.DatasetError, match="both deadline_s"):
            load_workload(path)

    def test_bad_precision_rejected_as_dataset_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"slot": 1, "queried": [1], "budget": 5, "precision": "float16"}\n'
        )
        with pytest.raises(errors.DatasetError, match="malformed request"):
            load_workload(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(errors.DatasetError, match="invalid JSON"):
            load_workload(path)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"slot": 1, "queried": [1], "budget": 5, "oops": 1}\n')
        with pytest.raises(errors.DatasetError, match="unknown keys"):
            load_workload(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(errors.DatasetError, match="cannot read"):
            load_workload(tmp_path / "nope.jsonl")

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("# only a comment\n")
        with pytest.raises(errors.DatasetError, match="no requests"):
            load_workload(path)

    def test_synthesize_respects_duplication(self):
        items = synthesize_workload(
            [93, 94], list(range(40)), n_requests=24, budget=10,
            duplication=4, seed=1,
        )
        assert len(items) == 24
        uniques = {(i.slot, i.queried) for i in items}
        assert len(uniques) == 6  # 24 / 4
        assert {i.slot for i in items} == {93, 94}

    def test_replay_aggregates_outcomes(self, serve_world):
        items = synthesize_workload(
            serve_world["slots"],
            list(serve_world["data"].queried),
            n_requests=12,
            budget=10,
            queried_size=5,
            duplication=3,
            seed=2,
        )

        def bind(item):
            return ServeRequest(
                queried=item.queried,
                slot=item.slot,
                budget=item.budget,
                truth=serve_world["truths"][item.slot],
            )

        market = make_market(serve_world["data"], 7)
        with QueryService(serve_world["system"], market=market) as service:
            report = replay(service, items, bind=bind)
        assert report.n_requests == 12
        assert report.n_ok + report.n_degraded == 12
        assert report.n_rejected == 0 and report.n_failed == 0
        assert len(report.latencies) == 12
        assert report.percentile(99) >= report.percentile(50) > 0
        assert report.throughput_qps > 0
        text = report.format()
        assert "p50" in text and "requests: 12" in text

    def test_report_percentiles_empty_safe(self):
        report = ReplayReport(n_requests=0)
        assert report.percentile(50) == 0.0
        assert report.throughput_qps == 0.0
        assert "requests: 0" in report.format()
