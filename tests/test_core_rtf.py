"""Unit tests for repro.core.rtf."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError, NotFittedError
from repro.core.rtf import (
    PAIR_VARIANCE_FLOOR,
    RTFModel,
    RTFSlot,
    network_fingerprint,
    params_signature,
)


def make_slot(net, slot=0, seed=0):
    rng = np.random.default_rng(seed)
    return RTFSlot(
        slot=slot,
        mu=rng.uniform(30, 70, net.n_roads),
        sigma=rng.uniform(2, 6, net.n_roads),
        rho=rng.uniform(0.2, 0.9, net.n_edges),
    )


class TestRTFSlotValidation:
    def test_valid(self, line_net):
        slot = make_slot(line_net)
        assert slot.n_roads == line_net.n_roads
        assert slot.n_edges == line_net.n_edges

    def test_sigma_positive(self, line_net):
        with pytest.raises(ModelError, match="positive"):
            RTFSlot(0, np.ones(6), np.zeros(6), np.full(5, 0.5))

    def test_rho_bounds(self, line_net):
        with pytest.raises(ModelError, match="rho"):
            RTFSlot(0, np.ones(6), np.ones(6), np.full(5, 1.5))

    def test_nan_rejected(self, line_net):
        mu = np.ones(6)
        mu[0] = np.nan
        with pytest.raises(ModelError, match="NaN"):
            RTFSlot(0, mu, np.ones(6), np.full(5, 0.5))

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            RTFSlot(0, np.ones(4), np.ones(5), np.ones(3) * 0.5)

    def test_check_against_wrong_network(self, line_net, grid_net):
        slot = make_slot(line_net)
        with pytest.raises(ModelError):
            slot.check_against(grid_net)


class TestPairwiseQuantities:
    def test_edge_mu_antisymmetric_by_order(self, line_net):
        slot = make_slot(line_net, seed=1)
        edge_mu = slot.edge_mu(line_net)
        for e, (i, j) in enumerate(line_net.edges):
            assert edge_mu[e] == pytest.approx(slot.mu[i] - slot.mu[j])
            assert slot.pairwise_mu(line_net, j, i) == pytest.approx(-edge_mu[e])

    def test_edge_variance_formula(self, line_net):
        slot = make_slot(line_net, seed=2)
        var = slot.edge_variance(line_net)
        for e, (i, j) in enumerate(line_net.edges):
            si, sj, r = slot.sigma[i], slot.sigma[j], slot.rho[e]
            expected = si**2 + sj**2 - 2 * r * si * sj
            assert var[e] == pytest.approx(max(expected, PAIR_VARIANCE_FLOOR))

    def test_edge_variance_floored_at_rho_one(self, line_net):
        slot = RTFSlot(0, np.full(6, 50.0), np.full(6, 3.0), np.ones(5))
        var = slot.edge_variance(line_net)
        assert np.all(var >= PAIR_VARIANCE_FLOOR)

    def test_pairwise_sigma_matches_edge_variance(self, line_net):
        slot = make_slot(line_net, seed=3)
        var = slot.edge_variance(line_net)
        for e, (i, j) in enumerate(line_net.edges):
            assert slot.pairwise_sigma(line_net, i, j) == pytest.approx(
                np.sqrt(var[e])
            )

    def test_pairwise_on_non_adjacent_raises(self, line_net):
        slot = make_slot(line_net)
        with pytest.raises(repro.NetworkError):
            slot.pairwise_mu(line_net, 0, 5)


class TestLikelihood:
    def test_maximized_at_consistent_assignment(self, line_net):
        # With all mu equal and v = mu, both terms vanish: L = 0 (max).
        slot = RTFSlot(0, np.full(6, 50.0), np.full(6, 3.0), np.full(5, 0.5))
        at_mu = slot.log_likelihood(line_net, slot.mu)
        perturbed = slot.log_likelihood(line_net, slot.mu + 2.0 * np.arange(6))
        assert at_mu == pytest.approx(0.0)
        assert perturbed < at_mu

    def test_uniform_shift_only_hits_periodic_term(self, line_net):
        slot = RTFSlot(0, np.full(6, 50.0), np.full(6, 2.0), np.full(5, 0.5))
        shifted = slot.log_likelihood(line_net, slot.mu + 1.0)
        # Each road contributes (1/2)^2 = 0.25; correlation terms stay 0.
        assert shifted == pytest.approx(-6 * 0.25)

    def test_wrong_shape_rejected(self, line_net):
        slot = make_slot(line_net)
        with pytest.raises(ModelError):
            slot.log_likelihood(line_net, np.ones(3))

    def test_conditional_likelihood_peaks_at_eq18_value(self, line_net):
        slot = make_slot(line_net, seed=4)
        speeds = slot.mu.copy()
        road = 2
        # Scan candidate values; Eq. 18 optimum should dominate.
        neigh = line_net.neighbors(road)
        num = slot.mu[road] / slot.sigma[road] ** 2
        den = 1.0 / slot.sigma[road] ** 2
        for j in neigh:
            var = slot.pairwise_sigma(line_net, road, j) ** 2
            num += (speeds[j] + slot.mu[road] - slot.mu[j]) / var
            den += 1.0 / var
        best = num / den
        speeds[road] = best
        ll_best = slot.conditional_log_likelihood(line_net, road, speeds)
        for delta in (-2.0, -0.5, 0.5, 2.0):
            other = speeds.copy()
            other[road] = best + delta
            assert slot.conditional_log_likelihood(line_net, road, other) < ll_best


class TestRTFModel:
    def test_slots_sorted(self, line_net):
        model = RTFModel(line_net, [make_slot(line_net, 5), make_slot(line_net, 2)])
        assert model.slots == (2, 5)

    def test_duplicate_slot_rejected(self, line_net):
        with pytest.raises(ModelError, match="duplicate"):
            RTFModel(line_net, [make_slot(line_net, 1), make_slot(line_net, 1)])

    def test_empty_rejected(self, line_net):
        with pytest.raises(ModelError):
            RTFModel(line_net, [])

    def test_missing_slot_raises_not_fitted(self, line_net):
        model = RTFModel(line_net, [make_slot(line_net, 3)])
        with pytest.raises(NotFittedError):
            model.slot(7)

    def test_contains(self, line_net):
        model = RTFModel(line_net, [make_slot(line_net, 3)])
        assert 3 in model and 4 not in model

    def test_periodicity_weights(self, line_net):
        slot = make_slot(line_net, 3)
        model = RTFModel(line_net, [slot])
        weights = model.periodicity_weights(3, [1, 4])
        assert np.allclose(weights, slot.sigma[[1, 4]])

    def test_save_load_roundtrip(self, line_net, tmp_path):
        model = RTFModel(
            line_net, [make_slot(line_net, 1, seed=5), make_slot(line_net, 9, seed=6)]
        )
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = RTFModel.load(path, line_net)
        assert loaded.slots == model.slots
        for t in model.slots:
            assert np.allclose(loaded.slot(t).mu, model.slot(t).mu)
            assert np.allclose(loaded.slot(t).sigma, model.slot(t).sigma)
            assert np.allclose(loaded.slot(t).rho, model.slot(t).rho)

    def test_load_rejects_different_network(self, line_net, grid_net, tmp_path):
        """A saved file carries the network fingerprint and refuses a swap."""
        model = RTFModel(line_net, [make_slot(line_net, 1, seed=5)])
        path = tmp_path / "model.npz"
        model.save(path)
        with pytest.raises(ModelError, match="fingerprint"):
            RTFModel.load(path, grid_net)

    def test_load_rejects_same_size_different_edges(self, tmp_path):
        """Same road/edge counts but different wiring is still rejected."""
        ring = repro.ring_radial_network(12, n_rings=1, n_radials=4, seed=1)
        other = repro.ring_radial_network(12, n_rings=1, n_radials=4, seed=9)
        if other.edges == ring.edges:  # pragma: no cover - seed guard
            pytest.skip("seeds produced identical wiring")
        model = RTFModel(ring, [make_slot(ring, 1, seed=5)])
        path = tmp_path / "model.npz"
        model.save(path)
        with pytest.raises(ModelError, match="fingerprint"):
            RTFModel.load(path, other)

    def test_legacy_file_without_fingerprint_loads(self, line_net, tmp_path):
        """Files from before the fingerprint field keep loading."""
        model = RTFModel(line_net, [make_slot(line_net, 1, seed=5)])
        path = tmp_path / "model.npz"
        model.save(path)
        with np.load(path) as payload:
            stripped = {
                k: payload[k] for k in payload.files if k != "network_fingerprint"
            }
        np.savez_compressed(path, **stripped)
        loaded = RTFModel.load(path, line_net)
        assert loaded.slots == model.slots


class TestSignatures:
    def test_params_signature_deterministic(self, line_net):
        slot = make_slot(line_net, 3, seed=2)
        clone = RTFSlot(
            slot=3, mu=slot.mu.copy(), sigma=slot.sigma.copy(), rho=slot.rho.copy()
        )
        assert params_signature(slot) == params_signature(clone)

    def test_params_signature_changes_with_params(self, line_net):
        slot = make_slot(line_net, 3, seed=2)
        bumped = RTFSlot(
            slot=3, mu=slot.mu + 0.001, sigma=slot.sigma, rho=slot.rho
        )
        other_slot = RTFSlot(slot=4, mu=slot.mu, sigma=slot.sigma, rho=slot.rho)
        assert params_signature(bumped) != params_signature(slot)
        assert params_signature(other_slot) != params_signature(slot)

    def test_network_fingerprint_stable_and_discriminating(
        self, line_net, grid_net
    ):
        assert np.array_equal(
            network_fingerprint(line_net), network_fingerprint(line_net)
        )
        assert not np.array_equal(
            network_fingerprint(line_net), network_fingerprint(grid_net)
        )
