"""RA003–RA006 rule tests: catalog drift, boundaries, deprecations, RNG."""

from __future__ import annotations

from tests.analyze_util import check
from tools.analyze.rules.ra003_observability import RA003ObservabilityCatalog
from tools.analyze.rules.ra004_exception_boundary import RA004ExceptionBoundary
from tools.analyze.rules.ra005_deprecation import RA005DeprecationHorizon
from tools.analyze.rules.ra006_determinism import RA006Determinism

CATALOG = """
    # Observability

    ## Metric catalog

    | Metric | Kind | Labels | Meaning |
    |---|---|---|---|
    | `app.requests` | counter | — | Requests served. |
    | `app.depth` | gauge | — | Queue depth. |

    ## Trace schema

    `app.handle` spans wrap each request; `app.retry` events mark retries.
"""

SYNCED_SOURCE = """
    def handle(metrics, tracer):
        metrics.counter("app.requests").inc()
        metrics.gauge("app.depth").set(0)
        with tracer.span("app.handle"):
            tracer.event("app.retry")
"""


class TestRA003:
    def test_synced_catalog_is_clean(self, tmp_path):
        findings = check(RA003ObservabilityCatalog(), tmp_path, {
            "docs/OBSERVABILITY.md": CATALOG,
            "src/app.py": SYNCED_SOURCE,
        })
        assert findings == []

    def test_metric_without_doc_row_fires(self, tmp_path):
        """Acceptance demo: adding a metric without a catalog row fails."""
        findings = check(RA003ObservabilityCatalog(), tmp_path, {
            "docs/OBSERVABILITY.md": CATALOG,
            "src/app.py": SYNCED_SOURCE + """
    def extra(metrics):
        metrics.counter("app.surprise").inc()
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA003"
        assert "app.surprise" in findings[0].message
        assert findings[0].path == "src/app.py"

    def test_stale_doc_row_fires_at_the_doc(self, tmp_path):
        source = SYNCED_SOURCE.replace('metrics.gauge("app.depth").set(0)', "pass")
        findings = check(RA003ObservabilityCatalog(), tmp_path, {
            "docs/OBSERVABILITY.md": CATALOG,
            "src/app.py": source,
        })
        assert len(findings) == 1
        assert "app.depth" in findings[0].message
        assert findings[0].path == "docs/OBSERVABILITY.md"

    def test_kind_mismatch_fires(self, tmp_path):
        source = SYNCED_SOURCE.replace(
            'metrics.gauge("app.depth")', 'metrics.counter("app.depth")'
        )
        findings = check(RA003ObservabilityCatalog(), tmp_path, {
            "docs/OBSERVABILITY.md": CATALOG,
            "src/app.py": source,
        })
        assert len(findings) == 1
        assert "counter" in findings[0].message and "gauge" in findings[0].message

    def test_undocumented_span_fires(self, tmp_path):
        findings = check(RA003ObservabilityCatalog(), tmp_path, {
            "docs/OBSERVABILITY.md": CATALOG,
            "src/app.py": SYNCED_SOURCE + """
    def ghost(tracer):
        with tracer.span("app.ghost"):
            pass
""",
        })
        assert len(findings) == 1
        assert "app.ghost" in findings[0].message

    def test_combined_row_names_all_count(self, tmp_path):
        findings = check(RA003ObservabilityCatalog(), tmp_path, {
            "docs/OBSERVABILITY.md": """
                | Metric | Kind | Labels | Meaning |
                |---|---|---|---|
                | `app.a` / `app.b` | gauge | — | Combined ledger row. |
            """,
            "src/app.py": """
                def f(metrics):
                    metrics.gauge("app.a").set(1)
                    metrics.gauge("app.b").set(2)
            """,
        })
        assert findings == []


ERRORS_MODULE = """
    class ReproError(Exception):
        pass

    class DatasetError(ReproError):
        pass

    class ServeError(ReproError):
        pass
"""


class TestRA004:
    def test_builtin_raise_in_pipeline_fires(self, tmp_path):
        findings = check(RA004ExceptionBoundary(), tmp_path, {
            "src/errors.py": ERRORS_MODULE,
            "src/pipeline.py": """
                def answer(x):
                    if x < 0:
                        raise ValueError("negative")
            """,
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA004"
        assert "ValueError" in findings[0].message

    def test_wrap_internal_region_is_shielded(self, tmp_path):
        findings = check(RA004ExceptionBoundary(), tmp_path, {
            "src/errors.py": ERRORS_MODULE,
            "src/pipeline.py": """
                from errors import wrap_internal

                def answer(x):
                    with wrap_internal("stage"):
                        if x < 0:
                            raise ValueError("negative")
            """,
        })
        assert findings == []

    def test_repro_error_subclasses_are_fine(self, tmp_path):
        findings = check(RA004ExceptionBoundary(), tmp_path, {
            "src/errors.py": ERRORS_MODULE,
            "src/serve/service.py": """
                from errors import ServeError

                def submit(closing):
                    if closing:
                        raise ServeError("closed")
                    raise errors.DatasetError("nope")
            """,
        })
        assert findings == []

    def test_bare_reraise_is_fine(self, tmp_path):
        findings = check(RA004ExceptionBoundary(), tmp_path, {
            "src/errors.py": ERRORS_MODULE,
            "src/cli.py": """
                def main():
                    try:
                        return 0
                    except KeyboardInterrupt:
                        raise
            """,
        })
        assert findings == []

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        findings = check(RA004ExceptionBoundary(), tmp_path, {
            "src/errors.py": ERRORS_MODULE,
            "src/inference.py": """
                def fit(x):
                    raise ValueError("internal helpers may use builtins")
            """,
        })
        assert findings == []


API_DOC = """
    # API

    ### Deprecation policy

    | Deprecated | Warn key | Replacement |
    |---|---|---|
    | `Old.thing` | `old.thing` | `New.thing` |
"""


class TestRA005:
    def test_documented_call_site_is_clean(self, tmp_path):
        findings = check(RA005DeprecationHorizon(), tmp_path, {
            "docs/API.md": API_DOC,
            "src/old.py": """
                def thing():
                    warn_deprecated_once(
                        "old.thing",
                        "Old.thing is deprecated; use New.thing. "
                        "It will be removed in v2.0.",
                    )
            """,
        })
        assert findings == []

    def test_message_without_version_fires(self, tmp_path):
        findings = check(RA005DeprecationHorizon(), tmp_path, {
            "docs/API.md": API_DOC,
            "src/old.py": """
                def thing():
                    warn_deprecated_once("old.thing", "Old.thing is deprecated.")
            """,
        })
        assert len(findings) == 1
        assert "removal version" in findings[0].message

    def test_undocumented_key_fires(self, tmp_path):
        findings = check(RA005DeprecationHorizon(), tmp_path, {
            "docs/API.md": API_DOC,
            "src/old.py": """
                def thing():
                    warn_deprecated_once("old.thing", "removed in v2.0")

                def other():
                    warn_deprecated_once("old.other", "removed in v2.0")
            """,
        })
        assert len(findings) == 1
        assert "not listed" in findings[0].message
        assert "old.other" in findings[0].message

    def test_stale_doc_key_fires(self, tmp_path):
        findings = check(RA005DeprecationHorizon(), tmp_path, {
            "docs/API.md": API_DOC,
            "src/old.py": "x = 1\n",
        })
        assert len(findings) == 1
        assert "old.thing" in findings[0].message
        assert findings[0].path == "docs/API.md"

    def test_fstring_message_version_is_found(self, tmp_path):
        findings = check(RA005DeprecationHorizon(), tmp_path, {
            "docs/API.md": API_DOC,
            "src/old.py": """
                def thing(stale):
                    warn_deprecated_once(
                        "old.thing",
                        f"table for slots {stale} is stale; rejected in v2.0",
                    )
            """,
        })
        assert findings == []


class TestRA006:
    def test_global_np_random_fires(self, tmp_path):
        findings = check(RA006Determinism(), tmp_path, {
            "src/m.py": """
                import numpy as np

                def draw():
                    np.random.seed(0)
                    return np.random.rand(3)
            """,
        })
        assert len(findings) == 2
        assert all("global RNG" in f.message for f in findings)

    def test_unseeded_default_rng_fires_seeded_is_clean(self, tmp_path):
        findings = check(RA006Determinism(), tmp_path, {
            "src/m.py": """
                import numpy as np

                bad = np.random.default_rng()
                good = np.random.default_rng(42)
            """,
        })
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_stdlib_random_import_fires(self, tmp_path):
        findings = check(RA006Determinism(), tmp_path, {
            "src/m.py": "import random\nfrom random import shuffle\n",
        })
        assert len(findings) == 2

    def test_wall_clock_fires_monotonic_is_clean(self, tmp_path):
        findings = check(RA006Determinism(), tmp_path, {
            "src/m.py": """
                import time

                def stamp():
                    return time.time()

                def duration(start):
                    return time.monotonic() - start
            """,
        })
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_whitelisted_module_is_exempt(self, tmp_path):
        findings = check(RA006Determinism(), tmp_path, {
            "src/repro/obs/tracing.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert findings == []

    def test_noqa_suppresses_deliberate_fallback(self, tmp_path):
        findings = check(RA006Determinism(), tmp_path, {
            "src/m.py": """
                import numpy as np

                def make_rng(rng=None):
                    return rng or np.random.default_rng()  # repro: noqa[RA006]
            """,
        }, with_engine=True)
        assert findings == []
