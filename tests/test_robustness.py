"""Robustness tests: adversarial workers and model misspecification.

Failure-injection beyond the happy path: what happens when some workers
lie, when probes are wildly wrong, or when the fitted correlations are
off?  The system should degrade gracefully (and the robust aggregators
should help), never crash or produce invalid fields.
"""

import numpy as np
import pytest

import repro
from repro.crowd.aggregation import Aggregator, aggregate_answers
from repro.crowd.cost import CostModel
from repro.crowd.market import CrowdMarket
from repro.crowd.workers import Worker, WorkerPool
from repro.core.gsp import GSPConfig, propagate
from repro.core.rtf import RTFSlot


def flat_slot(net, mu=50.0, sigma=3.0, rho=0.6):
    return RTFSlot(
        0,
        np.full(net.n_roads, float(mu)),
        np.full(net.n_roads, float(sigma)),
        np.full(net.n_edges, float(rho)),
    )


class TestAdversarialWorkers:
    def _mixed_pool(self, net, road, n_honest, n_liars, lie=3.0):
        workers = [
            Worker(worker_id=f"h{k}", road_index=road, noise_std_fraction=0.05)
            for k in range(n_honest)
        ]
        workers += [
            Worker(
                worker_id=f"liar{k}",
                road_index=road,
                noise_std_fraction=0.01,
                bias_fraction=lie,  # reports ~4x the true speed
            )
            for k in range(n_liars)
        ]
        return WorkerPool(net, workers)

    def test_median_resists_minority_liars(self, line_net, rng):
        """With < 50% liars the median aggregate stays near the truth
        while the mean is dragged away."""
        pool = self._mixed_pool(line_net, road=2, n_honest=7, n_liars=3)
        costs = CostModel(line_net, [10] * 6)
        truth = lambda r: 50.0  # noqa: E731
        errors = {}
        for aggregator in (Aggregator.MEAN, Aggregator.MEDIAN):
            market = CrowdMarket(
                line_net, pool, costs, aggregator=aggregator,
                rng=np.random.default_rng(3),
            )
            probes, _ = market.probe([2], truth)
            errors[aggregator] = abs(probes[2] - 50.0)
        assert errors[Aggregator.MEDIAN] < errors[Aggregator.MEAN]
        assert errors[Aggregator.MEDIAN] < 10.0

    def test_trimmed_mean_resists_symmetric_outliers(self):
        answers = [48, 52, 50, 49, 51, 500, 1]
        trimmed = aggregate_answers(answers, Aggregator.TRIMMED_MEAN)
        assert trimmed == pytest.approx(50.0, abs=2.0)

    def test_majority_liars_defeat_all_aggregators(self, line_net):
        """Sanity: no aggregator is magic once liars are the majority."""
        pool = self._mixed_pool(line_net, road=2, n_honest=2, n_liars=8)
        costs = CostModel(line_net, [10] * 6)
        market = CrowdMarket(
            line_net, pool, costs, aggregator=Aggregator.MEDIAN,
            rng=np.random.default_rng(4),
        )
        probes, _ = market.probe([2], lambda r: 50.0)
        assert probes[2] > 100.0


class TestOutlierProbes:
    def test_wild_probe_stays_localized(self, grid_net):
        """A single absurd probe perturbs its neighbourhood but cannot
        drag far-away roads arbitrarily (the prior anchors them)."""
        params = flat_slot(grid_net, mu=50.0, sigma=3.0, rho=0.5)
        result = propagate(grid_net, params, {0: 500.0})
        # The far corner stays near its prior.
        assert abs(result.speeds[24] - 50.0) < 10.0
        # And the field stays finite everywhere.
        assert np.all(np.isfinite(result.speeds))

    def test_conflicting_probes_converge(self, line_net):
        params = flat_slot(line_net, rho=0.9)
        result = propagate(
            line_net, params, {0: 10.0, 5: 90.0},
            GSPConfig(epsilon=1e-8, max_sweeps=5000),
        )
        assert result.converged
        # Speeds interpolate monotonically-ish between the two probes.
        assert result.speeds[1] < result.speeds[4]


class TestModelMisspecification:
    def test_zero_rho_weakens_propagation(self, line_net):
        """ρ = 0 does not sever edges in Eq. 18 (the difference term
        remains, with σ_ij² = σ_i² + σ_j²), but high ρ pulls neighbours
        much harder — and both fields stay valid."""
        tight = flat_slot(line_net, rho=0.95)
        loose = flat_slot(line_net, rho=0.0)
        probe = {0: 20.0}
        pulled_tight = propagate(line_net, tight, probe).speeds[1]
        pulled_loose = propagate(line_net, loose, probe).speeds[1]
        assert abs(pulled_tight - 50.0) > abs(pulled_loose - 50.0)
        for params in (tight, loose):
            result = propagate(line_net, params, probe)
            assert result.converged
            assert np.all(result.speeds > 0)

    def test_relative_sigma_governs_prior_weight(self, line_net):
        """A road whose own σ is small (strong periodicity) resists the
        probe pull; one with large σ follows its neighbours.  (With
        *uniform* σ the Eq. 18 weights cancel — only relative σ
        matters.)"""
        sigma_confident = np.array([5.0, 0.1, 5.0, 5.0, 5.0, 5.0])
        sigma_uncertain = np.array([5.0, 10.0, 5.0, 5.0, 5.0, 5.0])
        mu = np.full(6, 50.0)
        rho = np.full(5, 0.5)
        confident = RTFSlot(0, mu, sigma_confident, rho)
        uncertain = RTFSlot(0, mu, sigma_uncertain, rho)
        probe = {0: 20.0}
        pulled_confident = propagate(line_net, confident, probe).speeds[1]
        pulled_uncertain = propagate(line_net, uncertain, probe).speeds[1]
        assert abs(pulled_confident - 50.0) < abs(pulled_uncertain - 50.0)

    def test_uniform_sigma_cancels_in_update(self, line_net):
        """Documented Eq. 18 property: scaling ALL σ by a constant
        leaves the propagated field unchanged (both precisions scale by
        the same factor)."""
        small = flat_slot(line_net, sigma=0.5, rho=0.5)
        large = flat_slot(line_net, sigma=8.0, rho=0.5)
        probe = {0: 20.0}
        a = propagate(line_net, small, probe).speeds
        b = propagate(line_net, large, probe).speeds
        assert np.allclose(a, b, atol=1e-6)

    def test_ocs_with_degenerate_sigma(self):
        """All-zero periodicity weights make every selection worthless;
        the solver must still return a feasible (possibly empty-gain)
        answer instead of crashing."""
        rng = np.random.default_rng(5)
        n = 8
        base = rng.uniform(0.1, 0.9, (n, n))
        corr = (base + base.T) / 2
        np.fill_diagonal(corr, 1.0)
        instance = repro.OCSInstance(
            queried=(0, 1),
            candidates=tuple(range(n)),
            costs=np.ones(n),
            budget=3,
            theta=0.9,
            corr=corr,
            sigma=np.zeros(n),
        )
        result = repro.hybrid_greedy(instance)
        assert instance.is_feasible(result.selected)
        assert result.objective == 0.0
