"""The float32 kernel mode's tolerance contract (PrecisionPolicy).

``float64`` is the reference precision: requesting it changes nothing —
``resolve_gsp_config`` returns the caller's config (including ``None``)
untouched and answers stay bit-identical.  ``float32`` is the opt-in
fast mode; its documented contract (:class:`PrecisionPolicy`) is that on
converged runs every non-observed road stays within ``field_rtol``
relative divergence of the float64 field, observed roads are re-clamped
to their exact probed values, and everything upstream of GSP (the OCS
selection, the probes) is precision-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.gsp import (
    GSPConfig,
    GSPKernel,
    GSPSchedule,
    PrecisionPolicy,
    propagate,
)
from repro.core.pipeline import CrowdRTSE
from repro.core.request import EstimationRequest
from repro.errors import ModelError

RTOL = PrecisionPolicy.FLOAT32.field_rtol


@pytest.fixture(scope="module")
def observed(small_world):
    params = small_world["params"]
    roads = [0, 7, 19, 33, 48]
    return {r: float(params.mu[r] * 0.8) for r in roads}


class TestWithPrecision:
    def test_float64_is_identity_on_precision(self):
        config = GSPConfig(schedule=GSPSchedule.BFS)
        adjusted = config.with_precision("float64")
        assert adjusted.precision is PrecisionPolicy.FLOAT64
        assert adjusted.schedule is GSPSchedule.BFS

    def test_auto_kernel_upgrades_schedule_for_float32(self):
        adjusted = GSPConfig(schedule=GSPSchedule.BFS).with_precision("float32")
        assert adjusted.precision is PrecisionPolicy.FLOAT32
        assert adjusted.schedule is GSPSchedule.BFS_PARALLEL

    def test_vectorizable_schedule_kept(self):
        adjusted = GSPConfig(schedule=GSPSchedule.BFS_COLORED).with_precision(
            "float32"
        )
        assert adjusted.schedule is GSPSchedule.BFS_COLORED

    def test_reference_kernel_rejected(self):
        config = GSPConfig(
            schedule=GSPSchedule.BFS_PARALLEL, kernel=GSPKernel.REFERENCE
        )
        with pytest.raises(ModelError, match="float32"):
            config.with_precision("float32")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ModelError, match="precision"):
            GSPConfig().with_precision("float16")


class TestResolveGSPConfig:
    def test_float64_returns_config_untouched(self):
        config = GSPConfig(epsilon=1e-5)
        assert CrowdRTSE.resolve_gsp_config(config, "float64") is config
        assert CrowdRTSE.resolve_gsp_config(None, "float64") is None

    def test_float32_builds_default_config_when_none(self):
        resolved = CrowdRTSE.resolve_gsp_config(None, "float32")
        assert resolved is not None
        assert resolved.precision is PrecisionPolicy.FLOAT32


class TestFieldTolerance:
    def test_float32_field_within_contract(self, small_world, observed):
        network = small_world["network"]
        params = small_world["params"]
        # ε must stay within float32 resolution for the fast run to
        # converge; 1e-4 is reachable by both precisions.
        base = GSPConfig(schedule=GSPSchedule.BFS_PARALLEL, epsilon=1e-4)
        ref = propagate(network, params, observed, base)
        fast = propagate(network, params, observed, base.with_precision("float32"))
        assert ref.converged and fast.converged
        mask = np.ones(network.n_roads, dtype=bool)
        mask[list(observed)] = False
        divergence = np.abs(fast.speeds[mask] - ref.speeds[mask])
        assert np.all(divergence <= RTOL * np.abs(ref.speeds[mask]))

    def test_observed_roads_clamped_exactly(self, small_world, observed):
        network = small_world["network"]
        params = small_world["params"]
        fast = propagate(
            network,
            params,
            observed,
            GSPConfig(schedule=GSPSchedule.BFS_PARALLEL).with_precision("float32"),
        )
        for road, speed in observed.items():
            assert fast.speeds[road] == speed

    def test_float32_field_is_float64_dtype_on_return(self, small_world, observed):
        """The public field is always float64; precision is internal."""
        fast = propagate(
            small_world["network"],
            small_world["params"],
            observed,
            GSPConfig(schedule=GSPSchedule.BFS_PARALLEL).with_precision("float32"),
        )
        assert fast.speeds.dtype == np.float64


class TestEndToEndPrecision:
    def _answer(self, system, data, precision):
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(3),
        )
        truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
        return system.answer_query(
            EstimationRequest(
                queried=data.queried,
                slot=data.slot,
                budget=15,
                precision=precision,
                warm_start=False,
            ),
            market=market,
            truth=truth,
        )

    def test_selection_is_precision_independent(self, tiny_system, tiny_dataset):
        ref = self._answer(tiny_system, tiny_dataset, "float64")
        fast = self._answer(tiny_system, tiny_dataset, "float32")
        assert ref.selection.selected == fast.selection.selected
        assert ref.probes == fast.probes

    def test_answers_within_contract(self, tiny_system, tiny_dataset):
        ref = self._answer(tiny_system, tiny_dataset, "float64")
        fast = self._answer(tiny_system, tiny_dataset, "float32")
        assert np.all(
            np.abs(fast.estimates_kmh - ref.estimates_kmh)
            <= RTOL * np.abs(ref.estimates_kmh)
        )

    def test_float64_requests_are_reproducible(self, tiny_system, tiny_dataset):
        first = self._answer(tiny_system, tiny_dataset, "float64")
        second = self._answer(tiny_system, tiny_dataset, "float64")
        assert np.array_equal(first.full_field_kmh, second.full_field_kmh)
