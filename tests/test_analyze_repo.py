"""The analyzer must hold on the repo's own sources.

This is the acceptance gate CI runs (`python -m tools.analyze
src/repro`): zero findings against the checked-in baseline and no stale
baseline entries.  If a change trips a rule, either fix it or suppress
/ baseline it with a justification — see docs/STATIC_ANALYSIS.md.
"""

from pathlib import Path

from tools.analyze import __main__ as analyze_main
from tools.analyze.core import EXIT_OK

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_analyzer_is_clean_on_src_repro(capsys):
    code = analyze_main.main(["--root", str(REPO_ROOT), "src/repro"])
    out = capsys.readouterr().out
    assert code == EXIT_OK, out
    assert "0 finding(s)" in out
    # The gate only counts if the whole rule set ran, RA007-RA012 included.
    assert "12 rule(s)" in out


def test_lock_rules_hold_on_tools_and_benchmarks(capsys):
    """The analyzer's own code and the harnesses obey the lock rules.

    Only RA001/RA002 are meaningful standalone: the doc-sync rules
    (RA003/RA005) cross-reference metric registrations and deprecation
    call sites that live in ``src/repro``, and tests/benchmarks are
    free to use local RNGs and wall clocks (RA006).
    """
    code = analyze_main.main(
        [
            "--root", str(REPO_ROOT), "--no-baseline",
            "--select", "RA001,RA002",
            "tools", "benchmarks",
        ]
    )
    out = capsys.readouterr().out
    assert code == EXIT_OK, out
