"""Unit tests for the from-scratch lasso solver and LASSO estimator."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.baselines import EstimationContext, LassoEstimator, LassoFieldModel
from repro.baselines.lasso import (
    LassoModel,
    fit_lasso,
    fit_lasso_field,
    lasso_coordinate_descent,
    lasso_coordinate_descent_multi,
)


def make_regression(n=80, p=5, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    design = rng.normal(size=(n, p))
    beta = np.array([2.0, -1.5, 0.0, 0.0, 3.0])[:p]
    target = design @ beta + noise * rng.normal(size=n)
    return design, target, beta


class TestCoordinateDescent:
    def test_alpha_zero_matches_ols(self):
        design, target, _ = make_regression()
        n = design.shape[0]
        xc = design - design.mean(axis=0)
        yc = target - target.mean()
        gram = xc.T @ xc / n
        corr = xc.T @ yc / n
        beta_cd = lasso_coordinate_descent(gram, corr, alpha=0.0, max_iter=2000, tol=1e-12)
        beta_ols = np.linalg.solve(gram, corr)
        assert np.allclose(beta_cd, beta_ols, atol=1e-6)

    def test_recovers_sparse_signal(self):
        design, target, beta_true = make_regression(n=300, noise=0.05)
        model = fit_lasso(design, target, alpha=0.02, max_iter=2000)
        assert np.allclose(model.coef, beta_true, atol=0.1)

    def test_large_alpha_zeroes_everything(self):
        design, target, _ = make_regression()
        model = fit_lasso(design, target, alpha=1e6)
        assert np.allclose(model.coef, 0.0)

    def test_alpha_shrinks_l1_norm(self):
        design, target, _ = make_regression(n=150)
        norms = []
        for alpha in (0.0, 0.1, 0.5, 2.0):
            model = fit_lasso(design, target, alpha=alpha, max_iter=2000)
            norms.append(np.abs(model.coef).sum())
        assert all(a >= b - 1e-9 for a, b in zip(norms, norms[1:]))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ModelError):
            lasso_coordinate_descent(np.eye(2), np.ones(2), alpha=-1)

    def test_degenerate_column_gets_zero(self):
        rng = np.random.default_rng(1)
        design = rng.normal(size=(50, 3))
        design[:, 1] = 7.0  # constant column: zero variance after centring
        target = design[:, 0] * 2
        model = fit_lasso(design, target, alpha=0.01)
        assert model.coef[1] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            lasso_coordinate_descent(np.eye(3), np.ones(2), alpha=0.1)


class TestMultiTarget:
    def test_matches_single_target(self):
        rng = np.random.default_rng(2)
        design = rng.normal(size=(60, 4))
        targets = rng.normal(size=(60, 6))
        n = design.shape[0]
        xc = design - design.mean(axis=0)
        gram = xc.T @ xc / n
        corr = xc.T @ (targets - targets.mean(axis=0)) / n
        multi = lasso_coordinate_descent_multi(gram, corr, alpha=0.05, max_iter=2000)
        for k in range(6):
            single = lasso_coordinate_descent(gram, corr[:, k], alpha=0.05, max_iter=2000)
            assert np.allclose(multi[:, k], single, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            lasso_coordinate_descent_multi(np.eye(3), np.ones(3), alpha=0.1)

    def test_warm_start_reaches_same_optimum(self):
        rng = np.random.default_rng(5)
        design = rng.normal(size=(120, 6))
        targets = rng.normal(size=(120, 4))
        n = design.shape[0]
        xc = design - design.mean(axis=0)
        gram = xc.T @ xc / n
        corr = xc.T @ (targets - targets.mean(axis=0)) / n
        cold = lasso_coordinate_descent_multi(
            gram, corr, alpha=0.05, max_iter=3000, tol=1e-10
        )
        warm = lasso_coordinate_descent_multi(
            gram, corr, alpha=0.05, max_iter=3000, tol=1e-10, warm_start=True
        )
        assert np.allclose(cold, warm, atol=1e-6)


class TestLassoModel:
    def test_predict(self):
        model = LassoModel(
            coef=np.array([1.0, 2.0]),
            intercept=5.0,
            feature_means=np.array([1.0, 1.0]),
        )
        assert model.predict(np.array([2.0, 2.0])) == pytest.approx(5 + 1 + 2)

    def test_predict_shape_check(self):
        model = LassoModel(np.ones(2), 0.0, np.zeros(2))
        with pytest.raises(ModelError):
            model.predict(np.ones(3))


class TestLassoEstimator:
    def test_probed_roads_pass_through(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        probes = {0: 25.0, 5: 66.0}
        context = EstimationContext(net, samples, probes)
        field = LassoEstimator().estimate(context)
        assert field[0] == pytest.approx(25.0)
        assert field[5] == pytest.approx(66.0)

    def test_no_probes_falls_back_to_mean(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {})
        field = LassoEstimator().estimate(context)
        assert np.allclose(field, samples.mean(axis=0))

    def test_all_positive(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {2: 10.0, 9: 80.0})
        field = LassoEstimator().estimate(context)
        assert np.all(field > 0)

    def test_bad_alpha(self):
        with pytest.raises(ModelError):
            LassoEstimator(alpha=-0.1)

    def test_probes_improve_over_mean(self, small_world):
        """With informative probes the lasso should beat the plain mean
        on the probe-adjacent roads for a day that deviates from it."""
        net = small_world["network"]
        history = small_world["history"]
        slot = small_world["slot"]
        samples = history.slot_samples(slot)
        truth_day = samples[-1]
        train = samples[:-1]
        probe_roads = list(range(0, net.n_roads, 4))
        probes = {r: float(truth_day[r]) for r in probe_roads}
        context = EstimationContext(net, train, probes)
        field = LassoEstimator(alpha=0.05).estimate(context)
        mean = train.mean(axis=0)
        free = [i for i in range(net.n_roads) if i not in probes]
        lasso_err = np.abs(field[free] - truth_day[free]).mean()
        mean_err = np.abs(mean[free] - truth_day[free]).mean()
        assert lasso_err < mean_err * 1.05


class TestLassoFieldModel:
    """The serializable fitted-state split (backend satellite)."""

    def _fitted(self, small_world, alpha=0.05):
        samples = small_world["history"].slot_samples(small_world["slot"])
        observed = np.arange(0, small_world["network"].n_roads, 4)
        return samples, observed, fit_lasso_field(samples, observed, alpha)

    def test_estimator_delegates_to_fit_field(self, small_world):
        """estimate() == fit_field().predict() — the refactor changed
        the call shape, not the numbers."""
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        probes = {0: 25.0, 4: 50.0, 8: 66.0}
        context = EstimationContext(net, samples, probes)
        estimator = LassoEstimator(alpha=0.05)
        field = estimator.estimate(context)
        model = estimator.fit_field(context)
        np.testing.assert_array_equal(
            field, model.predict(context.observed_values)
        )

    def test_pickle_roundtrip_predicts_identically(self, small_world):
        import pickle

        samples, observed, model = self._fitted(small_world)
        assert isinstance(model, LassoFieldModel)
        revived = pickle.loads(pickle.dumps(model))
        probe_values = samples[-1][observed]
        np.testing.assert_array_equal(
            model.predict(probe_values), revived.predict(probe_values)
        )
        np.testing.assert_array_equal(revived.beta, model.beta)
        np.testing.assert_array_equal(revived.observed, model.observed)

    def test_predict_pins_probes_and_floors(self, small_world):
        samples, observed, model = self._fitted(small_world)
        probe_values = samples[-1][observed]
        field = model.predict(probe_values)
        np.testing.assert_allclose(field[observed], probe_values)
        assert np.all(field >= 0.5)

    def test_empty_observation_returns_target_means(self, small_world):
        samples = small_world["history"].slot_samples(small_world["slot"])
        model = fit_lasso_field(samples, np.array([], dtype=int), alpha=0.05)
        field = model.predict(np.array([]))
        np.testing.assert_allclose(field, samples.mean(axis=0))
