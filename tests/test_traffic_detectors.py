"""Unit tests for the fixed loop-detector substrate and fixed-vs-crowd study."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.traffic.detectors import (
    DetectorDeployment,
    DetectorPlacement,
)
from repro.experiments import fixed_vs_crowd, allocation_study
from repro.experiments.common import ExperimentScale


class TestDeploymentValidation:
    def test_empty_rejected(self, line_net):
        with pytest.raises(DatasetError):
            DetectorDeployment(line_net, [])

    def test_duplicates_rejected(self, line_net):
        with pytest.raises(DatasetError):
            DetectorDeployment(line_net, [1, 1])

    def test_unknown_road_rejected(self, line_net):
        with pytest.raises(DatasetError):
            DetectorDeployment(line_net, [9])

    def test_negative_noise_rejected(self, line_net):
        with pytest.raises(DatasetError):
            DetectorDeployment(line_net, [0], noise_std_fraction=-1)


class TestRead:
    def test_reads_cover_detector_roads(self, line_net, rng):
        deployment = DetectorDeployment(line_net, [1, 4])
        speeds = np.linspace(30, 80, 6)
        readings = deployment.read(speeds, rng)
        assert set(readings) == {1, 4}

    def test_noiseless_reads_exact(self, line_net, rng):
        deployment = DetectorDeployment(line_net, [2], noise_std_fraction=0.0)
        speeds = np.full(6, 47.0)
        assert deployment.read(speeds, rng)[2] == 47.0

    def test_noise_near_truth(self, line_net, rng):
        deployment = DetectorDeployment(line_net, [2], noise_std_fraction=0.01)
        speeds = np.full(6, 60.0)
        values = [deployment.read(speeds, rng)[2] for _ in range(100)]
        assert np.mean(values) == pytest.approx(60.0, rel=0.01)

    def test_shape_check(self, line_net, rng):
        deployment = DetectorDeployment(line_net, [0])
        with pytest.raises(DatasetError):
            deployment.read(np.ones(3), rng)


class TestPlacement:
    @pytest.mark.parametrize("placement", list(DetectorPlacement))
    def test_count_and_distinctness(self, grid_net, placement):
        deployment = DetectorDeployment.place(grid_net, 6, placement, seed=1)
        assert deployment.n_detectors == 6
        assert len(set(deployment.roads)) == 6

    def test_degree_picks_high_degree(self, grid_net):
        deployment = DetectorDeployment.place(
            grid_net, 4, DetectorPlacement.DEGREE
        )
        degrees = [grid_net.degree(r) for r in deployment.roads]
        assert min(degrees) >= 3  # grid interior nodes

    def test_backbone_prefers_highways(self):
        net = repro.ring_radial_network(100, seed=2)
        deployment = DetectorDeployment.place(
            net, 10, DetectorPlacement.BACKBONE
        )
        kinds = {net.roads[r].kind.value for r in deployment.roads}
        assert kinds == {"highway"}

    def test_coverage_dominates_random(self, grid_net):
        from repro.eval.coverage import k_hop_coverage

        everything = list(range(grid_net.n_roads))
        cover = DetectorDeployment.place(
            grid_net, 5, DetectorPlacement.COVERAGE
        )
        rand = DetectorDeployment.place(
            grid_net, 5, DetectorPlacement.RANDOM, seed=3
        )
        assert k_hop_coverage(grid_net, cover.roads, everything, 1) >= (
            k_hop_coverage(grid_net, rand.roads, everything, 1)
        )

    def test_too_many_detectors(self, line_net):
        with pytest.raises(DatasetError):
            DetectorDeployment.place(line_net, 7)


class TestFixedVsCrowdStudy:
    def test_runs_and_crowd_competitive(self):
        rows = fixed_vs_crowd.run(
            ExperimentScale.QUICK, query_size=12, n_queries=6
        )
        by_policy = {r.policy: r for r in rows}
        assert "crowd (OCS)" in by_policy
        assert len(rows) == 1 + len(DetectorPlacement)
        crowd = by_policy["crowd (OCS)"].mape
        # Query-aware crowdsourcing is at least as good as every fixed
        # placement on a moving-hotspot query stream (equal observation
        # counts and measurement noise).
        for policy, row in by_policy.items():
            if policy != "crowd (OCS)":
                assert crowd <= row.mape + 0.01, policy
        assert "policy" in fixed_vs_crowd.format_table(rows)


class TestAllocationStudyExperiment:
    def test_runs_quick(self):
        rows = allocation_study.run(
            ExperimentScale.QUICK, n_slots=2, total_budget=30, n_trials=1
        )
        policies = {r.policy for r in rows}
        assert policies == {"uniform", "need-based"}
        totals = {r.total_budget for r in rows}
        assert len(totals) == 1  # identical spend
        assert "policy" in allocation_study.format_table(rows)
