"""Unit tests for repro.traffic.profiles."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.network.graph import Road, RoadKind
from repro.traffic.profiles import (
    N_SLOTS_PER_DAY,
    DailyProfile,
    ProfileKind,
    build_profile,
    random_profiles,
    slot_of_time,
    time_of_slot,
)


class TestSlotArithmetic:
    def test_288_slots(self):
        assert N_SLOTS_PER_DAY == 288

    def test_slot_of_time(self):
        assert slot_of_time(0, 0) == 0
        assert slot_of_time(8, 30) == 102
        assert slot_of_time(23, 55) == 287

    def test_time_of_slot_inverse(self):
        for slot in (0, 1, 102, 287):
            h, m = time_of_slot(slot)
            assert slot_of_time(h, m) == slot

    def test_invalid_time(self):
        with pytest.raises(DatasetError):
            slot_of_time(24, 0)
        with pytest.raises(DatasetError):
            slot_of_time(0, 60)

    def test_invalid_slot(self):
        with pytest.raises(DatasetError):
            time_of_slot(288)
        with pytest.raises(DatasetError):
            time_of_slot(-1)


class TestBuildProfile:
    @pytest.fixture()
    def road(self):
        return Road(road_id="a", kind=RoadKind.ARTERIAL, free_flow_kmh=60.0)

    @pytest.mark.parametrize("kind", list(ProfileKind))
    def test_shapes(self, road, kind):
        profile = build_profile(road, kind)
        assert profile.mean_kmh.shape == (N_SLOTS_PER_DAY,)
        assert profile.fluctuation_kmh.shape == (N_SLOTS_PER_DAY,)

    @pytest.mark.parametrize("kind", list(ProfileKind))
    def test_mean_positive_and_below_free_flow(self, road, kind):
        profile = build_profile(road, kind)
        assert np.all(profile.mean_kmh > 0)
        assert np.all(profile.mean_kmh <= road.free_flow_kmh + 1e-9)

    def test_commuter_has_rush_dip(self, road):
        profile = build_profile(road, ProfileKind.COMMUTER)
        rush = profile.mean_kmh[slot_of_time(8)]
        night = profile.mean_kmh[slot_of_time(3)]
        assert rush < night

    def test_steady_flatter_than_commuter(self, road):
        steady = build_profile(road, ProfileKind.STEADY)
        commuter = build_profile(road, ProfileKind.COMMUTER)
        assert steady.mean_kmh.std() < commuter.mean_kmh.std()

    def test_volatile_has_larger_fluctuation(self, road):
        volatile = build_profile(road, ProfileKind.VOLATILE)
        steady = build_profile(road, ProfileKind.STEADY)
        assert volatile.fluctuation_kmh.mean() > 2 * steady.fluctuation_kmh.mean()

    def test_periodicity_strength_ordering(self, road):
        volatile = build_profile(road, ProfileKind.VOLATILE)
        steady = build_profile(road, ProfileKind.STEADY)
        assert steady.periodicity_strength > volatile.periodicity_strength

    def test_jitter_varies_with_rng(self, road):
        rng = np.random.default_rng(0)
        a = build_profile(road, ProfileKind.COMMUTER, rng)
        b = build_profile(road, ProfileKind.COMMUTER, rng)
        assert not np.allclose(a.mean_kmh, b.mean_kmh)


class TestDailyProfileValidation:
    def test_wrong_shape_rejected(self):
        with pytest.raises(DatasetError):
            DailyProfile("a", ProfileKind.STEADY, np.ones(10), np.ones(10))

    def test_nonpositive_mean_rejected(self):
        mean = np.ones(N_SLOTS_PER_DAY)
        mean[0] = 0.0
        with pytest.raises(DatasetError):
            DailyProfile("a", ProfileKind.STEADY, mean, np.ones(N_SLOTS_PER_DAY))

    def test_negative_fluct_rejected(self):
        fluct = np.zeros(N_SLOTS_PER_DAY)
        fluct[3] = -1.0
        with pytest.raises(DatasetError):
            DailyProfile("a", ProfileKind.STEADY, np.ones(N_SLOTS_PER_DAY), fluct)


class TestRandomProfiles:
    def test_aligned_with_network(self, grid_net):
        profiles = random_profiles(grid_net, seed=1)
        assert len(profiles) == grid_net.n_roads
        for road, profile in zip(grid_net.roads, profiles):
            assert profile.road_id == road.road_id

    def test_deterministic(self, grid_net):
        a = random_profiles(grid_net, seed=5)
        b = random_profiles(grid_net, seed=5)
        for pa, pb in zip(a, b):
            assert np.allclose(pa.mean_kmh, pb.mean_kmh)

    def test_volatile_fraction(self, grid_net):
        profiles = random_profiles(grid_net, seed=2, volatile_fraction=0.4)
        n_volatile = sum(1 for p in profiles if p.kind is ProfileKind.VOLATILE)
        assert n_volatile == round(0.4 * grid_net.n_roads)

    def test_volatile_fraction_bounds(self, grid_net):
        with pytest.raises(DatasetError):
            random_profiles(grid_net, volatile_fraction=1.5)

    def test_highways_mostly_steady(self):
        net = repro.ring_radial_network(200, seed=3)
        profiles = random_profiles(net, seed=4)
        highway_profiles = [
            p for p, r in zip(profiles, net.roads) if r.kind.value == "highway"
        ]
        steady = sum(1 for p in highway_profiles if p.kind is ProfileKind.STEADY)
        assert steady > len(highway_profiles) / 2
