"""Unit tests for the ASCII visualization helpers."""

import numpy as np
import pytest

import repro
from repro.errors import ExperimentError
from repro.viz import (
    congestion_strip,
    convergence_sparkline,
    render_speed_table,
    speed_histogram,
)


class TestCongestionStrip:
    def test_free_flow_renders_light(self):
        strip = congestion_strip([60, 60, 60], [60, 60, 60])
        assert strip == "   "

    def test_jam_renders_dark(self):
        strip = congestion_strip([1, 60], [60, 60])
        assert strip[0] == "█"
        assert strip[1] == " "

    def test_width_downsampling_keeps_max(self):
        speeds = [60.0] * 9 + [5.0]
        strip = congestion_strip(speeds, [60.0] * 10, width=2)
        assert len(strip) == 2
        assert strip[1] in "▓█"

    def test_length_matches_roads(self):
        strip = congestion_strip([30] * 7, [60] * 7)
        assert len(strip) == 7

    def test_validation(self):
        with pytest.raises(ExperimentError):
            congestion_strip([], [])
        with pytest.raises(ExperimentError):
            congestion_strip([10, 20], [60])
        with pytest.raises(ExperimentError):
            congestion_strip([10], [0])
        with pytest.raises(ExperimentError):
            congestion_strip([10], [60], width=0)


class TestSparkline:
    def test_monotone_history_descends(self):
        spark = convergence_sparkline([1.0, 0.1, 0.01, 0.001])
        assert spark[0] == "█"
        assert spark[-1] == "▁"

    def test_flat_history(self):
        spark = convergence_sparkline([0.5, 0.5, 0.5])
        assert spark == "▁▁▁"

    def test_length(self):
        assert len(convergence_sparkline(np.geomspace(1, 1e-6, 12))) == 12

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            convergence_sparkline([])


class TestSpeedHistogram:
    def test_counts_sum(self, rng):
        speeds = rng.uniform(20, 80, 100)
        text = speed_histogram(speeds, n_bins=5)
        lines = text.splitlines()
        assert len(lines) == 5
        total = sum(int(line.rsplit(" ", 1)[-1]) for line in lines)
        assert total == 100

    def test_validation(self):
        with pytest.raises(ExperimentError):
            speed_histogram([30.0], n_bins=0)


class TestRenderSpeedTable:
    def test_slowest_first(self, grid_net):
        speeds = np.full(25, 40.0)
        speeds[13] = 4.0  # the jam
        text = render_speed_table(grid_net, speeds, limit=3)
        first_row = text.splitlines()[1]
        assert first_row.startswith("r13")

    def test_reference_column(self, grid_net):
        speeds = np.full(25, 40.0)
        text = render_speed_table(grid_net, speeds, reference_kmh=speeds, limit=2)
        assert "reference" in text.splitlines()[0]

    def test_limit_respected(self, grid_net):
        text = render_speed_table(grid_net, np.full(25, 40.0), limit=5)
        assert len(text.splitlines()) == 6  # header + 5 rows

    def test_shape_check(self, grid_net):
        with pytest.raises(ExperimentError):
            render_speed_table(grid_net, np.ones(3))
