"""Property tests for the merge/dedup core (:class:`ObservationLog`).

Hypothesis searches for counterexamples to the invariants the streaming
layer is built on:

* **Order-insensitivity** — with the lateness horizon disabled, any
  permutation of the same message set (and any split into consecutive
  batches) yields bit-identical observations: aggregation sums in
  sorted msg-id order, never insertion order.
* **Idempotence** — re-ingesting an already-merged snapshot is a no-op
  (every message counts as a duplicate, no aggregate moves).
* **Watermark monotonicity** — the watermark is exactly the running max
  of every event timestamp seen and never regresses, whatever the
  arrival order.

Lateness is a deliberate exception to full-history permutation
invariance: which stragglers are dropped depends on when the watermark
passed them, i.e. on batch arrival order.  Within a *single* batch,
lateness is still decided against the pre-batch watermark, so batches
are internally order-insensitive — also checked here.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.stream import ObservationLog, ProbeMessage

N_ROADS = 5

_speeds = st.floats(
    min_value=0.5, max_value=200.0, allow_nan=False, allow_infinity=False
)
_timestamps = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

_messages = st.builds(
    ProbeMessage,
    road=st.integers(min_value=0, max_value=N_ROADS - 1),
    day=st.integers(min_value=0, max_value=1),
    slot=st.integers(min_value=0, max_value=3),
    speed_kmh=_speeds,
    ts=_timestamps,
    msg_id=st.text(alphabet="abcdef", min_size=1, max_size=3),
)

# A msg_id names one message: two distinct readings never share an id
# within their (day, slot, road) bucket (the adapter's content-derived
# ids guarantee this for real feeds).
_batches = st.lists(
    _messages,
    max_size=30,
    unique_by=lambda m: (m.day, m.slot, m.road, m.msg_id),
)


def _state(log: ObservationLog) -> dict:
    return {
        key: log.observations(*key)
        for key in log.open_slots()
    }


def _fresh_log() -> ObservationLog:
    return ObservationLog(N_ROADS, lateness_s=math.inf)


class TestOrderInsensitivity:
    @given(batch=_batches, permuted=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_permutation_yields_identical_observations(self, batch, permuted):
        shuffled = permuted.draw(st.permutations(batch))
        a, b = _fresh_log(), _fresh_log()
        ra = a.ingest(batch)
        rb = b.ingest(shuffled)
        assert _state(a) == _state(b)  # bit-identical floats
        assert (ra.accepted, ra.duplicates) == (rb.accepted, rb.duplicates)
        assert a.watermark == b.watermark

    @given(batch=_batches, cut=st.data())
    @settings(max_examples=60, deadline=None)
    def test_batch_splits_merge_to_the_same_log(self, batch, cut):
        """Ingesting one batch vs. the same stream split at arbitrary
        points gives the same observations (merge associativity)."""
        point = cut.draw(st.integers(min_value=0, max_value=len(batch)))
        whole, split = _fresh_log(), _fresh_log()
        whole.ingest(batch)
        split.ingest(batch[:point])
        split.ingest(batch[point:])
        assert _state(whole) == _state(split)
        assert whole.accepted == split.accepted
        assert whole.watermark == split.watermark

    @given(batch=_batches, warm_ts=_timestamps)
    @settings(max_examples=60, deadline=None)
    def test_single_batch_lateness_ignores_within_batch_order(self, batch, warm_ts):
        """With a finite horizon, lateness inside one batch is decided
        against the pre-batch watermark — so reversing the batch cannot
        change what is accepted."""
        a = ObservationLog(N_ROADS, lateness_s=30.0)
        b = ObservationLog(N_ROADS, lateness_s=30.0)
        # Raise the watermark first so lateness can actually trigger.
        warmup = ProbeMessage(
            road=0, day=1, slot=3, speed_kmh=1.0, ts=warm_ts, msg_id="warmup"
        )
        a.ingest([warmup])
        b.ingest([warmup])
        ra = a.ingest(batch)
        rb = b.ingest(list(reversed(batch)))
        assert _state(a) == _state(b)
        assert ra.accepted == rb.accepted
        assert ra.late == rb.late


class TestIdempotence:
    @given(batch=_batches)
    @settings(max_examples=60, deadline=None)
    def test_reingest_is_a_noop(self, batch):
        log = _fresh_log()
        first = log.ingest(batch)
        before = _state(log)
        again = log.ingest(batch)
        assert again.accepted == 0
        assert again.duplicates == first.accepted
        assert _state(log) == before

    @given(batch=_batches, times=st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_repeated_overlap_never_skews_the_mean(self, batch, times):
        """However many times an overlapping snapshot re-sends the same
        messages, aggregates equal the single-ingest ones (duplication
        cannot bias the per-road mean)."""
        once, many = _fresh_log(), _fresh_log()
        once.ingest(batch)
        for _ in range(times):
            many.ingest(batch)
        assert _state(once) == _state(many)
        assert many.accepted == once.accepted


class TestWatermark:
    @given(stream=st.lists(_batches, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_watermark_is_the_running_max_and_monotone(self, stream):
        log = ObservationLog(N_ROADS, lateness_s=30.0)
        high = -math.inf
        previous = log.watermark
        for batch in stream:
            log.ingest(batch)
            for message in batch:
                high = max(high, message.ts)
            assert log.watermark == high
            assert log.watermark >= previous
            previous = log.watermark

    @given(stream=st.lists(_batches, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_counters_partition_the_stream(self, stream):
        """accepted + duplicates + late accounts for every message."""
        log = ObservationLog(N_ROADS, lateness_s=30.0)
        total = 0
        for batch in stream:
            result = log.ingest(batch)
            assert result.total == len(batch)
            total += len(batch)
        assert log.accepted + log.duplicates + log.late == total
