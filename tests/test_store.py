"""Tests for repro.core.store: snapshots, COW publishes, lazy Γ_R."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.correlation import (
    CorrelationTable,
    PathWeightMode,
    road_road_correlation_matrix,
)
from repro.core.inference import empirical_slot_parameters
from repro.core.rtf import RTFModel, params_signature
from repro.core.store import ModelStore, SnapshotCorrelations
from repro.errors import ModelError, NotFittedError

SLOTS = (91, 92, 93)


@pytest.fixture(scope="module")
def multi_world(small_world):
    """A three-slot RTF model plus a day of refresh samples."""
    network = small_world["network"]
    history = small_world["history"]
    model = RTFModel(
        network,
        [
            empirical_slot_parameters(network, history.slot_samples(t), t)
            for t in SLOTS
        ],
    )
    day = history.day(0)
    samples = {t: day[history.local_slot(t)] for t in SLOTS}
    return {"network": network, "model": model, "samples": samples}


@pytest.fixture()
def store(multi_world):
    return ModelStore(multi_world["model"])


class TestSnapshot:
    def test_initial_version_and_slots(self, store):
        snapshot = store.current()
        assert snapshot.version == 1
        assert store.version == 1
        assert snapshot.slots == SLOTS
        assert 92 in snapshot
        assert 17 not in snapshot

    def test_unknown_slot_raises(self, store):
        snapshot = store.current()
        with pytest.raises(NotFittedError):
            snapshot.slot(17)
        with pytest.raises(NotFittedError):
            snapshot.digest(17)

    def test_digest_is_params_signature(self, store, multi_world):
        snapshot = store.current()
        for t in SLOTS:
            assert snapshot.digest(t) == params_signature(
                multi_world["model"].slot(t)
            )

    def test_model_view_roundtrip(self, store, multi_world):
        view = store.current().model
        for t in SLOTS:
            np.testing.assert_allclose(
                view.slot(t).mu, multi_world["model"].slot(t).mu
            )

    def test_empty_snapshot_rejected(self, multi_world):
        with pytest.raises(ModelError):
            ModelStore.from_slots(multi_world["network"], [])


class TestLazyDerivation:
    def test_matrix_matches_eager_computation(self, store, multi_world):
        snapshot = store.current()
        params = multi_world["model"].slot(92)
        expected = road_road_correlation_matrix(
            multi_world["network"], params.rho, PathWeightMode.LOG
        )
        np.testing.assert_allclose(snapshot.correlation_matrix(92), expected)

    def test_derived_once_then_hits(self, store):
        snapshot = store.current()
        assert store.stats.correlation_derivations == 0
        snapshot.correlation_matrix(92)
        snapshot.correlation_matrix(92)
        snapshot.correlation_matrix(92)
        assert store.stats.correlation_derivations == 1
        assert store.stats.correlation_hits == 2

    def test_propagation_arrays_cached(self, store, multi_world):
        snapshot = store.current()
        first = snapshot.propagation_arrays(93)
        again = snapshot.propagation_arrays(93)
        assert all(a is b for a, b in zip(first, again))
        assert store.stats.propagation_derivations == 1
        expected = multi_world["model"].slot(93).propagation_arrays(
            multi_world["network"]
        )
        np.testing.assert_allclose(first[0], expected[0])

    def test_lru_eviction_forces_rederivation(self, multi_world):
        store = ModelStore(multi_world["model"], max_artifacts=1)
        snapshot = store.current()
        snapshot.correlation_matrix(91)
        snapshot.correlation_matrix(92)  # evicts 91's matrix
        snapshot.correlation_matrix(91)
        assert store.stats.correlation_derivations == 3

    def test_seeded_matrix_is_not_rederived(self, store, multi_world):
        snapshot = store.current()
        params = multi_world["model"].slot(91)
        matrix = road_road_correlation_matrix(
            multi_world["network"], params.rho, PathWeightMode.LOG
        )
        store.seed_correlation(snapshot.digest(91), matrix)
        assert snapshot.correlation_matrix(91) is matrix
        assert store.stats.correlation_derivations == 0
        assert store.stats.correlation_hits == 1

    def test_seed_shape_validated(self, store):
        with pytest.raises(ModelError):
            store.seed_correlation(b"x" * 20, np.zeros((2, 2)))


class TestSnapshotCorrelations:
    def test_is_a_correlation_table(self, store):
        table = store.current().correlations
        assert isinstance(table, SnapshotCorrelations)
        assert isinstance(table, CorrelationTable)
        assert table.slots == SLOTS
        assert table.mode is PathWeightMode.LOG

    def test_eq11_13_match_eager_table(self, store, multi_world):
        lazy = store.current().correlations
        eager = CorrelationTable.precompute(multi_world["model"], slots=[92])
        n = multi_world["network"].n_roads
        queried, selected = [0, 3, 7], [5, 11]
        sigma = multi_world["model"].slot(92).sigma
        assert lazy.road_set(92, 3, selected) == pytest.approx(
            eager.road_set(92, 3, selected)
        )
        assert lazy.set_set(92, queried, selected) == pytest.approx(
            eager.set_set(92, queried, selected)
        )
        assert lazy.weighted_correlation(
            92, queried, selected, sigma
        ) == pytest.approx(eager.weighted_correlation(92, queried, selected, sigma))
        assert lazy.digest(92) == eager.digest(92)

    def test_missing_slot_raises(self, store):
        with pytest.raises(NotFittedError):
            store.current().correlations.matrix(17)


class TestPublish:
    def test_cow_shares_untouched_slots(self, store, multi_world):
        before = store.current()
        refreshed = store.refresh({92: multi_world["samples"][92]})
        assert refreshed.version == 2
        assert store.current() is refreshed
        # Untouched slots share the very same parameter objects...
        for t in (91, 93):
            assert refreshed.slot(t) is before.slot(t)
            assert refreshed.digest(t) == before.digest(t)
        # ...while the touched slot has a new object and digest.
        assert refreshed.slot(92) is not before.slot(92)
        assert refreshed.digest(92) != before.digest(92)

    def test_reader_keeps_pinned_snapshot(self, store, multi_world):
        pinned = store.current()
        mu_before = pinned.slot(92).mu.copy()
        store.refresh({92: multi_world["samples"][92]})
        np.testing.assert_array_equal(pinned.slot(92).mu, mu_before)
        assert pinned.version == 1

    def test_exactly_k_rederivations_after_refresh(self, store, multi_world):
        v1 = store.current()
        for t in SLOTS:
            v1.correlation_matrix(t)
        assert store.stats.correlation_derivations == len(SLOTS)
        v2 = store.refresh({92: multi_world["samples"][92]})
        for t in SLOTS:
            v2.correlation_matrix(t)
        # Exactly one new derivation (the refreshed slot); the two
        # untouched slots hit the digest-shared artifacts.
        assert store.stats.correlation_derivations == len(SLOTS) + 1
        assert store.stats.correlation_hits == 2

    def test_gsp_structure_cache_warm_for_untouched_slots(
        self, store, multi_world
    ):
        """A refresh invalidates only the touched slot's GSP compilation."""
        from repro.core.gsp import GSPConfig, GSPEngine, GSPSchedule

        engine = GSPEngine(multi_world["network"])
        # Structure caching engages on the vectorized (parallel) path.
        config = GSPConfig(schedule=GSPSchedule.BFS_PARALLEL)
        v1 = store.current()
        probes = {0: 50.0}
        for t in SLOTS:
            engine.propagate(v1.slot(t), probes, config)
        assert engine.stats.structure_misses == len(SLOTS)
        v2 = store.refresh({92: multi_world["samples"][92]})
        for t in SLOTS:
            engine.propagate(v2.slot(t), probes, config)
        # Untouched slots keep their digest, so only the refreshed slot
        # recompiles its propagation structure.
        assert engine.stats.structure_misses == len(SLOTS) + 1
        assert engine.stats.structure_hits >= len(SLOTS) - 1

    def test_publish_adds_new_slot(self, store, multi_world):
        network = multi_world["network"]
        history_params = store.current().slot(91)
        extra = repro.RTFSlot(
            slot=101,
            mu=history_params.mu.copy(),
            sigma=history_params.sigma.copy(),
            rho=history_params.rho.copy(),
        )
        snapshot = store.publish([extra])
        assert 101 in snapshot
        assert snapshot.slots == (91, 92, 93, 101)

    def test_publish_validation(self, store):
        params = store.current().slot(92)
        with pytest.raises(ModelError, match="at least one"):
            store.publish([])
        with pytest.raises(ModelError, match="duplicate"):
            store.publish([params, params])

    def test_publish_counters(self, store, multi_world):
        assert store.stats.publishes == 1
        assert store.stats.published_slots == len(SLOTS)
        store.refresh({92: multi_world["samples"][92]})
        assert store.stats.publishes == 2
        assert store.stats.published_slots == len(SLOTS) + 1
        assert "publishes" in store.stats.as_dict()


class TestRefresh:
    def test_unknown_slot_rejected(self, store, multi_world):
        with pytest.raises(NotFittedError):
            store.refresh({17: multi_world["samples"][92]})

    def test_empty_mapping_rejected(self, store):
        with pytest.raises(ModelError):
            store.refresh({})

    def test_moments_move_toward_sample(self, store, multi_world):
        sample = multi_world["samples"][92]
        before = store.current().slot(92)
        after = store.refresh({92: sample}, learning_rate=0.5).slot(92)
        np.testing.assert_allclose(
            after.mu, before.mu + 0.5 * (sample - before.mu)
        )

    def test_bad_learning_rate_rejected(self, store, multi_world):
        with pytest.raises(ModelError):
            store.refresh({92: multi_world["samples"][92]}, learning_rate=1.5)


class TestStoreMetrics:
    def test_store_series_emitted(self, store, multi_world):
        obs.configure(metrics=True, tracing=True)
        obs.get_metrics().clear()
        obs.get_tracer().reset()
        try:
            snapshot = store.refresh({92: multi_world["samples"][92]})
            snapshot.correlation_matrix(92)
            snapshot.correlation_matrix(92)
            snap = obs.get_metrics().snapshot()
            counters = {
                (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
                for e in snap["counters"]
            }
            assert counters[("store.publishes", ())] == 1
            assert counters[("store.refreshes", ())] == 1
            assert counters[("store.refreshed_slots", ())] == 1
            assert (
                counters[
                    (
                        "store.artifacts.derivations",
                        (("kind", "correlation"),),
                    )
                ]
                == 1
            )
            gauges = {e["name"]: e["value"] for e in snap["gauges"]}
            assert gauges["store.version"] == 2
            span_names = {r.name for r in obs.get_tracer().records()}
            assert {"store.publish", "store.refresh"} <= span_names
        finally:
            obs.disable_all()
            obs.get_metrics().clear()
            obs.get_tracer().reset()
