"""Core tests of the pluggable estimator-backend layer (repro.backends).

Covers the registry contract, the RTF+GSP backend's differential
equivalence with the default pipeline path, the offline-shim
equivalence with the wrapped baselines, snapshot state plumbing through
the store, backend-aware refresh (direct and via the streaming
refresher), and the pipeline's per-query backend dispatch.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import errors
from repro.backends import (
    BackendEstimate,
    EstimatorBackend,
    GMRFBackend,
    LSMRNBackend,
    OfflineBackend,
    RTFGSPBackend,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.baselines import EstimationContext, PeriodicEstimator


BUILTINS = ("gmrf", "grmc", "lasso", "lsmrn", "per", "rtf_gsp")


@pytest.fixture(scope="module")
def world(tiny_dataset):
    """A fitted system with every built-in backend attached."""
    data = tiny_dataset
    system = repro.CrowdRTSE.fit(
        data.network, data.train_history, slots=[data.slot]
    )
    for name in BUILTINS:
        if name != "rtf_gsp":
            system.attach_backend(name, history=data.train_history)
    from repro.backends.rtf_gsp import RTFGSPState

    system.attach_backend(
        "rtf_gsp",
        state=RTFGSPState(params={data.slot: system.model.slot(data.slot)}),
    )
    return {"data": data, "system": system}


def answer(world, seed=0, **overrides):
    data = world["data"]
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(seed),
    )
    truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
    kwargs = dict(
        budget=15,
        market=market,
        truth=truth,
        rng=np.random.default_rng(seed),
    )
    kwargs.update(overrides)
    return world["system"].answer_query(data.queried, data.slot, **kwargs)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(available_backends())

    def test_available_is_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)

    def test_create_unknown_raises(self, line_net):
        with pytest.raises(errors.BackendError, match="unknown backend"):
            create_backend("definitely_not_registered", line_net)

    def test_register_invalid_name_raises(self):
        with pytest.raises(errors.BackendError):
            register_backend("Bad Name!", RTFGSPBackend)

    def test_register_non_callable_raises(self):
        with pytest.raises(errors.BackendError):
            register_backend("notcallable", object())  # type: ignore[arg-type]

    def test_duplicate_rejected_without_replace(self):
        with pytest.raises(errors.BackendError, match="already registered"):
            register_backend("rtf_gsp", RTFGSPBackend)

    def test_unregister_unknown_raises(self):
        with pytest.raises(errors.BackendError):
            unregister_backend("definitely_not_registered")

    def test_register_create_unregister_roundtrip(self, line_net):
        class Custom(RTFGSPBackend):
            name = "custom_rtf"

        register_backend("custom_rtf", Custom)
        try:
            backend = create_backend("custom_rtf", line_net)
            assert isinstance(backend, Custom)
        finally:
            unregister_backend("custom_rtf")
        assert "custom_rtf" not in available_backends()

    def test_factory_name_mismatch_raises(self, line_net):
        register_backend("misnamed", RTFGSPBackend, replace=True)
        try:
            with pytest.raises(errors.BackendError, match="produced a backend"):
                create_backend("misnamed", line_net)
        finally:
            unregister_backend("misnamed")


class TestRTFGSPDifferential:
    def test_backend_matches_default_pipeline_field(self, world):
        """The extracted backend is the pipeline: same probes, same field."""
        result = answer(world)
        estimate = world["system"].estimate_with_backend(
            "rtf_gsp", result.probes, world["data"].slot
        )
        np.testing.assert_allclose(
            estimate.speeds, result.full_field_kmh, rtol=0, atol=1e-12
        )
        assert estimate.provenance["converged"] in (True, False)

    def test_answer_query_default_backend_tag(self, world):
        result = answer(world)
        assert result.backend == "rtf_gsp"
        assert result.gsp is not None

    def test_unknown_slot_raises_not_fitted(self, world):
        with pytest.raises(errors.NotFittedError):
            world["system"].estimate_with_backend(
                "rtf_gsp", {0: 40.0}, 999_999
            )


class TestOfflineShim:
    def test_per_backend_matches_estimator(self, world):
        """OfflineBackend('per') == PeriodicEstimator on the same window."""
        data = world["data"]
        result = answer(world)
        estimate = world["system"].estimate_with_backend(
            "per", result.probes, data.slot
        )
        state = world["system"].store.current().backend_state("per")
        context = EstimationContext(
            network=data.network,
            history_samples=state.slot_samples[data.slot],
            probes=dict(result.probes),
        )
        np.testing.assert_allclose(
            estimate.speeds, PeriodicEstimator().estimate(context)
        )
        assert estimate.provenance["estimator"].lower() == "per"

    def test_probes_pinned(self, world):
        # Every probe-consuming backend returns the probe verbatim on the
        # probed road ("per" is deliberately absent: the periodic
        # baseline ignores realtime observations by definition).
        data = world["data"]
        result = answer(world)
        for name in ("lasso", "grmc", "lsmrn", "gmrf"):
            estimate = world["system"].estimate_with_backend(
                name, result.probes, data.slot
            )
            for road, value in result.probes.items():
                assert estimate.speeds[int(road)] == pytest.approx(value), name


class TestStorePlumbing:
    def test_snapshot_carries_backend_names(self, world):
        snapshot = world["system"].store.current()
        assert set(BUILTINS) <= set(snapshot.backend_names)

    def test_backend_state_unknown_raises(self, world):
        snapshot = world["system"].store.current()
        with pytest.raises(errors.BackendError, match="attach_backend"):
            snapshot.backend_state("never_attached")

    def test_attach_publishes_new_version(self, tiny_dataset):
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        before = system.store.version
        system.attach_backend("per", history=data.train_history)
        assert system.store.version == before + 1
        assert "per" in system.store.current().backend_names

    def test_attach_without_history_or_state_raises(self, tiny_dataset):
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        with pytest.raises(errors.ModelError, match="needs a history"):
            system.attach_backend("per")

    def test_refresh_advances_backend_states(self, tiny_dataset):
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        system.attach_backend("per", history=data.train_history)
        system.attach_backend("gmrf", history=data.train_history)
        old = system.store.current()
        old_per = old.backend_state("per")
        old_mu = old.backend_state("gmrf").mu[data.slot]
        day = data.test_history.values[0, :, :]
        slot_index = data.slot - data.test_history.slot_offset
        sample = day[slot_index]
        new = system.refresh({data.slot: sample}, learning_rate=0.25)
        # Old snapshot is immutable; the new one advanced both blobs.
        assert old.backend_state("per") is old_per
        new_per = new.backend_state("per")
        assert (
            new_per.slot_samples[data.slot].shape[0]
            == old_per.slot_samples[data.slot].shape[0] + 1
        )
        np.testing.assert_allclose(
            new.backend_state("gmrf").mu[data.slot],
            0.75 * old_mu + 0.25 * sample,
        )

    def test_pinned_snapshot_keeps_state_across_refresh(self, tiny_dataset):
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        system.attach_backend("per", history=data.train_history)
        slot_index = data.slot - data.test_history.slot_offset
        sample = data.test_history.values[0, slot_index, :]
        with system.store.pinned() as pinned:
            state_before = pinned.backend_state("per")
            system.refresh({data.slot: sample})
            assert pinned.backend_state("per") is state_before

    def test_backend_artifacts_counted(self, tiny_dataset):
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        system.attach_backend("gmrf", history=data.train_history)
        stats0 = system.store.stats.backend_derivations
        system.estimate_with_backend("gmrf", {0: 40.0}, data.slot)
        system.estimate_with_backend("gmrf", {0: 41.0}, data.slot)
        stats = system.store.stats
        assert stats.backend_derivations == stats0 + 1
        assert stats.backend_hits >= 1


class TestAnswerQueryDispatch:
    @pytest.mark.parametrize("name", ["per", "lsmrn", "gmrf"])
    def test_backend_answer_end_to_end(self, world, name):
        result = answer(world, backend=name)
        assert result.backend == name
        assert result.gsp is None
        assert result.full_field_kmh.shape == (
            world["data"].network.n_roads,
        )
        assert np.all(np.isfinite(result.estimates_kmh))

    def test_unattached_backend_raises(self, tiny_dataset):
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(0),
        )
        truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
        with pytest.raises(errors.BackendError):
            system.answer_query(
                data.queried, data.slot, budget=15,
                market=market, truth=truth, backend="lsmrn",
            )


class TestStreamRefreshIntegration:
    def test_slot_close_advances_backend_state(self, tiny_dataset):
        """Streamed observations refresh attached backends too."""
        from repro import stream as streaming

        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        system.attach_backend("per", history=data.train_history)
        old = system.store.current()
        old_days = old.backend_state("per").slot_samples[data.slot].shape[0]
        batches = streaming.synthesize_day_feed(
            data.test_history, 0, slots=[data.slot], coverage=1.0, seed=5
        )
        config = streaming.StreamConfig(async_publish=False, min_observed=1)
        with streaming.StreamRefresher(system, config) as refresher:
            for batch in batches:
                refresher.ingest(batch)
            refresher.drain()
        new = system.store.current()
        assert new.version > old.version
        assert (
            new.backend_state("per").slot_samples[data.slot].shape[0]
            == old_days + 1
        )


class TestTemplateContract:
    def test_estimate_output_contract_enforced(self, tiny_dataset):
        """A backend returning the wrong shape is caught by the template."""
        data = tiny_dataset

        class Broken(OfflineBackend):
            def _estimate(self, state, probes, slot, deadline):
                return np.zeros(3), {}

        backend = Broken(
            data.network, PeriodicEstimator(), name="broken_shape"
        )
        state = backend.fit(data.train_history, slots=[data.slot])
        with pytest.raises(errors.BackendError, match="shape"):
            backend.estimate(state, {0: 40.0}, data.slot)

    def test_invalid_probes_rejected(self, tiny_dataset):
        data = tiny_dataset
        backend = OfflineBackend(data.network, PeriodicEstimator(), name="per")
        state = backend.fit(data.train_history, slots=[data.slot])
        with pytest.raises(errors.BackendError, match="probe"):
            backend.estimate(state, {0: -5.0}, data.slot)
        with pytest.raises(errors.BackendError, match="probe"):
            backend.estimate(state, {data.network.n_roads + 7: 40.0}, data.slot)

    def test_refresh_learning_rate_validated(self, tiny_dataset):
        data = tiny_dataset
        backend = OfflineBackend(data.network, PeriodicEstimator(), name="per")
        state = backend.fit(data.train_history, slots=[data.slot])
        with pytest.raises(errors.BackendError, match="learning_rate"):
            backend.refresh(state, {}, learning_rate=1.5)

    def test_estimate_returns_backend_estimate(self, world):
        result = answer(world)
        estimate = world["system"].estimate_with_backend(
            "per", result.probes, world["data"].slot
        )
        assert isinstance(estimate, BackendEstimate)
        assert estimate.backend == "per"
        assert estimate.slot == world["data"].slot

    def test_fit_empty_slots_raises(self, tiny_dataset):
        data = tiny_dataset
        backend = OfflineBackend(data.network, PeriodicEstimator(), name="per")
        with pytest.raises(errors.BackendError, match="at least one slot"):
            backend.fit(data.train_history, slots=[])

    def test_subclasses_are_estimator_backends(self):
        for cls in (RTFGSPBackend, OfflineBackend, LSMRNBackend, GMRFBackend):
            assert issubclass(cls, EstimatorBackend)
