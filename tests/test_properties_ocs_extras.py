"""Property-based tests for local search and the CSV loader round-trip."""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.core.local_search import local_search
from repro.core.ocs import OCSInstance, hybrid_greedy
from repro.datasets.loaders import history_from_records, history_to_csv, history_from_csv
from repro.traffic.history import SpeedHistory


@st.composite
def ocs_instance(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    base = rng.uniform(0.05, 0.95, (n, n))
    corr = (base + base.T) / 2
    np.fill_diagonal(corr, 1.0)
    n_q = draw(st.integers(1, n))
    queried = tuple(sorted(rng.choice(n, n_q, replace=False).tolist()))
    costs = rng.integers(1, 4, n).astype(float)
    return OCSInstance(
        queried=queried,
        candidates=tuple(range(n)),
        costs=costs,
        budget=draw(st.integers(2, 10)),
        theta=draw(st.floats(0.4, 1.0)),
        corr=corr,
        sigma=rng.uniform(0.5, 6.0, n),
    )


class TestLocalSearchProperties:
    @given(ocs_instance())
    @settings(max_examples=30, deadline=None)
    def test_refinement_feasible_and_monotone(self, instance):
        greedy = hybrid_greedy(instance)
        refined = local_search(instance, greedy.selected, max_rounds=20)
        assert instance.is_feasible(refined.selected)
        assert refined.objective >= greedy.objective - 1e-9

    @given(ocs_instance())
    @settings(max_examples=20, deadline=None)
    def test_from_scratch_feasible(self, instance):
        result = local_search(instance, (), max_rounds=20)
        assert instance.is_feasible(result.selected)


@st.composite
def small_history(draw):
    n_days = draw(st.integers(2, 5))
    n_slots = draw(st.integers(1, 4))
    n_roads = draw(st.integers(1, 5))
    offset = draw(st.integers(0, 280))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    speeds = rng.uniform(5, 120, (n_days, n_slots, n_roads)).astype(np.float32)
    ids = [f"r{i}" for i in range(n_roads)]
    return SpeedHistory(speeds, ids, slot_offset=offset)


class TestLoaderProperties:
    @given(history=small_history())
    @settings(max_examples=25, deadline=None)
    def test_csv_roundtrip_preserves_history(self, history, tmp_path_factory):
        path = tmp_path_factory.mktemp("csv") / "h.csv"
        history_to_csv(history, path)
        loaded = history_from_csv(path)
        assert loaded.n_days == history.n_days
        assert loaded.n_slots == history.n_slots
        assert loaded.slot_offset == history.slot_offset
        assert set(loaded.road_ids) == set(history.road_ids)
        # Values survive the text round-trip to 3 decimals.
        reorder = [loaded.road_ids.index(r) for r in history.road_ids]
        assert np.allclose(
            loaded.values[:, :, reorder], history.values, atol=2e-3
        )

    @given(small_history())
    @settings(max_examples=25, deadline=None)
    def test_records_roundtrip(self, history):
        records = []
        for day in range(history.n_days):
            for s in range(history.n_slots):
                for r, rid in enumerate(history.road_ids):
                    records.append(
                        (rid, day, history.slot_offset + s,
                         float(history.values[day, s, r]))
                    )
        rebuilt = history_from_records(records)
        assert rebuilt.n_records == history.n_records
