"""The canonical EstimationRequest and its deprecated spellings.

One request type (ISSUE 9) now crosses the pipeline, the serving layer,
the workload format and the CLI.  These tests pin its contract:

* construction-time validation (deadline, precision) raises
  :class:`~repro.errors.ModelError`, not a deep solver error;
* the legacy ``answer_query(queried, slot, budget, ...)`` spelling warns
  once per process and returns numbers bit-identical to a canonical
  request with ``warm_start=False``;
* :class:`~repro.serve.ServeRequest` is a deprecated alias whose only
  behavioural difference is the pre-v2 ``warm_start=False`` default.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro
from repro import errors
from repro.core.gsp import PrecisionPolicy
from repro.core.request import EstimationRequest, as_request
from repro.errors import ModelError
from repro.serve import ServeRequest


def _market(data, seed=0):
    return repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(seed),
    )


class TestConstruction:
    def test_normalizes_queried_slot_budget(self):
        req = EstimationRequest(
            queried=np.array([3, 1, 4]), slot=np.int64(93), budget=20
        )
        assert req.queried == (3, 1, 4)
        assert isinstance(req.slot, int) and req.slot == 93
        assert isinstance(req.budget, float) and req.budget == 20.0

    @pytest.mark.parametrize("deadline_s", [0, -0.5])
    def test_nonpositive_deadline_rejected(self, deadline_s):
        with pytest.raises(ModelError, match="deadline_s"):
            EstimationRequest(queried=(1,), slot=0, budget=5, deadline_s=deadline_s)

    def test_unknown_precision_rejected(self):
        with pytest.raises(ModelError, match="precision"):
            EstimationRequest(queried=(1,), slot=0, budget=5, precision="float16")

    def test_precision_policy_property(self):
        req = EstimationRequest(queried=(1,), slot=0, budget=5, precision="float32")
        assert req.precision_policy is PrecisionPolicy.FLOAT32
        assert req.precision == "float32"

    def test_precision_accepts_policy_instance(self):
        req = EstimationRequest(
            queried=(1,), slot=0, budget=5, precision=PrecisionPolicy.FLOAT32
        )
        assert req.precision == "float32"

    def test_warm_start_defaults_on(self):
        assert EstimationRequest(queried=(1,), slot=0, budget=5).warm_start is True


class TestBinding:
    def test_bound_fills_unset_fields(self, tiny_dataset):
        market = _market(tiny_dataset)
        truth = repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        )
        req = EstimationRequest(queried=(1, 2), slot=tiny_dataset.slot, budget=10)
        bound = req.bound(market, truth)
        assert bound.market is market and bound.truth is truth

    def test_bound_is_identity_when_complete(self, tiny_dataset):
        market = _market(tiny_dataset)
        truth = repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        )
        req = EstimationRequest(
            queried=(1, 2), slot=tiny_dataset.slot, budget=10,
            market=market, truth=truth,
        )
        assert req.bound(_market(tiny_dataset, 1), truth) is req

    def test_as_request_passthrough_and_coercion(self):
        req = EstimationRequest(queried=(1, 2), slot=3, budget=10)
        assert as_request(req) is req
        coerced = as_request([4, 5], slot=7, budget=12.0, warm_start=False)
        assert coerced.queried == (4, 5)
        assert coerced.slot == 7 and coerced.warm_start is False


class TestAnswerQuerySpellings:
    def test_request_plus_legacy_args_rejected(self, tiny_system, tiny_dataset):
        req = EstimationRequest(
            queried=tiny_dataset.queried, slot=tiny_dataset.slot, budget=10
        )
        with pytest.raises(ModelError, match="not both"):
            tiny_system.answer_query(req, slot=tiny_dataset.slot)

    def test_legacy_spelling_without_slot_budget_rejected(self, tiny_system):
        with pytest.raises(ModelError, match="legacy"):
            tiny_system.answer_query([1, 2, 3])

    def test_missing_market_or_truth_rejected(self, tiny_system, tiny_dataset):
        req = EstimationRequest(
            queried=tiny_dataset.queried, slot=tiny_dataset.slot, budget=10
        )
        with pytest.raises(ModelError, match="market"):
            tiny_system.answer_query(req)

    def test_legacy_spelling_warns_once(self, tiny_system, tiny_dataset):
        truth = repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        )
        errors.reset_deprecation_warnings("pipeline.answer_query_kwargs")
        with pytest.warns(DeprecationWarning, match="EstimationRequest"):
            tiny_system.answer_query(
                tiny_dataset.queried,
                tiny_dataset.slot,
                budget=10,
                market=_market(tiny_dataset),
                truth=truth,
            )

    def test_legacy_matches_canonical_warm_start_off(
        self, tiny_system, tiny_dataset
    ):
        """The shim's numbers are bit-identical to the canonical spelling."""
        truth = repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        )
        legacy = tiny_system.answer_query(
            tiny_dataset.queried,
            tiny_dataset.slot,
            budget=10,
            market=_market(tiny_dataset),
            truth=truth,
        )
        canonical = tiny_system.answer_query(
            EstimationRequest(
                queried=tiny_dataset.queried,
                slot=tiny_dataset.slot,
                budget=10,
                warm_start=False,
            ),
            market=_market(tiny_dataset),
            truth=truth,
        )
        assert legacy.probes == canonical.probes
        assert np.array_equal(legacy.estimates_kmh, canonical.estimates_kmh)
        assert np.array_equal(legacy.full_field_kmh, canonical.full_field_kmh)

    def test_request_deadline_enforced(self, tiny_system, tiny_dataset):
        truth = repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        )
        req = EstimationRequest(
            queried=tiny_dataset.queried,
            slot=tiny_dataset.slot,
            budget=10,
            deadline_s=1e-9,
        )
        with pytest.raises(errors.QueryTimeoutError):
            tiny_system.answer_query(
                req, market=_market(tiny_dataset), truth=truth
            )


class TestServeRequestShim:
    def test_is_estimation_request_with_warm_start_off(self):
        errors.reset_deprecation_warnings("serve.serve_request")
        with pytest.warns(DeprecationWarning, match="ServeRequest"):
            req = ServeRequest(queried=(1, 2), slot=3, budget=10)
        assert isinstance(req, EstimationRequest)
        assert req.warm_start is False

    def test_field_order_matches_base(self):
        base = [f.name for f in dataclasses.fields(EstimationRequest)]
        sub = [f.name for f in dataclasses.fields(ServeRequest)]
        assert base == sub
