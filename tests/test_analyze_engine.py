"""Unit tests for the shared interprocedural engine.

Covers call-graph construction/resolution (`callgraph`), the forward
taint walk (`dataflow`), and blocking-atom classification (`blocking`)
— the machinery under RA002 and RA007–RA012.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from tests.analyze_util import make_project
from tools.analyze.blocking import blocking_atom, function_atoms, may_block
from tools.analyze.callgraph import (
    FunctionInfo,
    UnionFind,
    bind_call_args,
    build_callgraph,
)
from tools.analyze.dataflow import TaintSpec, run_taint


def _graph(tmp_path, files):
    return build_callgraph(make_project(tmp_path, files))


class TestCallGraph:
    def test_graph_is_cached_per_project(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": "def f():\n    pass\n"})
        assert build_callgraph(project) is build_callgraph(project)

    def test_self_method_resolves_exactly(self, tmp_path):
        graph = _graph(tmp_path, {"src/m.py": """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()

        def outer(self):
            self.inner()

        def inner(self):
            return 1
"""})
        outer = graph.functions["src/m.py::Box.outer"]
        (site,) = outer.calls
        assert graph.resolve(site.desc) == ["src/m.py::Box.inner"]

    def test_module_function_and_constructor_resolution(self, tmp_path):
        graph = _graph(tmp_path, {"src/m.py": """
    class Widget:
        def __init__(self):
            self.x = 1

    def helper():
        return Widget()

    def caller():
        return helper()
"""})
        caller = graph.functions["src/m.py::caller"]
        (site,) = caller.calls
        assert graph.resolve(site.desc) == ["src/m.py::helper"]
        helper = graph.functions["src/m.py::helper"]
        (ctor_site,) = helper.calls
        assert graph.resolve(ctor_site.desc) == ["src/m.py::Widget.__init__"]

    def test_numpy_array_never_resolves_to_project_method(self, tmp_path):
        """`np.array(...)` colliding with a project method named `array`
        must stay unresolved — the misresolution wired fake file-I/O
        into every numpy caller."""
        graph = _graph(tmp_path, {"src/m.py": """
    import numpy as np

    class Store:
        def array(self, name):
            with open(name) as fh:
                return fh.read()

    def pure(values):
        return np.array(values).T
"""})
        pure = graph.functions["src/m.py::pure"]
        (site,) = pure.calls
        assert site.desc is None
        assert may_block(graph).get("src/m.py::pure", set()) == set()

    def test_held_locks_annotate_call_sites(self, tmp_path):
        graph = _graph(tmp_path, {"src/m.py": """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()

        def locked(self):
            with self._lock:
                self.work()
            self.work()

        def work(self):
            return 1
"""})
        locked = graph.functions["src/m.py::Box.locked"]
        held = [sorted(site.held) for site in locked.calls]
        assert held == [["src/m.py::Box._lock"], []]

    def test_bind_call_args_drops_self_and_binds_keywords(self, tmp_path):
        graph = _graph(tmp_path, {"src/m.py": """
    class Box:
        def put(self, item, slot=0, force=False):
            return item

    def use(box, thing):
        box.put(thing, force=True)
"""})
        use = graph.functions["src/m.py::use"]
        (site,) = use.calls
        callee = graph.functions["src/m.py::Box.put"]
        bound = bind_call_args(site.node, callee)
        assert set(bound) == {"item", "force"}
        assert isinstance(bound["item"], ast.Name) and bound["item"].id == "thing"

    def test_fixpoint_absorbs_callee_properties(self, tmp_path):
        graph = _graph(tmp_path, {"src/m.py": """
    def leaf():
        return 1

    def mid():
        return leaf()

    def top():
        return mid()
"""})
        out = graph.fixpoint({"src/m.py::leaf": {"hot"}})
        assert out["src/m.py::top"] == {"hot"}

    def test_union_find_canonicalizes_deterministically(self):
        uf = UnionFind()
        uf.union("b::lock", "a::lock")
        uf.union("c::lock", "b::lock")
        assert uf.find("c::lock") == "a::lock"
        assert uf.find("a::lock") == "a::lock"


class _MarkSpec(TaintSpec):
    """Toy spec: `source()` births the tag, `clean()` kills it."""

    def call_tags(
        self, func: FunctionInfo, node: ast.Call, ctx
    ) -> Optional[Set[str]]:
        name = node.func.id if isinstance(node.func, ast.Name) else node.func.attr
        if name == "source":
            return {"T"}
        if name == "clean":
            return set()
        return None


def _flow(tmp_path, body):
    graph = _graph(tmp_path, {"src/m.py": body})
    flows = run_taint(graph, _MarkSpec())
    return graph, flows


def _returns(flows, key):
    return set(flows[key].returns)


class TestDataflow:
    def test_strong_update_launders(self, tmp_path):
        _, flows = _flow(tmp_path, """
    def f():
        x = source()
        x = clean()
        return x
""")
        assert _returns(flows, "src/m.py::f") == set()

    def test_branch_assignment_is_weak(self, tmp_path):
        _, flows = _flow(tmp_path, """
    def f(flag):
        x = source()
        if flag:
            x = clean()
        return x
""")
        assert _returns(flows, "src/m.py::f") == {"T"}

    def test_loop_body_walked_twice_for_late_tags(self, tmp_path):
        """A tag born at the bottom of a loop must reach a use at the
        top on the conceptual next iteration."""
        _, flows = _flow(tmp_path, """
    def f(items):
        x = clean()
        out = None
        for item in items:
            out = x
            x = source()
        return out
""")
        assert _returns(flows, "src/m.py::f") == {"T"}

    def test_with_binds_optional_vars(self, tmp_path):
        _, flows = _flow(tmp_path, """
    def f():
        with source() as handle:
            return handle
""")
        assert _returns(flows, "src/m.py::f") == {"T"}

    def test_return_summaries_cross_functions(self, tmp_path):
        _, flows = _flow(tmp_path, """
    def maker():
        return source()

    def wrapper():
        return maker()

    def user():
        value = wrapper()
        return value
""")
        assert _returns(flows, "src/m.py::user") == {"T"}

    def test_node_tags_recorded_for_sink_lookup(self, tmp_path):
        graph, flows = _flow(tmp_path, """
    def f(sink):
        x = source()
        sink(x)
""")
        flow = flows["src/m.py::f"]
        call = next(
            site.node for site in flow.func.calls
            if isinstance(site.node.func, ast.Name) and site.node.func.id == "sink"
        )
        assert flow.tags_of(call.args[0]) == frozenset({"T"})

    def test_binop_and_container_propagation(self, tmp_path):
        _, flows = _flow(tmp_path, """
    def f():
        x = source()
        return [x + 1, 2]
""")
        assert _returns(flows, "src/m.py::f") == {"T"}


def _atom(source: str) -> Optional[str]:
    call = ast.parse(source, mode="eval").body
    assert isinstance(call, ast.Call)
    return blocking_atom(call)


class TestBlockingAtoms:
    def test_classification(self):
        assert _atom("time.sleep(1)") == "time.sleep"
        assert _atom("open('f')") == "file I/O"
        assert _atom("worker.join(timeout=5)") == "thread join"
        assert _atom("jobs.get()") == "queue.get"
        assert _atom("outbox.put(item)") == "queue.put"
        assert _atom("cond.wait()") == "wait"

    def test_non_blocking_lookalikes(self):
        assert _atom("', '.join(parts)") is None
        assert _atom("'-'.join(['a', 'b'])") is None
        assert _atom("mapping.get('key')") is None
        assert _atom("jobs.get_nowait()") is None
        assert _atom("jobs.put_nowait(item)") is None

    def test_function_atoms_and_may_block(self, tmp_path):
        graph = _graph(tmp_path, {"src/m.py": """
    import time

    def slow():
        time.sleep(1)

    def wrapper():
        slow()

    def fast():
        return 2 + 2
"""})
        assert function_atoms(graph.functions["src/m.py::slow"]) == {"time.sleep"}
        summaries = may_block(graph)
        assert summaries["src/m.py::wrapper"] == {"time.sleep"}
        assert summaries["src/m.py::fast"] == set()
