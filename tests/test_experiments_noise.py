"""Tests for the worker-noise sensitivity experiment."""

import pytest

from repro.experiments import noise_sensitivity
from repro.experiments.common import ExperimentScale


class TestNoiseSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return noise_sensitivity.run(
            ExperimentScale.QUICK,
            noise_levels=(0.02, 0.15, 0.5),
            n_trials=2,
        )

    def test_levels_covered(self, rows):
        assert [r.noise for r in rows] == [0.02, 0.15, 0.5]

    def test_probe_error_grows_with_noise(self, rows):
        probe = [r.probe_mape for r in rows]
        assert probe[0] < probe[-1]

    def test_gsp_degrades_with_noise(self, rows):
        gsp = [r.gsp_mape for r in rows]
        assert gsp[0] <= gsp[-1] + 0.01

    def test_per_unaffected_by_noise(self, rows):
        per = {round(r.per_mape, 6) for r in rows}
        assert len(per) == 1  # the periodic answer never sees the crowd

    def test_crowd_helps_at_low_noise(self, rows):
        assert rows[0].gsp_mape < rows[0].per_mape

    def test_format(self, rows):
        text = noise_sensitivity.format_table(rows)
        assert "crowd helps" in text
