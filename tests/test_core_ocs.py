"""Unit tests for repro.core.ocs: greedy solvers vs brute force."""

import numpy as np
import pytest

import repro
from repro.errors import BudgetError, SelectionError
from repro.core.ocs import (
    BRUTE_FORCE_LIMIT,
    OCSInstance,
    brute_force_ocs,
    hybrid_greedy,
    objective_greedy,
    random_selection,
    ratio_greedy,
    trivial_solution,
)

APPROX_RATIO = (1 - 1 / np.e) / 2


def make_instance(
    n=10,
    queried=(0, 1, 2),
    candidates=None,
    costs=None,
    budget=5,
    theta=1.0,
    seed=0,
):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.1, 0.95, size=(n, n))
    corr = (base + base.T) / 2
    np.fill_diagonal(corr, 1.0)
    sigma = rng.uniform(1.0, 5.0, size=n)
    candidates = tuple(candidates if candidates is not None else range(n))
    if costs is None:
        costs = np.ones(len(candidates))
    return OCSInstance(
        queried=tuple(queried),
        candidates=candidates,
        costs=np.asarray(costs, dtype=float),
        budget=budget,
        theta=theta,
        corr=corr,
        sigma=sigma,
    )


class TestInstanceValidation:
    def test_empty_queried(self):
        with pytest.raises(SelectionError):
            make_instance(queried=())

    def test_duplicate_candidates(self):
        with pytest.raises(SelectionError):
            make_instance(candidates=(0, 0, 1))

    def test_nonpositive_cost(self):
        with pytest.raises(BudgetError):
            make_instance(costs=[1, 0] + [1] * 8)

    def test_nonpositive_budget(self):
        with pytest.raises(BudgetError):
            make_instance(budget=0)

    def test_theta_out_of_range(self):
        with pytest.raises(SelectionError):
            make_instance(theta=0.0)
        with pytest.raises(SelectionError):
            make_instance(theta=1.5)

    def test_index_out_of_range(self):
        with pytest.raises(SelectionError):
            make_instance(queried=(99,))


class TestObjective:
    def test_empty_selection_zero(self):
        inst = make_instance()
        assert inst.objective([]) == 0.0

    def test_monotone_in_selection(self):
        inst = make_instance(seed=1)
        assert inst.objective([3]) <= inst.objective([3, 4]) + 1e-12

    def test_matches_manual_computation(self):
        inst = make_instance(seed=2, queried=(0, 1))
        sel = [4, 7]
        expected = sum(
            inst.sigma[q] * max(inst.corr[q, 4], inst.corr[q, 7]) for q in (0, 1)
        )
        assert inst.objective(sel) == pytest.approx(expected)

    def test_selection_cost(self):
        inst = make_instance(costs=np.arange(1, 11, dtype=float))
        assert inst.selection_cost([0, 4]) == pytest.approx(1 + 5)

    def test_cost_of_non_candidate_raises(self):
        inst = make_instance(candidates=(0, 1, 2))
        with pytest.raises(SelectionError):
            inst.selection_cost([5])


class TestFeasibility:
    def test_budget_violation(self):
        inst = make_instance(budget=2)
        assert not inst.is_feasible([0, 1, 2])
        assert inst.is_feasible([0, 1])

    def test_redundancy_violation(self):
        inst = make_instance(theta=0.2, seed=3)
        # Find a pair above theta.
        pair = None
        for a in range(10):
            for b in range(a + 1, 10):
                if inst.corr[a, b] > 0.2:
                    pair = [a, b]
                    break
            if pair:
                break
        assert pair is not None
        assert not inst.is_feasible(pair)

    def test_duplicates_infeasible(self):
        inst = make_instance()
        assert not inst.is_feasible([1, 1])

    def test_non_candidate_infeasible(self):
        inst = make_instance(candidates=(0, 1))
        assert not inst.is_feasible([5])


class TestGreedySolvers:
    @pytest.mark.parametrize("solver", [ratio_greedy, objective_greedy, hybrid_greedy])
    def test_solutions_feasible(self, solver):
        for seed in range(5):
            inst = make_instance(
                seed=seed,
                budget=6,
                theta=0.9,
                costs=np.random.default_rng(seed).integers(1, 4, 10).astype(float),
            )
            result = solver(inst)
            assert inst.is_feasible(result.selected)
            assert result.objective == pytest.approx(inst.objective(result.selected))

    def test_hybrid_is_max_of_components(self):
        for seed in range(8):
            costs = np.random.default_rng(seed).integers(1, 5, 10).astype(float)
            inst = make_instance(seed=seed, budget=7, costs=costs, theta=0.95)
            hybrid = hybrid_greedy(inst)
            ratio = ratio_greedy(inst)
            objective = objective_greedy(inst)
            assert hybrid.objective == pytest.approx(
                max(ratio.objective, objective.objective)
            )

    def test_objective_monotone_in_budget(self):
        costs = np.random.default_rng(4).integers(1, 5, 10).astype(float)
        values = []
        for budget in (2, 4, 6, 8, 10):
            inst = make_instance(seed=4, budget=budget, costs=costs, theta=0.95)
            values.append(hybrid_greedy(inst).objective)
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_paper_example1_worst_case(self):
        """Paper Example 1: Ratio-Greedy picks the cheap low-value road."""
        big_k = 10.0
        corr = np.zeros((3, 3))
        np.fill_diagonal(corr, 1.0)
        corr[2, 0] = corr[0, 2] = 0.1  # corr(q, r1) small but ratio-best
        corr[2, 1] = corr[1, 2] = 0.9
        inst = OCSInstance(
            queried=(2,),
            candidates=(0, 1),
            costs=np.array([1.0, big_k]),
            budget=big_k,
            theta=1.0,
            corr=corr,
            sigma=np.ones(3),
        )
        ratio = ratio_greedy(inst)
        # Ratio grabs r0 first (ratio 0.1 > 0.9/10 = 0.09), then cannot
        # afford r1: objective 0.1.
        assert ratio.selected == (0,)
        objective = objective_greedy(inst)
        assert objective.selected == (1,)
        hybrid = hybrid_greedy(inst)
        assert hybrid.objective == pytest.approx(0.9)

    def test_runtime_recorded(self):
        result = hybrid_greedy(make_instance())
        assert result.runtime_seconds >= 0
        assert result.algorithm == "hybrid-greedy"

    def test_redundancy_respected_during_greedy(self):
        inst = make_instance(seed=6, theta=0.5, budget=10)
        result = hybrid_greedy(inst)
        for a in result.selected:
            for b in result.selected:
                if a != b:
                    assert inst.corr[a, b] <= 0.5 + 1e-9


class TestHybridApproximationRatio:
    """Empirical check of Theorem 2 against exact optima."""

    def test_ratio_bound_holds_on_random_instances(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            n = int(rng.integers(6, 12))
            queried = tuple(rng.choice(n, size=3, replace=False).tolist())
            costs = rng.integers(1, 4, n).astype(float)
            inst = make_instance(
                n=n,
                queried=queried,
                costs=costs,
                budget=int(rng.integers(3, 8)),
                theta=float(rng.uniform(0.6, 1.0)),
                seed=trial,
            )
            optimal = brute_force_ocs(inst)
            hybrid = hybrid_greedy(inst)
            assert inst.is_feasible(optimal.selected)
            assert hybrid.objective >= APPROX_RATIO * optimal.objective - 1e-9
            assert hybrid.objective <= optimal.objective + 1e-9

    def test_brute_force_limit(self):
        inst = make_instance(n=BRUTE_FORCE_LIMIT + 5, budget=3)
        with pytest.raises(SelectionError, match="limited"):
            brute_force_ocs(inst)

    def test_brute_force_exact_on_tiny(self):
        inst = make_instance(n=5, queried=(0,), budget=2, seed=9)
        result = brute_force_ocs(inst)
        # Enumerate manually.
        best = 0.0
        from itertools import combinations
        for k in range(3):
            for subset in combinations(range(5), k):
                if inst.is_feasible(list(subset)):
                    best = max(best, inst.objective(list(subset)))
        assert result.objective == pytest.approx(best)


class TestRandomSelection:
    def test_feasible(self, rng):
        inst = make_instance(seed=11, theta=0.8, budget=6)
        result = random_selection(inst, rng)
        assert inst.is_feasible(result.selected)

    def test_deterministic_with_same_rng_seed(self):
        inst = make_instance(seed=12, budget=5)
        a = random_selection(inst, np.random.default_rng(3))
        b = random_selection(inst, np.random.default_rng(3))
        assert a.selected == b.selected

    def test_usually_worse_than_hybrid(self):
        wins = 0
        for seed in range(10):
            inst = make_instance(seed=seed, budget=4, theta=0.95)
            hybrid = hybrid_greedy(inst)
            rand = random_selection(inst, np.random.default_rng(seed))
            if hybrid.objective >= rand.objective - 1e-9:
                wins += 1
        assert wins >= 8


class TestTrivialSolution:
    def test_requires_theta_one_and_unit_costs(self):
        inst = make_instance(theta=0.9)
        assert trivial_solution(inst) is None
        inst = make_instance(costs=np.full(10, 2.0))
        assert trivial_solution(inst) is None

    def test_over_adequate_budget_selects_all(self):
        inst = make_instance(budget=20, theta=1.0)
        result = trivial_solution(inst)
        assert result is not None
        assert set(result.selected) == set(inst.candidates)

    def test_few_queried_picks_best_per_query(self):
        inst = make_instance(queried=(0, 1), budget=5, theta=1.0)
        result = trivial_solution(inst)
        assert result is not None
        expected = set()
        c = np.asarray(inst.candidates)
        for q in inst.queried:
            expected.add(int(c[np.argmax(inst.corr[q, c])]))
        assert set(result.selected) == expected

    def test_trivial_matches_brute_force(self):
        inst = make_instance(n=8, queried=(0, 1), budget=4, theta=1.0, seed=14)
        trivial = trivial_solution(inst)
        optimal = brute_force_ocs(inst)
        assert trivial is not None
        assert trivial.objective == pytest.approx(optimal.objective)

    def test_neither_case_returns_none(self):
        inst = make_instance(queried=tuple(range(6)), budget=5, theta=1.0)
        assert trivial_solution(inst) is None
