"""Unit tests for repro.eval.coverage."""

import pytest

import repro
from repro.errors import ExperimentError
from repro.eval.coverage import coverage_report, k_hop_coverage


class TestKHopCoverage:
    def test_zero_hop_counts_self(self, line_net):
        assert k_hop_coverage(line_net, [2], [2], 0) == 1
        assert k_hop_coverage(line_net, [2], [3], 0) == 0

    def test_one_hop_on_line(self, line_net):
        assert k_hop_coverage(line_net, [2], [1, 3], 1) == 2
        assert k_hop_coverage(line_net, [2], [0, 4], 1) == 0

    def test_two_hop_on_line(self, line_net):
        assert k_hop_coverage(line_net, [2], [0, 1, 3, 4, 5], 2) == 4

    def test_multiple_sources_union(self, line_net):
        assert k_hop_coverage(line_net, [0, 5], [1, 2, 3, 4], 1) == 2

    def test_empty_selection(self, line_net):
        assert k_hop_coverage(line_net, [], [0, 1], 1) == 0

    def test_empty_queried_rejected(self, line_net):
        with pytest.raises(ExperimentError):
            k_hop_coverage(line_net, [0], [], 1)

    def test_negative_k_rejected(self, line_net):
        with pytest.raises(ExperimentError):
            k_hop_coverage(line_net, [0], [1], -1)

    def test_monotone_in_k(self, grid_net):
        crowd = [0, 12]
        queried = list(range(grid_net.n_roads))
        counts = [k_hop_coverage(grid_net, crowd, queried, k) for k in range(5)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_disconnected_roads_never_covered(self):
        roads = [repro.Road(road_id=f"r{i}") for i in range(3)]
        net = repro.TrafficNetwork(roads, [("r0", "r1")])
        assert k_hop_coverage(net, [0], [2], 10) == 0


class TestCoverageReport:
    def test_keys_and_monotonicity(self, grid_net):
        report = coverage_report(grid_net, [0], list(range(25)), max_hops=3)
        assert sorted(report) == [0, 1, 2, 3]
        values = [report[k] for k in sorted(report)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_negative_max_hops(self, grid_net):
        with pytest.raises(ExperimentError):
            coverage_report(grid_net, [0], [1], max_hops=-1)
