"""Unit tests for the command-line interface."""

import json

import pytest

import repro
from repro.cli import (
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    EXIT_USER_ERROR,
    EXPERIMENTS,
    build_parser,
    main,
)


COMMON = [
    "--roads", "70", "--queried", "10", "--train-days", "8",
    "--test-days", "2", "--slots", "4", "--seed", "3",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_defaults(self):
        args = build_parser().parse_args(["dataset"])
        assert args.name == "semisyn"
        assert args.roads == 150

    def test_query_selector_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--selector", "genie"])

    def test_experiment_choices(self):
        assert "figure3" in EXPERIMENTS
        assert "daily_refresh" in EXPERIMENTS
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_refresh_defaults(self):
        args = build_parser().parse_args(["refresh"])
        assert args.learning_rate == pytest.approx(0.05)
        assert args.days is None
        assert args.roads == 60

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 2
        assert args.queue_depth == 64
        assert args.requests is None
        assert args.deadline_ms is None
        # serve reuses the shared dataset argument group
        assert args.name == "semisyn"
        assert args.seed == 2018


class TestDatasetCommand:
    def test_prints_summary(self, capsys):
        assert main(["dataset", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "|R|=70" in out
        assert "train: 8 days" in out

    def test_saves_artifacts(self, tmp_path, capsys):
        net_path = tmp_path / "net.json"
        hist_path = tmp_path / "hist.npz"
        code = main(
            [
                "dataset", *COMMON,
                "--save-network", str(net_path),
                "--save-history", str(hist_path),
            ]
        )
        assert code == 0
        network = repro.network_from_json(net_path)
        assert network.n_roads == 70
        history = repro.SpeedHistory.load(hist_path)
        assert history.n_roads == 70

    def test_gmission_dataset(self, capsys):
        assert main(["dataset", "--name", "gmission", "--train-days", "8",
                     "--test-days", "2", "--slots", "4"]) == 0
        assert "gmission" in capsys.readouterr().out


class TestFitCommand:
    def test_fit_and_save(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        code = main(["fit", *COMMON, "--output", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert model_path.exists()


class TestQueryCommand:
    def test_query_outputs_quality(self, capsys):
        code = main(["query", *COMMON, "--budget", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAPE" in out
        assert "selected" in out

    def test_query_verbose_lists_roads(self, capsys):
        code = main(["query", *COMMON, "--budget", "15", "--verbose"])
        assert code == 0
        assert "estimate" in capsys.readouterr().out

    @pytest.mark.parametrize("selector", ["ratio", "objective", "random"])
    def test_query_selectors(self, capsys, selector):
        code = main(["query", *COMMON, "--budget", "10", "--selector", selector])
        assert code == 0


class TestRefreshCommand:
    def test_replays_days_and_reports_versions(self, capsys):
        code = main(["refresh", *COMMON, "--days", "2", "--budget", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "store version 1" in out
        assert "refreshed -> version 2" in out
        assert "refreshed -> version 3" in out
        assert "Γ_R derivations" in out


class TestExperimentCommand:
    def test_table2_quick(self, capsys):
        assert main(["experiment", "table2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "semisyn" in out and "gmission" in out

    def test_figure2_quick(self, capsys):
        assert main(["experiment", "figure2", "--scale", "quick"]) == 0
        assert "Hybrid" in capsys.readouterr().out

    def test_table3_quick(self, capsys):
        assert main(["experiment", "table3", "--scale", "quick"]) == 0
        assert "/" in capsys.readouterr().out

    def test_scalability_quick(self, capsys):
        assert main(["experiment", "scalability", "--scale", "quick"]) == 0
        assert "GSP sweeps" in capsys.readouterr().out

    def test_query_patterns_quick(self, capsys):
        assert main(["experiment", "query_patterns", "--scale", "quick"]) == 0
        assert "hotspot" in capsys.readouterr().out


SERVE_COMMON = [
    "--roads", "60", "--queried", "12", "--train-days", "8",
    "--test-days", "2", "--slots", "5", "--seed", "3",
]


class TestServeCommand:
    def test_synthesized_workload_reports_percentiles(self, capsys):
        code = main(["serve", *SERVE_COMMON, "--n-requests", "16",
                     "--duplication", "4", "--workers", "2"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "requests: 16" in out
        assert "p50" in out and "p99" in out
        assert "coalesced" in out

    def test_replays_jsonl_trace(self, tmp_path, capsys):
        # Slots fitted by `serve` start at the dataset's query slot; for
        # --slots 5 --train-days 8 the semisyn window starts at slot 86.
        trace = tmp_path / "trace.jsonl"
        lines = [
            json.dumps({"slot": 86, "queried": [1, 2, 3], "budget": 8}),
            json.dumps({"slot": 87, "queried": [4, 5], "budget": 8}),
            json.dumps({"slot": 86, "queried": [1, 2, 3], "budget": 8}),
        ]
        trace.write_text("\n".join(lines) + "\n")
        code = main(["serve", *SERVE_COMMON, "--requests", str(trace)])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "requests: 3" in out

    def test_deadline_degrades_requests(self, capsys):
        code = main(["serve", *SERVE_COMMON, "--n-requests", "8",
                     "--deadline-ms", "0.0001"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "degraded 8" in out
        assert "deadline=8" in out


class TestExitCodes:
    def test_user_error_trace_slot_out_of_window(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"slot": 999, "queried": [1], "budget": 5}\n')
        code = main(["serve", *SERVE_COMMON, "--requests", str(trace)])
        assert code == EXIT_USER_ERROR
        assert "error:" in capsys.readouterr().err

    def test_user_error_malformed_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text("not json\n")
        code = main(["serve", *SERVE_COMMON, "--requests", str(trace)])
        assert code == EXIT_USER_ERROR
        assert "invalid JSON" in capsys.readouterr().err

    def test_internal_error_is_distinct(self, monkeypatch, capsys):
        def explode(args):
            raise RuntimeError("simulated bug")

        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "cmd_dataset", explode)
        # Rebind: set_defaults captured the old function, so go through
        # a fresh parser with the patched module function.
        monkeypatch.setattr(
            cli_mod, "build_parser", _patched_parser_factory(explode)
        )
        code = main(["dataset"])
        assert code == EXIT_INTERNAL_ERROR
        assert "internal error" in capsys.readouterr().err

    def test_codes_are_distinct(self):
        assert len({EXIT_OK, EXIT_USER_ERROR, EXIT_INTERNAL_ERROR}) == 3


def _patched_parser_factory(func):
    import argparse

    def factory():
        parser = argparse.ArgumentParser(prog="repro")
        sub = parser.add_subparsers(dest="command", required=True)
        p = sub.add_parser("dataset")
        p.set_defaults(func=func)
        return parser

    return factory
