"""Unit tests for the command-line interface."""

import pytest

import repro
from repro.cli import EXPERIMENTS, build_parser, main


COMMON = [
    "--roads", "70", "--queried", "10", "--train-days", "8",
    "--test-days", "2", "--slots", "4", "--seed", "3",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_defaults(self):
        args = build_parser().parse_args(["dataset"])
        assert args.name == "semisyn"
        assert args.roads == 150

    def test_query_selector_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--selector", "genie"])

    def test_experiment_choices(self):
        assert "figure3" in EXPERIMENTS
        assert "daily_refresh" in EXPERIMENTS
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_refresh_defaults(self):
        args = build_parser().parse_args(["refresh"])
        assert args.learning_rate == pytest.approx(0.05)
        assert args.days is None
        assert args.roads == 60


class TestDatasetCommand:
    def test_prints_summary(self, capsys):
        assert main(["dataset", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "|R|=70" in out
        assert "train: 8 days" in out

    def test_saves_artifacts(self, tmp_path, capsys):
        net_path = tmp_path / "net.json"
        hist_path = tmp_path / "hist.npz"
        code = main(
            [
                "dataset", *COMMON,
                "--save-network", str(net_path),
                "--save-history", str(hist_path),
            ]
        )
        assert code == 0
        network = repro.network_from_json(net_path)
        assert network.n_roads == 70
        history = repro.SpeedHistory.load(hist_path)
        assert history.n_roads == 70

    def test_gmission_dataset(self, capsys):
        assert main(["dataset", "--name", "gmission", "--train-days", "8",
                     "--test-days", "2", "--slots", "4"]) == 0
        assert "gmission" in capsys.readouterr().out


class TestFitCommand:
    def test_fit_and_save(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        code = main(["fit", *COMMON, "--output", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert model_path.exists()


class TestQueryCommand:
    def test_query_outputs_quality(self, capsys):
        code = main(["query", *COMMON, "--budget", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAPE" in out
        assert "selected" in out

    def test_query_verbose_lists_roads(self, capsys):
        code = main(["query", *COMMON, "--budget", "15", "--verbose"])
        assert code == 0
        assert "estimate" in capsys.readouterr().out

    @pytest.mark.parametrize("selector", ["ratio", "objective", "random"])
    def test_query_selectors(self, capsys, selector):
        code = main(["query", *COMMON, "--budget", "10", "--selector", selector])
        assert code == 0


class TestRefreshCommand:
    def test_replays_days_and_reports_versions(self, capsys):
        code = main(["refresh", *COMMON, "--days", "2", "--budget", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "store version 1" in out
        assert "refreshed -> version 2" in out
        assert "refreshed -> version 3" in out
        assert "Γ_R derivations" in out


class TestExperimentCommand:
    def test_table2_quick(self, capsys):
        assert main(["experiment", "table2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "semisyn" in out and "gmission" in out

    def test_figure2_quick(self, capsys):
        assert main(["experiment", "figure2", "--scale", "quick"]) == 0
        assert "Hybrid" in capsys.readouterr().out

    def test_table3_quick(self, capsys):
        assert main(["experiment", "table3", "--scale", "quick"]) == 0
        assert "/" in capsys.readouterr().out

    def test_scalability_quick(self, capsys):
        assert main(["experiment", "scalability", "--scale", "quick"]) == 0
        assert "GSP sweeps" in capsys.readouterr().out

    def test_query_patterns_quick(self, capsys):
        assert main(["experiment", "query_patterns", "--scale", "quick"]) == 0
        assert "hotspot" in capsys.readouterr().out
