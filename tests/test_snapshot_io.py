"""The mmap snapshot format: round-trips and corruption handling.

``write_snapshot``/``read_snapshot`` trade the compressed ``.npz`` for
an aligned binary layout read through ``np.memmap``.  Round-trips must
be exact (the arrays ARE the model), ``load_store`` must adopt the
header digests unchanged, and every corruption — foreign magic,
truncated header, tampered JSON, out-of-bounds array records, flipped
payload bytes — must surface as :class:`~repro.errors.ModelError`,
never a raw ``ValueError``/``KeyError``/``OSError``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.snapshot_io import (
    MAGIC,
    SnapshotFile,
    load_model,
    load_store,
    read_snapshot,
    verify_digests,
    write_snapshot,
)
from repro.core.rtf import params_signature
from repro.errors import ModelError


@pytest.fixture(scope="module")
def model(tiny_system):
    return tiny_system.model


@pytest.fixture()
def snapshot_path(tmp_path, model):
    path = tmp_path / "model.snap"
    write_snapshot(path, model)
    return path


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_load_model_is_exact(self, snapshot_path, model, mmap):
        loaded = load_model(snapshot_path, model.network, mmap=mmap)
        assert loaded.slots == model.slots
        for t in model.slots:
            orig, got = model.slot(t), loaded.slot(t)
            assert np.array_equal(orig.mu, got.mu)
            assert np.array_equal(orig.sigma, got.sigma)
            assert np.array_equal(orig.rho, got.rho)

    def test_mmap_views_are_read_only(self, snapshot_path, model):
        loaded = load_model(snapshot_path, model.network, mmap=True)
        mu = loaded.slot(model.slots[0]).mu
        assert not mu.flags.writeable

    def test_load_store_adopts_header_digests(self, snapshot_path, model):
        store = load_store(snapshot_path, model.network)
        snapshot = store.current()
        assert snapshot.version == 1
        for t in model.slots:
            assert snapshot.digest(t) == params_signature(model.slot(t))

    def test_loaded_store_propagates_like_the_original(
        self, snapshot_path, tiny_system, model
    ):
        slot = model.slots[0]
        observed = {0: 30.0, 5: 42.0}
        store = load_store(snapshot_path, model.network)
        from repro.core.gsp import GSPEngine

        loaded = GSPEngine(model.network).propagate(
            store.current().slot(slot), observed
        )
        original = GSPEngine(model.network).propagate(model.slot(slot), observed)
        assert np.array_equal(loaded.speeds, original.speeds)

    def test_without_propagation_arrays(self, tmp_path, model):
        path = tmp_path / "lean.snap"
        write_snapshot(path, model, include_propagation=False)
        snapshot = read_snapshot(path, model.network)
        assert not snapshot.has_propagation
        with pytest.raises(ModelError, match="propagation"):
            snapshot.propagation_arrays(model.slots[0])
        # load_store still works — it just derives lazily later.
        store = load_store(path, model.network)
        assert store.version == 1

    def test_verify_digests_passes_on_clean_file(self, snapshot_path, model):
        verify_digests(read_snapshot(snapshot_path, model.network))


class TestFaultInjection:
    def test_foreign_magic_rejected(self, snapshot_path, model):
        data = snapshot_path.read_bytes()
        snapshot_path.write_bytes(b"NOTSNAP!" + data[len(MAGIC):])
        with pytest.raises(ModelError, match="magic"):
            read_snapshot(snapshot_path, model.network)

    def test_truncated_before_header_length(self, snapshot_path, model):
        snapshot_path.write_bytes(snapshot_path.read_bytes()[: len(MAGIC) + 3])
        with pytest.raises(ModelError, match="truncated"):
            read_snapshot(snapshot_path, model.network)

    def test_header_length_beyond_file_rejected(self, snapshot_path, model):
        data = bytearray(snapshot_path.read_bytes())
        data[len(MAGIC): len(MAGIC) + 8] = np.uint64(2**40).tobytes()
        snapshot_path.write_bytes(bytes(data))
        with pytest.raises(ModelError, match="header length"):
            read_snapshot(snapshot_path, model.network)

    def test_garbled_header_json_rejected(self, snapshot_path, model):
        data = bytearray(snapshot_path.read_bytes())
        data[len(MAGIC) + 8: len(MAGIC) + 24] = b"\xff" * 16
        snapshot_path.write_bytes(bytes(data))
        with pytest.raises(ModelError, match="header"):
            read_snapshot(snapshot_path, model.network)

    def test_truncated_payload_rejected(self, snapshot_path, model):
        # Cutting the file mid-payload leaves array records pointing
        # outside the file — caught at open, not at first array access.
        data = snapshot_path.read_bytes()
        snapshot_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelError, match="outside"):
            SnapshotFile(snapshot_path)

    def test_network_mismatch_rejected(self, snapshot_path):
        other = repro.line_network(9)
        with pytest.raises(ModelError, match="different network"):
            read_snapshot(snapshot_path, other)

    def test_tampered_payload_fails_digest_verification(self, tmp_path, model):
        path = tmp_path / "tampered.snap"
        # Parameter arrays only: the final bytes belong to a
        # digest-covered array, so the flip must be detected.
        write_snapshot(path, model, include_propagation=False)
        data = bytearray(path.read_bytes())
        data[-8:] = b"\x00" * 8
        path.write_bytes(bytes(data))
        snapshot = read_snapshot(path, model.network)
        with pytest.raises(ModelError, match="digest"):
            verify_digests(snapshot)

    def test_unwritable_destination_rejected(self, tmp_path, model):
        with pytest.raises(ModelError, match="cannot write"):
            write_snapshot(tmp_path / "no" / "such" / "dir" / "m.snap", model)

    def test_missing_file_rejected(self, tmp_path, model):
        with pytest.raises(ModelError, match="cannot read"):
            read_snapshot(tmp_path / "absent.snap", model.network)
