"""Tests for the operational health layer (repro.obs.health).

Covers the metrics time-series windowing, bucket-quantile estimation,
the fast/slow burn-rate SLO engine, the flight recorder, and the
end-to-end acceptance scenario: an injected latency regression flips
the health status from ok to failing within two sampler windows.

The sampler thread is never started here — tests drive
``HealthMonitor.tick()`` (or ``MetricsTimeSeries.sample_now()``)
manually so window boundaries are deterministic.
"""

from __future__ import annotations

import math
import time

import pytest

from repro import obs
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry, bucket_quantile
from repro.obs.export import validate_flight_record
from repro.obs.health import (
    SLO,
    FlightRecorder,
    HealthMonitor,
    HealthStatus,
    MetricsTimeSeries,
    SLOEngine,
    default_slos,
)


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


def _sleep_past(seconds: float) -> None:
    """Sleep just past a window boundary (monotonic-clock granularity)."""
    time.sleep(seconds + 0.01)


class TestBucketQuantile:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(bucket_quantile((1.0, 2.0), (0, 0, 0), 0.5))

    def test_single_bucket_interpolates_from_zero(self):
        # 10 observations in (0, 1]: the median lands mid-bucket.
        value = bucket_quantile((1.0, 2.0), (10, 0, 0), 0.5)
        assert 0.0 < value <= 1.0

    def test_monotone_in_q(self, registry):
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        for v in (0.001, 0.004, 0.02, 0.02, 0.3, 1.2):
            hist.observe(v)
        quantiles = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert quantiles == sorted(quantiles)
        assert quantiles[0] > 0

    def test_overflow_bucket_clamps_to_last_edge(self):
        edges = (1.0, 2.0)
        assert bucket_quantile(edges, (0, 0, 5), 0.99) == 2.0

    def test_disabled_histogram_quantile_is_zero(self):
        disabled = MetricsRegistry(enabled=False)
        assert disabled.histogram("x", (1.0,)).quantile(0.99) == 0.0

    def test_matches_known_interpolation(self):
        # 4 obs in (1,2], 4 in (2,4]: p50 is the upper edge of bucket 1.
        assert bucket_quantile((1.0, 2.0, 4.0), (0, 4, 4, 0), 0.5) == 2.0


class TestMetricsTimeSeries:
    def test_needs_two_samples_for_a_window(self, registry):
        series = MetricsTimeSeries(registry)
        assert series.window(10.0) is None
        series.sample_now()
        assert series.window(10.0) is None
        series.sample_now()
        assert series.window(10.0) is not None

    def test_counter_delta_and_rate(self, registry):
        series = MetricsTimeSeries(registry)
        counter = registry.counter("serve.completed", {"outcome": "ok"})
        counter.inc(5)
        series.sample_now()
        counter.inc(10)
        _sleep_past(0.02)
        series.sample_now()
        assert series.counter_delta("serve.completed", 60.0) == 10.0
        assert series.rate("serve.completed", 60.0) > 0
        # Label filter: the error outcome saw nothing.
        assert (
            series.counter_delta("serve.completed", 60.0, {"outcome": "error"}) == 0.0
        )

    def test_short_history_degrades_to_shorter_window(self, registry):
        series = MetricsTimeSeries(registry)
        counter = registry.counter("stream.publishes")
        series.sample_now()
        counter.inc(3)
        series.sample_now()
        # Asking for an hour still uses the 2-sample history.
        assert series.counter_delta("stream.publishes", 3600.0) == 3.0

    def test_fast_window_excludes_old_activity(self, registry):
        series = MetricsTimeSeries(registry)
        counter = registry.counter("serve.admitted")
        counter.inc(100)
        series.sample_now()
        _sleep_past(0.05)
        series.sample_now()  # counter unchanged since last sample
        # A window much narrower than the gap only spans the last pair.
        assert series.counter_delta("serve.admitted", 0.04) == 0.0
        assert series.counter_delta("serve.admitted", 3600.0) == 0.0

    def test_gauge_value_reads_latest(self, registry):
        series = MetricsTimeSeries(registry)
        gauge = registry.gauge("stream.publish_lag_seconds")
        gauge.set(12.0)
        series.sample_now()
        gauge.set(99.0)
        series.sample_now()
        assert series.gauge_value("stream.publish_lag_seconds") == 99.0
        assert series.gauge_value("no.such.gauge") is None

    def test_histogram_window_quantile(self, registry):
        series = MetricsTimeSeries(registry)
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        hist.observe(0.001)
        series.sample_now()
        for _ in range(20):
            hist.observe(1.0)
        _sleep_past(0.02)
        series.sample_now()
        window = series.histogram_delta("serve.latency_seconds", 60.0)
        assert window is not None and window.count == 20.0
        # The old 1 ms observation is outside the window's delta.
        assert series.quantile("serve.latency_seconds", 0.5, 60.0) > 0.5
        assert math.isnan(series.quantile("absent.metric", 0.5, 60.0))

    def test_capacity_bounds_memory(self, registry):
        series = MetricsTimeSeries(registry, capacity=4)
        for _ in range(10):
            series.sample_now()
        samples = series.samples()
        assert len(samples) == 4
        # Indices keep growing even as old samples fall off.
        assert samples[-1].index == 9

    def test_rejects_tiny_capacity(self, registry):
        with pytest.raises(ValueError):
            MetricsTimeSeries(registry, capacity=1)


def _latency_slo(threshold=0.25, fast=0.05, slow=0.15, min_count=1.0):
    return SLO(
        name="serve.latency.p99",
        kind="quantile",
        metric="serve.latency_seconds",
        quantile=0.99,
        threshold=threshold,
        fast_window_s=fast,
        slow_window_s=slow,
        min_count=min_count,
    )


class TestSLOEngine:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="nope", metric="m", threshold=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="ratio", metric="m", threshold=1.0)  # no denominator
        with pytest.raises(ValueError):
            SLO(
                name="x", kind="gauge", metric="m", threshold=1.0,
                fast_window_s=10.0, slow_window_s=5.0,
            )
        with pytest.raises(ValueError):
            SLOEngine(
                [_latency_slo(), _latency_slo()],
                MetricsTimeSeries(MetricsRegistry()),
            )

    def test_no_data_reports_ok(self, registry):
        series = MetricsTimeSeries(registry)
        engine = SLOEngine([_latency_slo()], series)
        report = engine.evaluate()
        assert report.status is HealthStatus.OK
        assert report.results[0].fast.value is None

    def test_fast_only_violation_is_degraded(self, registry):
        series = MetricsTimeSeries(registry)
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        series.sample_now()
        # Slow window: a long healthy history (deep enough that the
        # later burst stays under the 1% tail).
        for _ in range(2000):
            hist.observe(0.001)
        _sleep_past(0.1)
        series.sample_now()
        # Fast window: a burst of slow requests only in the last slice.
        # The pre-burst sample must be at least fast_window_s older than
        # the final one so the fast window excludes the healthy history.
        for _ in range(10):
            hist.observe(2.0)
        _sleep_past(0.05)
        series.sample_now()
        engine = SLOEngine([_latency_slo(fast=0.05, slow=10.0)], series)
        report = engine.evaluate()
        result = report.results[0]
        assert result.fast.violated
        # The slow window still holds the 100 fast observations, so its
        # p99 stays under the threshold -> degraded, not failing.
        assert not result.slow.violated
        assert report.status is HealthStatus.DEGRADED
        assert report.alerts and report.alerts[0].severity is HealthStatus.DEGRADED

    def test_both_windows_violated_is_failing(self, registry):
        series = MetricsTimeSeries(registry)
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        series.sample_now()
        for _ in range(10):
            hist.observe(2.0)
        _sleep_past(0.06)
        series.sample_now()
        engine = SLOEngine([_latency_slo(fast=0.05, slow=0.05)], series)
        report = engine.evaluate()
        assert report.status is HealthStatus.FAILING

    def test_ratio_slo(self, registry):
        series = MetricsTimeSeries(registry)
        ok = registry.counter("serve.completed", {"outcome": "ok"})
        err = registry.counter("serve.completed", {"outcome": "error"})
        series.sample_now()
        ok.inc(5)
        err.inc(5)
        _sleep_past(0.02)
        series.sample_now()
        slo = SLO(
            name="serve.error.rate",
            kind="ratio",
            metric="serve.completed",
            labels={"outcome": "error"},
            denominator="serve.completed",
            threshold=0.05,
            fast_window_s=1.0,
            slow_window_s=1.0,
            min_count=5.0,
        )
        report = SLOEngine([slo], series).evaluate()
        assert report.results[0].fast.value == 0.5
        assert report.status is HealthStatus.FAILING

    def test_gauge_slo(self, registry):
        series = MetricsTimeSeries(registry)
        registry.gauge("stream.publish_lag_seconds").set(1000.0)
        series.sample_now()
        slo = SLO(
            name="stream.publish.lag",
            kind="gauge",
            metric="stream.publish_lag_seconds",
            threshold=600.0,
            fast_window_s=1.0,
            slow_window_s=1.0,
        )
        report = SLOEngine([slo], series).evaluate()
        assert report.status is HealthStatus.FAILING

    def test_default_slos_cover_serve_and_stream(self):
        slos = default_slos()
        names = {slo.name for slo in slos}
        assert "serve.latency.p99" in names
        assert "stream.publish.lag" in names
        assert len(names) == len(slos)

    def test_report_is_jsonable(self, registry):
        import json

        series = MetricsTimeSeries(registry)
        series.sample_now()
        report = SLOEngine(default_slos(), series).evaluate(info={"k": 1})
        parsed = json.loads(json.dumps(report.as_dict()))
        assert parsed["status"] == "ok"
        assert parsed["info"] == {"k": 1}


class TestFlightRecorder:
    def test_dump_validates_and_ring_bounds(self, registry):
        recorder = FlightRecorder(max_events=3)
        for k in range(10):
            recorder.note("warn", f"event {k}", k=k)
        series = MetricsTimeSeries(registry)
        registry.counter("serve.admitted").inc()
        recorder.record_sample(series.sample_now())
        document = recorder.dump()
        validate_flight_record(document)
        assert len(document["events"]) == 3
        assert document["events"][-1]["message"] == "event 9"
        assert document["samples"][0]["snapshot"]["counters"]

    def test_dump_includes_tracer_tail_and_health(self, registry):
        from repro.obs import Tracer

        tracer = Tracer(enabled=True)
        with tracer.span("serve.batch"):
            pass
        series = MetricsTimeSeries(registry)
        series.sample_now()
        report = SLOEngine([_latency_slo()], series).evaluate()
        recorder = FlightRecorder()
        document = recorder.dump(trigger="auto:serve", tracer=tracer, report=report)
        validate_flight_record(document)
        assert document["trigger"] == "auto:serve"
        assert document["spans"][-1]["name"] == "serve.batch"
        assert document["health"]["status"] == "ok"

    def test_dump_json_writes_file(self, registry, tmp_path):
        recorder = FlightRecorder()
        path = tmp_path / "flight.json"
        recorder.dump_json(str(path))
        import json

        validate_flight_record(json.loads(path.read_text()))

    def test_dump_index_increments(self):
        recorder = FlightRecorder()
        first = recorder.dump()
        second = recorder.dump()
        assert second["dump_index"] == first["dump_index"] + 1
        assert recorder.last_dump == second


class TestHealthMonitor:
    def test_tick_publishes_status_and_meta_metrics(self, registry):
        monitor = HealthMonitor(
            registry=registry, slos=[_latency_slo()], interval_s=0.05
        )
        report = monitor.tick()
        assert report.status is HealthStatus.OK
        assert monitor.status() is HealthStatus.OK
        snapshot = registry.snapshot()
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "health.samples" in names and "slo.evaluations" in names
        gauges = {entry["name"]: entry["value"] for entry in snapshot["gauges"]}
        assert gauges["health.status"] == 0

    def test_report_ticks_inline_without_thread(self, registry):
        monitor = HealthMonitor(registry=registry, slos=[_latency_slo()])
        assert monitor.report().status is HealthStatus.OK

    def test_info_providers_feed_the_report(self, registry):
        monitor = HealthMonitor(registry=registry, slos=[_latency_slo()])
        monitor.set_info("store_version", lambda: 7)
        monitor.set_info("broken", lambda: 1 / 0)
        report = monitor.tick()
        assert report.info["store_version"] == 7
        assert "error" in str(report.info["broken"])

    def test_sampler_thread_ticks_and_stops(self, registry):
        with HealthMonitor(
            registry=registry, slos=[_latency_slo()], interval_s=0.02
        ) as monitor:
            deadline = time.monotonic() + 5.0
            while not monitor.series.samples() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert monitor.series.samples()
        # After close the thread is gone and ticks stop.
        count = len(monitor.series.samples())
        time.sleep(0.06)
        assert len(monitor.series.samples()) == count

    def test_record_failure_notes_and_rate_limits_dumps(self, registry):
        monitor = HealthMonitor(
            registry=registry, slos=[_latency_slo()], min_dump_interval_s=3600.0
        )
        error = RuntimeError("boom")
        monitor.record_failure("serve", error)
        first = monitor.recorder.last_dump
        assert first is not None and first["trigger"] == "auto:serve"
        monitor.record_failure("serve", error)
        # Second failure inside the interval: noted, but no new dump.
        assert monitor.recorder.last_dump["dump_index"] == first["dump_index"]
        assert monitor.recorder.event_count() == 2

    def test_record_failure_writes_dump_dir(self, registry, tmp_path):
        import json

        monitor = HealthMonitor(
            registry=registry, slos=[_latency_slo()], dump_dir=str(tmp_path)
        )
        monitor.record_failure("stream", RuntimeError("publish failed"))
        files = list(tmp_path.glob("flightrecorder-*.json"))
        assert len(files) == 1
        validate_flight_record(json.loads(files[0].read_text()))

    def test_installed_monitor_routes_failures(self, registry):
        from repro.obs import health as obs_health

        monitor = HealthMonitor(registry=registry, slos=[_latency_slo()])
        obs_health.install(monitor)
        try:
            assert obs_health.get_monitor() is monitor
            obs_health.record_failure("serve", RuntimeError("x"))
            assert monitor.recorder.event_count() == 1
        finally:
            obs_health.uninstall()
        # Uninstalled: silently ignored.
        obs_health.record_failure("serve", RuntimeError("y"))
        assert obs_health.get_monitor() is None

    def test_rejects_bad_interval(self, registry):
        with pytest.raises(ValueError):
            HealthMonitor(registry=registry, interval_s=0.0)


class TestLatencyRegressionEndToEnd:
    """Acceptance: an injected latency regression flips ok -> failing
    within two sampler windows (burn-rate evaluation over fast+slow)."""

    def test_regression_flips_healthz_within_two_windows(self, registry):
        window_s = 0.08
        monitor = HealthMonitor(
            registry=registry,
            slos=[
                _latency_slo(
                    threshold=0.25, fast=window_s, slow=2 * window_s, min_count=1.0
                )
            ],
            interval_s=window_s / 2,
        )
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        # Healthy baseline traffic across one full slow window.
        for _ in range(4):
            for _ in range(5):
                hist.observe(0.002)
            _sleep_past(window_s / 2)
            assert monitor.tick().status is HealthStatus.OK

        # Inject the regression: every request now takes ~2 s.
        flipped_at = None
        for tick in range(1, 5):
            for _ in range(5):
                hist.observe(2.0)
            _sleep_past(window_s)
            if monitor.tick().status is HealthStatus.FAILING:
                flipped_at = tick
                break
        assert flipped_at is not None and flipped_at <= 2, (
            f"expected FAILING within two windows, flipped at {flipped_at}"
        )

    def test_healthz_payload_reflects_failing(self, registry):
        monitor = HealthMonitor(
            registry=registry,
            slos=[_latency_slo(fast=0.03, slow=0.03)],
        )
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        monitor.tick()
        for _ in range(10):
            hist.observe(2.0)
        _sleep_past(0.04)
        report = monitor.tick()
        assert report.status is HealthStatus.FAILING
        assert monitor.should_shed()
        payload = report.as_dict()
        assert payload["status"] == "failing"
        assert payload["alerts"]


def _failing_monitor() -> HealthMonitor:
    """A monitor whose last evaluation is FAILING (latency blown)."""
    registry = MetricsRegistry(enabled=True)
    monitor = HealthMonitor(
        registry=registry, slos=[_latency_slo(fast=0.03, slow=0.03)]
    )
    hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
    monitor.tick()
    for _ in range(10):
        hist.observe(2.0)
    _sleep_past(0.04)
    monitor.tick()
    assert monitor.should_shed()
    return monitor


class TestShedOnFailing:
    def test_query_service_sheds_when_monitor_failing(
        self, tiny_system, tiny_dataset
    ):
        from repro.errors import OverloadedError
        from repro.obs import health as obs_health
        from repro.serve import QueryService, ServeConfig, ServeRequest

        request = ServeRequest(
            queried=(0, 1), slot=tiny_dataset.slot, budget=5
        )
        obs_health.install(_failing_monitor())
        try:
            service = QueryService(
                tiny_system,
                config=ServeConfig(num_workers=1, max_queue_depth=4),
                autostart=False,
            )
            # Below half-full: still admitted even while failing.
            service.submit(request)
            service.submit(request)
            # At half-full with a FAILING monitor: shed.
            with pytest.raises(OverloadedError):
                service.submit(request)
            service.close(drain=False)
        finally:
            obs_health.uninstall()

    def test_shedding_disabled_by_config(self, tiny_system, tiny_dataset):
        from repro.obs import health as obs_health
        from repro.serve import QueryService, ServeConfig, ServeRequest

        request = ServeRequest(
            queried=(0, 1), slot=tiny_dataset.slot, budget=5
        )
        obs_health.install(_failing_monitor())
        try:
            service = QueryService(
                tiny_system,
                config=ServeConfig(
                    num_workers=1, max_queue_depth=4, shed_on_failing=False
                ),
                autostart=False,
            )
            for _ in range(4):
                service.submit(request)
            service.close(drain=False)
        finally:
            obs_health.uninstall()
