"""Differential property tests: incremental OCS gains vs full rescan.

The greedy solvers delta-update their per-candidate marginal gains when
a road is committed (``_GreedyState.take``) instead of rescanning the
whole ``(|R^q|, |R^w|)`` correlation block every round.  The contract is
*bitwise* equivalence on exactly representable inputs: an untouched
queried row contributes an exact-zero delta, so gains — and therefore
argmax tie-breaks, selections, objectives and iteration counts — must
match the ``incremental=False`` oracle exactly.

Hypothesis draws correlations, intensities and θ from a 1/64 binary
fraction grid: every product and partial sum is then exactly
representable in float64, so any divergence is a real bookkeeping bug,
never rounding noise.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ocs import (
    OCSInstance,
    hybrid_greedy,
    objective_greedy,
    ratio_greedy,
)

#: All drawn reals are multiples of this — exactly representable, and
#: closed under the products/sums the gain update performs.
GRID = 1.0 / 64.0

SETTINGS = settings(max_examples=60, deadline=None)


@st.composite
def ocs_instances(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    roads = list(range(n))
    queried = draw(
        st.lists(st.sampled_from(roads), min_size=1, max_size=4, unique=True)
    )
    candidates = draw(
        st.lists(st.sampled_from(roads), min_size=2, max_size=n, unique=True)
    )
    grid_value = st.integers(min_value=0, max_value=64).map(lambda k: k * GRID)
    # Symmetric correlation matrix with unit diagonal, entries on the grid.
    upper = draw(
        st.lists(grid_value, min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    corr = np.eye(n)
    idx = np.triu_indices(n, k=1)
    corr[idx] = upper
    corr[(idx[1], idx[0])] = upper
    sigma = np.array(
        draw(st.lists(grid_value, min_size=n, max_size=n)), dtype=np.float64
    )
    costs = np.array(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=5),
                min_size=len(candidates),
                max_size=len(candidates),
            )
        ),
        dtype=np.float64,
    )
    budget = float(draw(st.integers(min_value=1, max_value=15)))
    theta = draw(st.integers(min_value=8, max_value=64).map(lambda k: k * GRID))
    return OCSInstance(
        queried=tuple(queried),
        candidates=tuple(candidates),
        costs=costs,
        budget=budget,
        theta=theta,
        corr=corr,
        sigma=sigma,
    )


def _assert_identical(fast, slow):
    assert fast.selected == slow.selected
    assert fast.objective == slow.objective
    assert fast.cost == slow.cost
    assert fast.iterations == slow.iterations


class TestIncrementalMatchesRescan:
    @SETTINGS
    @given(instance=ocs_instances())
    def test_ratio_greedy(self, instance):
        _assert_identical(
            ratio_greedy(instance, incremental=True),
            ratio_greedy(instance, incremental=False),
        )

    @SETTINGS
    @given(instance=ocs_instances())
    def test_objective_greedy(self, instance):
        _assert_identical(
            objective_greedy(instance, incremental=True),
            objective_greedy(instance, incremental=False),
        )

    @SETTINGS
    @given(instance=ocs_instances())
    def test_hybrid_greedy(self, instance):
        _assert_identical(
            hybrid_greedy(instance, incremental=True),
            hybrid_greedy(instance, incremental=False),
        )

    @SETTINGS
    @given(instance=ocs_instances())
    def test_feasibility_is_mode_independent(self, instance):
        result = hybrid_greedy(instance, incremental=True)
        assert instance.is_feasible(result.selected)
