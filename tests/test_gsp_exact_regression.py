"""Regression: GSP (both kernels) vs the exact GMRF solve, golden-pinned.

A 12-road world small enough to eyeball is solved three ways — exact
sparse solve, reference per-node GSP, vectorized GSP — and all three are
pinned to hard-coded golden speeds.  Any numerical drift in the Eq. 18
update, the CSR compilation, or the exact system assembly shows up here
before it can silently move the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.exact_inference import exact_conditional_mean, gsp_optimality_gap
from repro.core.gsp import GSPConfig, GSPEngine, GSPKernel, GSPSchedule
from repro.core.rtf import RTFSlot

#: Exact conditional mean of the world below, computed once at pin time
#: (scipy spsolve); observed roads 0 and 5 keep their probed values.
GOLDEN_SPEEDS = np.array(
    [
        25.0,
        36.787605544184,
        42.400836496029,
        56.986267557168,
        67.629191220892,
        62.0,
        40.441990540578,
        37.768115073234,
        46.232340416438,
        34.825886021247,
        53.93693711086,
        53.649478077363,
    ]
)

OBSERVED = {0: 25.0, 5: 62.0}


@pytest.fixture(scope="module")
def world():
    network = repro.ring_radial_network(12, n_rings=1, n_radials=4, seed=2)
    rng = np.random.default_rng(2024)
    params = RTFSlot(
        slot=7,
        mu=rng.uniform(30.0, 70.0, network.n_roads),
        sigma=rng.uniform(1.0, 4.0, network.n_roads),
        rho=rng.uniform(0.1, 0.9, network.n_edges),
    )
    return network, params


class TestGoldenOracle:
    def test_world_shape_is_pinned(self, world):
        network, _ = world
        assert network.n_roads == 12
        assert network.n_edges == 20

    def test_exact_solve_matches_golden(self, world):
        network, params = world
        exact = exact_conditional_mean(network, params, OBSERVED)
        assert np.allclose(exact, GOLDEN_SPEEDS, atol=1e-8)

    @pytest.mark.parametrize(
        "schedule,kernel",
        [
            (GSPSchedule.BFS, GSPKernel.REFERENCE),
            (GSPSchedule.BFS_PARALLEL, GSPKernel.REFERENCE),
            (GSPSchedule.BFS_PARALLEL, GSPKernel.VECTORIZED),
            (GSPSchedule.BFS_COLORED, GSPKernel.VECTORIZED),
        ],
    )
    def test_gsp_lands_on_golden_optimum(self, world, schedule, kernel):
        network, params = world
        config = GSPConfig(
            epsilon=1e-11, max_sweeps=5000, schedule=schedule, kernel=kernel
        )
        result = GSPEngine(network).propagate(params, OBSERVED, config)
        assert result.converged
        assert result.kernel is kernel
        assert result.schedule is schedule
        assert np.allclose(result.speeds, GOLDEN_SPEEDS, atol=1e-7)
        assert gsp_optimality_gap(network, params, OBSERVED, result.speeds) < 1e-7
