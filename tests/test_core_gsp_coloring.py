"""Unit tests for GSP's independent-group colouring (§VI parallelization)."""

import numpy as np

import repro
from repro.core.gsp import (
    GSPConfig,
    GSPSchedule,
    independent_update_groups,
    propagate,
)
from repro.core.rtf import RTFSlot


class TestIndependentUpdateGroups:
    def test_groups_cover_layer(self, grid_net):
        layer = list(range(grid_net.n_roads))
        groups = independent_update_groups(grid_net, layer)
        flattened = sorted(r for g in groups for r in g)
        assert flattened == sorted(layer)

    def test_groups_are_independent(self, grid_net):
        groups = independent_update_groups(grid_net, list(range(25)))
        for group in groups:
            for a in group:
                for b in group:
                    if a != b:
                        assert not grid_net.are_adjacent(a, b)

    def test_grid_is_two_colorable(self, grid_net):
        groups = independent_update_groups(grid_net, list(range(25)))
        assert len(groups) == 2  # the grid is bipartite

    def test_star_hub_alone_with_leaves(self):
        net = repro.star_network(5)
        groups = independent_update_groups(net, list(range(6)))
        assert len(groups) == 2
        # All leaves can share one group; the hub sits in the other.
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 5]

    def test_empty_layer(self, grid_net):
        assert independent_update_groups(grid_net, []) == []

    def test_non_adjacent_layer_single_group(self, line_net):
        groups = independent_update_groups(line_net, [0, 2, 4])
        assert len(groups) == 1


class TestColoredSchedule:
    def test_matches_bfs_fixed_point(self, small_world):
        net = small_world["network"]
        params = small_world["params"]
        observed = {0: float(params.mu[0] * 0.7)}
        reference = propagate(
            net, params, observed, GSPConfig(epsilon=1e-10, max_sweeps=4000)
        )
        colored = propagate(
            net,
            params,
            observed,
            GSPConfig(
                epsilon=1e-10, max_sweeps=4000, schedule=GSPSchedule.BFS_COLORED
            ),
        )
        assert colored.converged
        assert np.allclose(colored.speeds, reference.speeds, atol=1e-6)

    def test_colored_sweep_count_comparable(self, grid_net):
        params = RTFSlot(
            0,
            np.full(25, 50.0),
            np.full(25, 3.0),
            np.full(grid_net.n_edges, 0.7),
        )
        observed = {0: 30.0, 24: 70.0}
        bfs = propagate(
            grid_net, params, observed, GSPConfig(epsilon=1e-8, max_sweeps=3000)
        )
        colored = propagate(
            grid_net,
            params,
            observed,
            GSPConfig(
                epsilon=1e-8, max_sweeps=3000, schedule=GSPSchedule.BFS_COLORED
            ),
        )
        assert colored.sweeps <= bfs.sweeps * 2
