"""Unit tests for repro.traffic.trajectories."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.traffic.trajectories import (
    Trajectory,
    TrajectoryGenerator,
    TrajectoryPoint,
    extract_road_speeds,
    fleet_road_speeds,
)


def uniform_speeds(net, kmh=36.0):
    return np.full(net.n_roads, float(kmh))


class TestTrajectoryTypes:
    def test_point_validation(self):
        with pytest.raises(DatasetError):
            TrajectoryPoint(timestamp_s=-1, road_index=0, offset_km=0)
        with pytest.raises(DatasetError):
            TrajectoryPoint(timestamp_s=0, road_index=0, offset_km=-1)

    def test_trajectory_requires_sorted_times(self):
        points = (
            TrajectoryPoint(10, 0, 0.0),
            TrajectoryPoint(5, 0, 0.1),
        )
        with pytest.raises(DatasetError, match="non-decreasing"):
            Trajectory("v0", points)

    def test_roads_visited_collapses_runs(self):
        points = tuple(
            TrajectoryPoint(float(t), road, 0.0)
            for t, road in enumerate([0, 0, 1, 1, 2, 1])
        )
        trajectory = Trajectory("v0", points)
        assert trajectory.roads_visited() == [0, 1, 2, 1]
        assert trajectory.duration_s == 5.0


class TestTrajectoryGenerator:
    def test_validation(self, line_net):
        with pytest.raises(DatasetError):
            TrajectoryGenerator(line_net, np.ones(3))
        with pytest.raises(DatasetError):
            TrajectoryGenerator(line_net, np.zeros(6))
        with pytest.raises(DatasetError):
            TrajectoryGenerator(line_net, uniform_speeds(line_net), fix_interval_s=0)

    def test_drive_produces_monotone_timestamps(self, grid_net):
        generator = TrajectoryGenerator(
            grid_net, uniform_speeds(grid_net), seed=1
        )
        trace = generator.drive("v0", 0, duration_s=300)
        times = [p.timestamp_s for p in trace.points]
        assert times == sorted(times)
        assert trace.duration_s == pytest.approx(300.0)

    def test_vehicle_moves_between_roads(self, grid_net):
        # 36 km/h = 10 m/s; local roads are 0.5 km, so the vehicle
        # crosses several roads in 5 minutes.
        generator = TrajectoryGenerator(
            grid_net, uniform_speeds(grid_net, 36.0), seed=2,
            gps_noise_fraction=0.0,
        )
        trace = generator.drive("v0", 0, duration_s=300)
        assert len(trace.roads_visited()) >= 3

    def test_consecutive_roads_are_adjacent(self, grid_net):
        generator = TrajectoryGenerator(
            grid_net, uniform_speeds(grid_net), seed=3, gps_noise_fraction=0.0
        )
        trace = generator.drive("v0", 5, duration_s=400)
        visited = trace.roads_visited()
        for a, b in zip(visited, visited[1:]):
            assert grid_net.are_adjacent(a, b) or a == b

    def test_offsets_within_road_length(self, grid_net):
        generator = TrajectoryGenerator(
            grid_net, uniform_speeds(grid_net), seed=4
        )
        trace = generator.drive("v0", 2, duration_s=200)
        for point in trace.points:
            assert 0 <= point.offset_km <= grid_net.road_at(point.road_index).length_km

    def test_fleet_sizes(self, grid_net):
        generator = TrajectoryGenerator(grid_net, uniform_speeds(grid_net), seed=5)
        traces = generator.fleet(4, duration_s=60)
        assert len(traces) == 4
        assert len({t.vehicle_id for t in traces}) == 4

    def test_fleet_start_roads(self, grid_net):
        generator = TrajectoryGenerator(grid_net, uniform_speeds(grid_net), seed=6)
        traces = generator.fleet(2, duration_s=60, start_roads=[3, 7])
        assert traces[0].points[0].road_index == 3
        assert traces[1].points[0].road_index == 7
        with pytest.raises(DatasetError):
            generator.fleet(2, duration_s=60, start_roads=[1])


class TestSpeedExtraction:
    def test_recovers_true_speed_noiseless(self, line_net):
        speeds = np.full(6, 30.0)
        generator = TrajectoryGenerator(
            line_net, speeds, fix_interval_s=5.0, gps_noise_fraction=0.0, seed=7
        )
        trace = generator.drive("v0", 0, duration_s=120)
        observed = extract_road_speeds(line_net, trace)
        assert observed  # crossed at least one road usably
        for road, value in observed.items():
            assert value == pytest.approx(30.0, rel=0.05)

    def test_heterogeneous_speeds_recovered(self, line_net):
        speeds = np.array([20.0, 40.0, 60.0, 30.0, 50.0, 25.0])
        generator = TrajectoryGenerator(
            line_net, speeds, fix_interval_s=2.0, gps_noise_fraction=0.0, seed=8
        )
        trace = generator.drive("v0", 0, duration_s=400)
        observed = extract_road_speeds(line_net, trace, min_dwell_s=10.0)
        for road, value in observed.items():
            assert value == pytest.approx(speeds[road], rel=0.15)

    def test_short_dwell_discarded(self, line_net):
        points = (
            TrajectoryPoint(0.0, 0, 0.0),
            TrajectoryPoint(1.0, 0, 0.01),  # 1 s on road 0: below min dwell
            TrajectoryPoint(2.0, 1, 0.0),
            TrajectoryPoint(30.0, 1, 0.2),
        )
        observed = extract_road_speeds(line_net, Trajectory("v0", points))
        assert 0 not in observed
        assert 1 in observed

    def test_zero_displacement_discarded(self, line_net):
        points = (
            TrajectoryPoint(0.0, 0, 0.1),
            TrajectoryPoint(60.0, 0, 0.1),
        )
        observed = extract_road_speeds(line_net, Trajectory("v0", points))
        assert observed == {}

    def test_fleet_observations_collect_per_road(self, grid_net):
        speeds = uniform_speeds(grid_net, 36.0)
        generator = TrajectoryGenerator(
            grid_net, speeds, gps_noise_fraction=0.0, seed=9
        )
        traces = generator.fleet(6, duration_s=300)
        observations = fleet_road_speeds(grid_net, traces)
        assert observations
        total = sum(len(v) for v in observations.values())
        assert total >= 6
        for road, values in observations.items():
            for value in values:
                assert value == pytest.approx(36.0, rel=0.1)

    def test_observations_aggregate_cleanly(self, grid_net):
        """Trajectory-derived answers flow into the standard aggregator."""
        speeds = uniform_speeds(grid_net, 45.0)
        generator = TrajectoryGenerator(
            grid_net, speeds, gps_noise_fraction=0.01, seed=10
        )
        traces = generator.fleet(8, duration_s=300)
        observations = fleet_road_speeds(grid_net, traces)
        road, values = max(observations.items(), key=lambda kv: len(kv[1]))
        aggregated = repro.aggregate_answers(values)
        assert aggregated == pytest.approx(45.0, rel=0.15)
