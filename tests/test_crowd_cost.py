"""Unit tests for repro.crowd.cost."""

import numpy as np
import pytest

import repro
from repro.errors import BudgetError
from repro.crowd.cost import CostModel, kind_based_costs, uniform_random_costs
from repro.network.graph import RoadKind


class TestCostModel:
    def test_valid(self, line_net):
        model = CostModel(line_net, [1, 2, 3, 4, 5, 6])
        assert model.cost_of(2) == 3
        assert model.cost_range == (1, 6)

    def test_wrong_shape(self, line_net):
        with pytest.raises(BudgetError):
            CostModel(line_net, [1, 2])

    def test_nonpositive_rejected(self, line_net):
        with pytest.raises(BudgetError):
            CostModel(line_net, [1, 0, 1, 1, 1, 1])

    def test_cost_of_out_of_range(self, line_net):
        model = CostModel(line_net, [1] * 6)
        with pytest.raises(BudgetError):
            model.cost_of(6)

    def test_costs_of_preserves_order(self, line_net):
        model = CostModel(line_net, [1, 2, 3, 4, 5, 6])
        assert list(model.costs_of([5, 0])) == [6, 1]

    def test_total(self, line_net):
        model = CostModel(line_net, [1, 2, 3, 4, 5, 6])
        assert model.total([0, 1, 2]) == 6

    def test_costs_view_read_only(self, line_net):
        model = CostModel(line_net, [1] * 6)
        with pytest.raises(ValueError):
            model.costs[0] = 5


class TestUniformRandomCosts:
    def test_range_respected(self, grid_net):
        model = uniform_random_costs(grid_net, 1, 10, seed=1)
        lo, hi = model.cost_range
        assert lo >= 1 and hi <= 10

    def test_paper_c1_c2_ranges(self, grid_net):
        c1 = uniform_random_costs(grid_net, 1, 10, seed=2)
        c2 = uniform_random_costs(grid_net, 1, 5, seed=2)
        assert c1.cost_range[1] <= 10
        assert c2.cost_range[1] <= 5

    def test_deterministic(self, grid_net):
        a = uniform_random_costs(grid_net, 1, 10, seed=3)
        b = uniform_random_costs(grid_net, 1, 10, seed=3)
        assert np.array_equal(a.costs, b.costs)

    def test_invalid_range(self, grid_net):
        with pytest.raises(BudgetError):
            uniform_random_costs(grid_net, 5, 2)
        with pytest.raises(BudgetError):
            uniform_random_costs(grid_net, 0, 3)


class TestKindBasedCosts:
    def test_highways_cheaper_on_average(self):
        net = repro.ring_radial_network(300, seed=4)
        model = kind_based_costs(net, seed=5)
        highway_costs = [
            model.cost_of(i)
            for i, road in enumerate(net.roads)
            if road.kind is RoadKind.HIGHWAY
        ]
        local_costs = [
            model.cost_of(i)
            for i, road in enumerate(net.roads)
            if road.kind is RoadKind.LOCAL
        ]
        assert np.mean(highway_costs) < np.mean(local_costs)

    def test_all_positive(self, grid_net):
        model = kind_based_costs(grid_net, seed=6)
        assert np.all(model.costs > 0)
