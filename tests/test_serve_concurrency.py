"""Concurrency tests: QueryService under threaded clients + hot refresh.

Modeled on test_store_concurrency.py: client threads hammer the service
while a writer publishes model refreshes.  Because every batch pins one
snapshot, no request may ever observe a torn model (estimates from one
generation labeled with another's version), and the service must keep
resolving every ticket — no deadlocks, no lost requests.

Run in CI with faulthandler and a hard timeout so a deadlock shows a
stack dump instead of hanging the job.
"""

from __future__ import annotations

import threading
from typing import List

import numpy as np
import pytest

import repro
from repro.serve import QueryService, ServeConfig, ServeRequest


@pytest.fixture(scope="module")
def world(tiny_dataset):
    system = repro.CrowdRTSE.fit(
        tiny_dataset.network, tiny_dataset.train_history, slots=[tiny_dataset.slot]
    )
    return {
        "data": tiny_dataset,
        "system": system,
        "truth": repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        ),
        "local": tiny_dataset.test_history.local_slot(tiny_dataset.slot),
    }


def _request(world, seed):
    data = world["data"]
    return ServeRequest(
        queried=tuple(data.queried[:6]),
        slot=data.slot,
        budget=12,
        market=repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(seed),
        ),
        truth=world["truth"],
        rng=np.random.default_rng(seed),
    )


class TestServeUnderRefresh:
    def test_clients_race_hot_refresh_without_torn_results(self, world):
        """Every result is finite, version-stamped, and from a version
        that existed while the request was in flight."""
        data = world["data"]
        system = world["system"]
        config = ServeConfig(num_workers=3, max_queue_depth=256)
        service = QueryService(system, config=config)
        stop = threading.Event()
        errors_seen: List[str] = []
        served_versions: List[int] = []
        lock = threading.Lock()

        def writer():
            # Keep publishing until every client is done, so serving and
            # refreshing genuinely overlap regardless of relative speed.
            day = 0
            while not stop.is_set():
                system.refresh(
                    {data.slot: data.test_history.day(day)[world["local"]]},
                    learning_rate=0.2,
                )
                day = (day + 1) % data.test_history.n_days

        def client(seed: int):
            for k in range(5):
                floor = system.store.version
                try:
                    result = service.serve(_request(world, seed * 1000 + k))
                except repro.ReproError as exc:
                    errors_seen.append(f"client {seed}: {exc!r}")
                    return
                ceiling = system.store.version
                if result.degraded:
                    errors_seen.append("unexpected degradation")
                    return
                if not np.all(np.isfinite(result.estimates_kmh)):
                    errors_seen.append("non-finite estimates under refresh")
                    return
                if not (floor <= result.model_version <= ceiling):
                    errors_seen.append(
                        f"torn version: served v{result.model_version} "
                        f"outside [{floor}, {ceiling}]"
                    )
                    return
                with lock:
                    served_versions.append(result.model_version)

        clients = [
            threading.Thread(target=client, args=(s,)) for s in range(4)
        ]
        writer_thread = threading.Thread(target=writer)
        for thread in clients:
            thread.start()
        writer_thread.start()
        for thread in clients:
            thread.join(timeout=300)
        stop.set()
        writer_thread.join(timeout=300)
        service.close()
        assert not errors_seen, errors_seen
        assert served_versions, "clients never completed a request"
        # The stream of answers spans multiple model generations — the
        # refreshes really happened underneath live serving.
        assert len(set(served_versions)) > 1

    def test_concurrent_submitters_all_resolve(self, world):
        """Many threads submitting into a small queue: every ticket either
        resolves or fails with typed backpressure — none hang."""
        config = ServeConfig(num_workers=2, max_queue_depth=8)
        service = QueryService(world["system"], config=config)
        outcomes: List[str] = []
        lock = threading.Lock()

        def submitter(seed: int):
            for k in range(6):
                try:
                    result = service.serve(
                        _request(world, seed * 100 + k), timeout=120
                    )
                    label = "ok" if not result.degraded else "degraded"
                except repro.OverloadedError:
                    label = "rejected"
                with lock:
                    outcomes.append(label)

        threads = [
            threading.Thread(target=submitter, args=(s,)) for s in range(5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        service.close()
        assert len(outcomes) == 30
        assert outcomes.count("ok") >= 1

    def test_close_during_load_resolves_every_ticket(self, world):
        """close(drain=True) after a burst: nothing is left hanging."""
        config = ServeConfig(num_workers=2, max_queue_depth=64)
        service = QueryService(world["system"], config=config)
        tickets = [service.submit(_request(world, 7000 + k)) for k in range(10)]
        service.close(drain=True)
        for ticket in tickets:
            result = ticket.result(timeout=60)
            assert np.all(np.isfinite(result.estimates_kmh))

    def test_refresh_never_blocks_on_serving(self, world):
        """A writer publishing during a long queue drain finishes promptly
        (snapshot pinning is lock-free for the writer)."""
        data = world["data"]
        system = world["system"]
        service = QueryService(system, config=ServeConfig(num_workers=2))
        tickets = [service.submit(_request(world, 9000 + k)) for k in range(8)]
        done = threading.Event()

        def writer():
            for day in range(data.test_history.n_days):
                system.refresh(
                    {data.slot: data.test_history.day(day)[world["local"]]},
                    learning_rate=0.2,
                )
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=120)
        assert done.is_set(), "refresh writer stalled behind serving"
        for ticket in tickets:
            ticket.result(timeout=120)
        service.close()
