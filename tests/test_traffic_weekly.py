"""Tests for the weekly traffic cycle and day-type splitting."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.traffic.profiles import ProfileKind, build_profile, slot_of_time
from repro.traffic.simulator import SimulationConfig, TrafficSimulator


class TestWeekendConfig:
    def test_validation(self):
        with pytest.raises(DatasetError):
            SimulationConfig(weekend_factor=1.5)
        with pytest.raises(DatasetError):
            SimulationConfig(first_weekday=7)

    def test_is_weekend(self):
        cfg = SimulationConfig(first_weekday=0)  # day 0 = Monday
        assert not cfg.is_weekend(0)
        assert cfg.is_weekend(5) and cfg.is_weekend(6)
        assert not cfg.is_weekend(7)
        cfg_sat = SimulationConfig(first_weekday=5)
        assert cfg_sat.is_weekend(0)


class TestWeekendEffect:
    @pytest.fixture(scope="class")
    def world(self):
        network = repro.line_network(8)
        profiles = [
            build_profile(road, ProfileKind.COMMUTER) for road in network.roads
        ]
        config = SimulationConfig(
            n_days=14,
            slot_start=slot_of_time(8),
            n_slots=4,
            seed=9,
            weekend_factor=0.3,
        )
        history = TrafficSimulator(network, profiles, config).simulate()
        return network, config, history

    def test_weekends_faster_at_rush_hour(self, world):
        _, config, history = world
        weekdays = [d for d in range(14) if not config.is_weekend(d)]
        weekends = [d for d in range(14) if config.is_weekend(d)]
        samples = history.slot_samples(slot_of_time(8))
        assert samples[weekends].mean() > samples[weekdays].mean()

    def test_factor_one_means_no_cycle(self):
        network = repro.line_network(5)
        profiles = [
            build_profile(road, ProfileKind.COMMUTER) for road in network.roads
        ]
        base = SimulationConfig(n_days=7, slot_start=96, n_slots=3, seed=2)
        cycled = SimulationConfig(
            n_days=7, slot_start=96, n_slots=3, seed=2, weekend_factor=1.0
        )
        a = TrafficSimulator(network, profiles, base).simulate()
        b = TrafficSimulator(network, profiles, cycled).simulate()
        assert np.allclose(a.values, b.values)

    def test_day_type_models_differ(self, world):
        """Fitting RTF per day type yields different weekday means."""
        network, config, history = world
        weekdays = [d for d in range(14) if not config.is_weekend(d)]
        weekends = [d for d in range(14) if config.is_weekend(d)]
        slot = slot_of_time(8) + 1
        weekday_params = repro.empirical_slot_parameters(
            network, history.select_days(weekdays).slot_samples(slot), slot
        )
        weekend_params = repro.empirical_slot_parameters(
            network, history.select_days(weekends).slot_samples(slot), slot
        )
        assert weekend_params.mu.mean() > weekday_params.mu.mean()


class TestSelectDays:
    def test_selection(self, small_world):
        history = small_world["history"]
        selected = history.select_days([0, 2, 4])
        assert selected.n_days == 3
        assert np.allclose(selected.values[1], history.values[2])

    def test_order_preserved(self, small_world):
        history = small_world["history"]
        swapped = history.select_days([3, 1])
        assert np.allclose(swapped.values[0], history.values[3])

    def test_validation(self, small_world):
        history = small_world["history"]
        with pytest.raises(DatasetError):
            history.select_days([])
        with pytest.raises(DatasetError):
            history.select_days([99])
