"""Unit/integration tests for trajectory-derived crowd probes."""

import numpy as np
import pytest

import repro
from repro.errors import CrowdError
from repro.crowd.trajectory_probe import TrajectoryProbeCollector
from repro.core.gsp import GSPConfig, propagate


class TestTrajectoryProbeCollector:
    def test_validation(self, grid_net):
        with pytest.raises(CrowdError):
            TrajectoryProbeCollector(grid_net, drive_duration_s=0)

    def test_probe_returns_requested_roads(self, grid_net):
        collector = TrajectoryProbeCollector(grid_net, seed=1)
        speeds = np.full(grid_net.n_roads, 40.0)
        aggregated, raw = collector.probe([0, 5, 12], speeds, {0: 2, 5: 1, 12: 3})
        assert set(aggregated) == {0, 5, 12}
        assert len(raw[12]) == 3

    def test_answers_near_truth(self, grid_net):
        collector = TrajectoryProbeCollector(
            grid_net, drive_duration_s=180, gps_noise_fraction=0.01, seed=2
        )
        speeds = np.full(grid_net.n_roads, 36.0)
        aggregated, _ = collector.probe([3], speeds, {3: 4})
        assert aggregated[3] == pytest.approx(36.0, rel=0.15)

    def test_bad_answer_count(self, grid_net):
        collector = TrajectoryProbeCollector(grid_net, seed=3)
        speeds = np.full(grid_net.n_roads, 40.0)
        with pytest.raises(CrowdError):
            collector.probe([0], speeds, {0: 0})

    def test_heterogeneous_field_tracked(self, grid_net, rng):
        collector = TrajectoryProbeCollector(
            grid_net, drive_duration_s=240, gps_noise_fraction=0.0, seed=4
        )
        speeds = rng.uniform(25, 60, grid_net.n_roads)
        roads = [0, 12, 24]
        aggregated, _ = collector.probe(roads, speeds, {r: 3 for r in roads})
        for road in roads:
            assert aggregated[road] == pytest.approx(speeds[road], rel=0.35)


class TestTrajectoryProbesFeedGSP:
    def test_end_to_end_with_trace_probes(self, small_world):
        """Trace-derived probes slot straight into GSP propagation."""
        net = small_world["network"]
        params = small_world["params"]
        history = small_world["history"]
        slot = small_world["slot"]
        truth_day = history.slot_samples(slot)[-1]

        collector = TrajectoryProbeCollector(
            net, drive_duration_s=180, gps_noise_fraction=0.01, seed=5
        )
        roads = [0, 10, 25, 40]
        probes, _ = collector.probe(roads, truth_day, {r: 3 for r in roads})
        result = propagate(net, params, probes, GSPConfig())
        assert result.converged

        gsp_err = np.abs(result.speeds - truth_day) / truth_day
        per_err = np.abs(params.mu - truth_day) / truth_day
        # Realistic probes still help over pure periodicity on average.
        assert gsp_err.mean() <= per_err.mean() + 0.01
