"""Unit tests for OCS local search."""

import numpy as np
import pytest

import repro
from repro.errors import SelectionError
from repro.core.local_search import greedy_plus_local_search, local_search
from repro.core.ocs import OCSInstance, brute_force_ocs, hybrid_greedy


def make_instance(n=10, queried=(0, 1, 2), budget=4, theta=0.95, seed=0, costs=None):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.1, 0.95, size=(n, n))
    corr = (base + base.T) / 2
    np.fill_diagonal(corr, 1.0)
    return OCSInstance(
        queried=tuple(queried),
        candidates=tuple(range(n)),
        costs=np.asarray(
            costs if costs is not None else np.ones(n), dtype=float
        ),
        budget=budget,
        theta=theta,
        corr=corr,
        sigma=rng.uniform(1.0, 5.0, size=n),
    )


class TestLocalSearch:
    def test_result_feasible(self):
        for seed in range(5):
            inst = make_instance(seed=seed)
            result = local_search(inst)
            assert inst.is_feasible(result.selected)

    def test_never_worse_than_start(self):
        for seed in range(6):
            inst = make_instance(seed=seed)
            greedy = hybrid_greedy(inst)
            refined = local_search(inst, greedy.selected)
            assert refined.objective >= greedy.objective - 1e-9

    def test_infeasible_start_rejected(self):
        inst = make_instance(budget=2)
        with pytest.raises(SelectionError):
            local_search(inst, [0, 1, 2, 3, 4])

    def test_from_scratch_reaches_positive_objective(self):
        inst = make_instance(seed=3)
        result = local_search(inst)
        assert result.objective > 0

    def test_local_optimum_no_improving_add(self):
        inst = make_instance(seed=4)
        result = local_search(inst)
        selected = set(result.selected)
        for road in inst.candidates:
            if road in selected:
                continue
            trial = sorted(selected | {road})
            if inst.is_feasible(trial):
                assert inst.objective(trial) <= result.objective + 1e-9

    def test_matches_brute_force_on_tiny(self):
        for seed in range(6):
            inst = make_instance(n=7, budget=3, seed=seed)
            optimum = brute_force_ocs(inst)
            refined = local_search(inst, hybrid_greedy(inst).selected)
            # Local search closes most of the greedy gap on tiny cases.
            assert refined.objective >= 0.95 * optimum.objective - 1e-9


class TestGreedyPlusLocalSearch:
    def test_gap_nonnegative_and_small(self):
        gaps = []
        for seed in range(8):
            costs = np.random.default_rng(seed).integers(1, 4, 12).astype(float)
            inst = make_instance(n=12, budget=6, seed=seed, costs=costs)
            refined, gap = greedy_plus_local_search(inst)
            assert gap >= 0.0
            assert inst.is_feasible(refined.selected)
            gaps.append(gap)
        # Empirically Hybrid-Greedy leaves little on the table.
        assert float(np.mean(gaps)) < 0.15
