"""Unit tests for repro.core.gsp."""

import numpy as np
import pytest

import repro
from repro.errors import ConvergenceError, ModelError
from repro.core.gsp import GSPConfig, GSPKernel, GSPSchedule, propagate
from repro.core.rtf import RTFSlot


def flat_slot(net, mu=50.0, sigma=3.0, rho=0.8, slot=0):
    return RTFSlot(
        slot=slot,
        mu=np.full(net.n_roads, float(mu)),
        sigma=np.full(net.n_roads, float(sigma)),
        rho=np.full(net.n_edges, float(rho)),
    )


class TestConfig:
    def test_invalid_epsilon(self):
        with pytest.raises(ModelError):
            GSPConfig(epsilon=0)

    def test_invalid_sweeps(self):
        with pytest.raises(ModelError):
            GSPConfig(max_sweeps=0)

    def test_auto_kernel_resolution(self):
        assert (
            GSPConfig(schedule=GSPSchedule.BFS).resolved_kernel()
            is GSPKernel.REFERENCE
        )
        assert (
            GSPConfig(schedule=GSPSchedule.BFS_PARALLEL).resolved_kernel()
            is GSPKernel.VECTORIZED
        )
        assert (
            GSPConfig(schedule=GSPSchedule.BFS_COLORED).resolved_kernel()
            is GSPKernel.VECTORIZED
        )

    def test_vectorized_kernel_rejects_gauss_seidel_schedules(self):
        config = GSPConfig(schedule=GSPSchedule.BFS, kernel=GSPKernel.VECTORIZED)
        with pytest.raises(ModelError):
            config.resolved_kernel()


class TestPropagation:
    def test_no_observations_returns_means(self, line_net):
        params = flat_slot(line_net)
        result = propagate(line_net, params, {})
        assert np.allclose(result.speeds, params.mu)
        assert result.converged

    def test_observed_roads_clamped(self, line_net):
        params = flat_slot(line_net)
        result = propagate(line_net, params, {2: 30.0})
        assert result.speeds[2] == 30.0

    def test_probe_pulls_neighbours(self, line_net):
        params = flat_slot(line_net, mu=50.0)
        result = propagate(line_net, params, {2: 30.0})
        # Neighbours of the probe move towards it; distant roads less so.
        assert result.speeds[1] < 50.0
        assert result.speeds[3] < 50.0
        assert abs(result.speeds[5] - 50.0) < abs(result.speeds[3] - 50.0)

    def test_all_observed_short_circuits(self, line_net):
        params = flat_slot(line_net)
        observed = {i: 40.0 + i for i in range(6)}
        result = propagate(line_net, params, observed)
        assert result.sweeps == 0
        assert np.allclose(result.speeds, [40, 41, 42, 43, 44, 45])

    def test_probe_equal_to_mean_changes_nothing(self, line_net):
        params = flat_slot(line_net, mu=50.0)
        result = propagate(line_net, params, {0: 50.0})
        assert np.allclose(result.speeds, 50.0)

    def test_mu_offsets_respected(self, line_net):
        # mu_ij != 0: the propagated value carries the offset.
        mu = np.array([60.0, 50.0, 40.0, 30.0, 20.0, 10.0])
        params = RTFSlot(0, mu, np.full(6, 3.0), np.full(5, 0.9))
        result = propagate(line_net, params, {0: 66.0})
        # Road 1 should shift up from 50 by roughly the same +6 shock,
        # attenuated by its own prior.
        assert 50.0 < result.speeds[1] < 60.0

    def test_invalid_observed_index(self, line_net):
        with pytest.raises(ModelError):
            propagate(line_net, flat_slot(line_net), {9: 40.0})

    def test_invalid_observed_value(self, line_net):
        with pytest.raises(ModelError):
            propagate(line_net, flat_slot(line_net), {0: -1.0})

    def test_strict_convergence_raises(self, line_net):
        params = flat_slot(line_net)
        config = GSPConfig(epsilon=1e-12, max_sweeps=1, strict=True)
        with pytest.raises(ConvergenceError):
            propagate(line_net, params, {0: 20.0}, config)

    def test_delta_history_decreasing_overall(self, grid_net):
        params = flat_slot(grid_net)
        result = propagate(grid_net, params, {0: 20.0, 24: 80.0})
        deltas = result.max_delta_history
        assert deltas[-1] < deltas[0]
        assert result.converged

    def test_result_records_provenance(self, grid_net):
        params = flat_slot(grid_net)
        observed = {0: 20.0}
        sequential = propagate(grid_net, params, observed)
        assert sequential.schedule is GSPSchedule.BFS
        assert sequential.kernel is GSPKernel.REFERENCE
        assert sequential.sweeps == len(sequential.max_delta_history)
        config = GSPConfig(schedule=GSPSchedule.BFS_COLORED)
        fused = propagate(grid_net, params, observed, config)
        assert fused.schedule is GSPSchedule.BFS_COLORED
        assert fused.kernel is GSPKernel.VECTORIZED


class TestFixedPoint:
    def test_result_satisfies_eq18(self, small_world):
        """At convergence every free road satisfies the Eq. 18 update."""
        net = small_world["network"]
        params = small_world["params"]
        observed = {0: float(params.mu[0] * 0.7), 7: float(params.mu[7] * 1.2)}
        config = GSPConfig(epsilon=1e-10, max_sweeps=2000)
        result = propagate(net, params, observed, config)
        speeds = result.speeds
        for i in range(net.n_roads):
            if i in observed:
                continue
            num = params.mu[i] / params.sigma[i] ** 2
            den = 1.0 / params.sigma[i] ** 2
            for j in net.neighbors(i):
                var = params.pairwise_sigma(net, i, j) ** 2
                num += (speeds[j] + params.mu[i] - params.mu[j]) / var
                den += 1.0 / var
            assert speeds[i] == pytest.approx(num / den, abs=1e-6)

    def test_fixed_point_maximizes_conditional_likelihood(self, small_world):
        net = small_world["network"]
        params = small_world["params"]
        observed = {3: float(params.mu[3] * 0.8)}
        result = propagate(net, params, observed, GSPConfig(epsilon=1e-10, max_sweeps=2000))
        speeds = result.speeds.copy()
        road = int(net.neighbors(3)[0])
        base = params.conditional_log_likelihood(net, road, speeds)
        for delta in (-1.0, 1.0):
            perturbed = speeds.copy()
            perturbed[road] += delta
            assert params.conditional_log_likelihood(net, road, perturbed) < base


class TestSchedules:
    @pytest.mark.parametrize("schedule", list(GSPSchedule))
    def test_all_schedules_reach_same_fixed_point(self, grid_net, schedule):
        params = flat_slot(grid_net, rho=0.7)
        observed = {0: 30.0, 24: 70.0}
        reference = propagate(
            grid_net, params, observed, GSPConfig(epsilon=1e-10, max_sweeps=3000)
        )
        result = propagate(
            grid_net,
            params,
            observed,
            GSPConfig(epsilon=1e-10, max_sweeps=3000, schedule=schedule, seed=5),
        )
        assert result.converged
        assert np.allclose(result.speeds, reference.speeds, atol=1e-6)

    def test_bfs_converges_at_least_as_fast_as_index(self, small_world):
        net = small_world["network"]
        params = small_world["params"]
        observed = {0: float(params.mu[0] * 0.6)}
        config_kwargs = dict(epsilon=1e-8, max_sweeps=3000)
        bfs = propagate(net, params, observed, GSPConfig(schedule=GSPSchedule.BFS, **config_kwargs))
        index = propagate(net, params, observed, GSPConfig(schedule=GSPSchedule.INDEX, **config_kwargs))
        assert bfs.sweeps <= index.sweeps + 2
