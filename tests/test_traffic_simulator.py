"""Unit tests for repro.traffic.simulator."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.traffic.incidents import Incident, IncidentModel
from repro.traffic.profiles import ProfileKind, build_profile, random_profiles
from repro.traffic.simulator import SimulationConfig, TrafficSimulator


class TestSimulationConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.n_slots == 288

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_days": 0},
            {"n_slots": 0},
            {"slot_start": 288},
            {"slot_start": 280, "n_slots": 20},
            {"temporal_ar": 1.0},
            {"spatial_passes": -1},
            {"spatial_weight": 1.5},
            {"min_speed_kmh": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(DatasetError):
            SimulationConfig(**kwargs)


class TestSimulatorConstruction:
    def test_profile_count_mismatch(self, line_net):
        profiles = random_profiles(line_net, seed=1)[:-1]
        with pytest.raises(DatasetError, match="profiles"):
            TrafficSimulator(line_net, profiles)

    def test_profile_order_mismatch(self, line_net):
        profiles = random_profiles(line_net, seed=1)
        swapped = [profiles[1], profiles[0]] + list(profiles[2:])
        with pytest.raises(DatasetError, match="expected"):
            TrafficSimulator(line_net, swapped)


class TestSimulationOutput:
    @pytest.fixture(scope="class")
    def sim_setup(self):
        network = repro.grid_network(4, 4)
        profiles = random_profiles(network, seed=2)
        config = SimulationConfig(n_days=30, slot_start=96, n_slots=6, seed=3)
        simulator = TrafficSimulator(network, profiles, config)
        return network, profiles, config, simulator.simulate()

    def test_history_shape(self, sim_setup):
        network, _, config, history = sim_setup
        assert history.n_days == config.n_days
        assert history.n_slots == config.n_slots
        assert history.n_roads == network.n_roads
        assert history.slot_offset == config.slot_start

    def test_speeds_positive(self, sim_setup):
        _, _, _, history = sim_setup
        assert np.all(history.values > 0)

    def test_mean_tracks_profile(self, sim_setup):
        network, profiles, config, history = sim_setup
        slot = config.slot_start + 2
        sample_mean = history.empirical_mean(slot)
        profile_mean = np.array([p.mean_kmh[slot] for p in profiles])
        rel = np.abs(sample_mean - profile_mean) / profile_mean
        assert np.median(rel) < 0.1

    def test_adjacent_roads_positively_correlated(self, sim_setup):
        network, _, config, history = sim_setup
        slot = config.slot_start + 3
        corrs = [
            history.empirical_correlation(slot, i, j) for i, j in network.edges
        ]
        assert np.mean(corrs) > 0.3

    def test_adjacent_more_correlated_than_distant(self, sim_setup):
        network, _, config, history = sim_setup
        slot = config.slot_start + 3
        adjacent = np.mean(
            [history.empirical_correlation(slot, i, j) for i, j in network.edges]
        )
        # Opposite grid corners (0 and 15) are 6 hops apart.
        distant = history.empirical_correlation(slot, 0, 15)
        assert adjacent > distant

    def test_deterministic_given_seed(self):
        network = repro.line_network(5)
        profiles = random_profiles(network, seed=4)
        config = SimulationConfig(n_days=3, slot_start=0, n_slots=4, seed=9)
        a = TrafficSimulator(network, profiles, config).simulate()
        b = TrafficSimulator(network, profiles, config).simulate()
        assert np.allclose(a.values, b.values)


class TestIncidentsInSimulation:
    def test_explicit_incident_slows_traffic(self):
        network = repro.line_network(7)
        profiles = random_profiles(network, seed=5)
        config = SimulationConfig(n_days=2, slot_start=0, n_slots=12, seed=6)
        simulator = TrafficSimulator(network, profiles, config)
        clean = simulator.simulate(incidents=[])
        incident = Incident(
            road_index=3, day=1, start_slot=2, duration_slots=8, severity=0.6
        )
        shocked = simulator.simulate(incidents=[incident])
        # Same seed: day 0 identical, day 1 road 3 slower during incident.
        assert np.allclose(clean.values[0], shocked.values[0])
        during = slice(3, 9)
        assert (
            shocked.values[1, during, 3].mean() < clean.values[1, during, 3].mean()
        )

    def test_incident_model_sampled(self):
        network = repro.grid_network(3, 3)
        profiles = random_profiles(network, seed=7)
        config = SimulationConfig(n_days=4, slot_start=0, n_slots=10, seed=8)
        model = IncidentModel(network, rate_per_day=3.0)
        with_incidents = TrafficSimulator(network, profiles, config, model).simulate()
        without = TrafficSimulator(network, profiles, config).simulate()
        assert not np.allclose(with_incidents.values, without.values)

    def test_volatile_roads_fluctuate_more(self):
        network = repro.line_network(2)
        steady = build_profile(network.roads[0], ProfileKind.STEADY)
        volatile = build_profile(network.roads[1], ProfileKind.VOLATILE)
        config = SimulationConfig(
            n_days=60, slot_start=100, n_slots=2, seed=10, spatial_passes=0
        )
        history = TrafficSimulator(network, [steady, volatile], config).simulate()
        stds = history.empirical_std(101)
        assert stds[1] > stds[0]
