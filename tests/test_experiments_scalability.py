"""Tests for the network-size scalability experiment."""

import pytest

from repro.experiments import scalability
from repro.experiments.common import ExperimentScale


class TestScalability:
    @pytest.fixture(scope="class")
    def points(self):
        return scalability.run(
            ExperimentScale.QUICK, sizes=(30, 60, 90), budget=15
        )

    def test_sizes_covered(self, points):
        assert [p.n_roads for p in points] == [30, 60, 90]

    def test_all_timings_positive(self, points):
        for p in points:
            assert p.gamma_build_s >= 0
            assert p.ocs_s >= 0
            assert p.gsp_s >= 0
            assert p.gsp_vectorized_s >= 0
            assert p.exact_solve_s >= 0
            assert p.gsp_sweeps >= 1

    def test_online_stage_stays_subsecond(self, points):
        """The paper's realtime claim must survive scaling."""
        for p in points:
            assert p.ocs_s < 1.0
            assert p.gsp_s < 1.0

    def test_format(self, points):
        text = scalability.format_table(points)
        assert "GSP sweeps" in text
        assert "GSP (vec)" in text
        assert "|R|" in text
