"""Engine tests: suppression, baseline, reporters, exit codes."""

from __future__ import annotations

import json

import pytest

from tests.analyze_util import make_project, write_files
from tools.analyze import __main__ as analyze_main
from tools.analyze.core import (
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    Finding,
    load_baseline,
    run_rules,
    select_rules,
    write_baseline,
)
from tools.analyze.reporters import (
    human_report,
    json_report,
    sarif_report,
    validate_sarif,
)
from tools.analyze.rules import ALL_RULES
from tools.analyze.rules.ra006_determinism import RA006Determinism

FIRING = """
    import numpy as np

    def draw():
        return np.random.rand(3)
"""


def test_registry_ships_twelve_rules_with_unique_ids():
    ids = [rule_cls.rule_id for rule_cls in ALL_RULES]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids) == 12
    assert ids[0] == "RA001" and ids[-1] == "RA012"


def test_select_rules_filters_and_rejects_unknown():
    assert [r.rule_id for r in select_rules("RA003, ra001")] == ["RA001", "RA003"]
    with pytest.raises(ValueError, match="RA999"):
        select_rules("RA999")


class TestSuppression:
    def test_bare_noqa_suppresses_any_rule(self, tmp_path):
        files = {"src/m.py": FIRING.replace(
            "np.random.rand(3)", "np.random.rand(3)  # repro: noqa"
        )}
        project = make_project(tmp_path, files)
        result = run_rules(project, [RA006Determinism()])
        assert result.findings == []
        assert result.suppressed == 1

    def test_rule_scoped_noqa(self, tmp_path):
        files = {"src/m.py": FIRING.replace(
            "np.random.rand(3)", "np.random.rand(3)  # repro: noqa[RA006]"
        )}
        project = make_project(tmp_path, files)
        assert run_rules(project, [RA006Determinism()]).findings == []

    def test_other_rule_noqa_does_not_suppress(self, tmp_path):
        files = {"src/m.py": FIRING.replace(
            "np.random.rand(3)", "np.random.rand(3)  # repro: noqa[RA001]"
        )}
        project = make_project(tmp_path, files)
        result = run_rules(project, [RA006Determinism()])
        assert len(result.findings) == 1
        assert result.suppressed == 0


class TestBaseline:
    def test_roundtrip_hides_grandfathered_findings(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": FIRING})
        rule = RA006Determinism()
        first = run_rules(project, [rule])
        assert len(first.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        baseline = load_baseline(baseline_path)
        second = run_rules(project, [rule], baseline)
        assert second.findings == []
        assert second.baselined == 1
        assert second.stale_baseline == []

    def test_fingerprint_survives_line_moves(self):
        a = Finding("RA006", "src/m.py", 4, "message")
        b = Finding("RA006", "src/m.py", 400, "message")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != Finding("RA001", "src/m.py", 4, "message").fingerprint

    def test_stale_entries_are_reported(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": "x = 1\n"})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            baseline_path, [Finding("RA006", "src/gone.py", 0, "old finding")]
        )
        result = run_rules(project, [RA006Determinism()], load_baseline(baseline_path))
        assert result.findings == []
        assert len(result.stale_baseline) == 1
        assert result.stale_baseline[0]["path"] == "src/gone.py"

    def test_write_baseline_preserves_justifications(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = Finding("RA006", "src/m.py", 3, "msg")
        write_baseline(path, [finding])
        entries = json.loads(path.read_text())["findings"]
        entries[0]["justification"] = "deliberate: documented fallback"
        path.write_text(json.dumps({"version": 1, "findings": entries}))

        write_baseline(path, [finding], previous=load_baseline(path))
        kept = json.loads(path.read_text())["findings"][0]["justification"]
        assert kept == "deliberate: documented fallback"

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"findings": [{"rule": "RA001"}]}')
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(path)


class TestReporters:
    def _result(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": FIRING})
        return run_rules(project, [RA006Determinism()])

    def test_human_report_has_location_and_summary(self, tmp_path):
        report = human_report(self._result(tmp_path), 1, 1)
        assert "src/m.py:5: RA006" in report
        assert "1 finding(s) from 1 rule(s) over 1 module(s)" in report

    def test_json_report_is_valid_and_sorted(self, tmp_path):
        payload = json.loads(json_report(self._result(tmp_path), 1, 1))
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RA006"
        assert finding["path"] == "src/m.py"
        assert finding["fingerprint"]


class TestMainExitCodes:
    def _run(self, tmp_path, files, extra=()):
        write_files(tmp_path, files)
        argv = ["--root", str(tmp_path), "--baseline", str(tmp_path / "bl.json")]
        return analyze_main.main(argv + list(extra) + ["src"])

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert self._run(tmp_path, {"src/m.py": "x = 1\n"}) == EXIT_OK
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_two(self, tmp_path, capsys):
        assert self._run(tmp_path, {"src/m.py": FIRING}) == EXIT_FINDINGS
        assert "RA006" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        code = self._run(tmp_path, {"src/m.py": "x = 1\n"}, ["--select", "RA042"])
        assert code == EXIT_FINDINGS

    def test_syntax_error_is_a_user_error(self, tmp_path, capsys):
        code = self._run(tmp_path, {"src/m.py": "def broken(:\n"})
        assert code == EXIT_FINDINGS
        assert "error:" in capsys.readouterr().err

    def test_internal_error_exits_seventy(self, tmp_path, monkeypatch, capsys):
        def boom(*args, **kwargs):
            raise RuntimeError("analyzer bug")

        monkeypatch.setattr(analyze_main, "run_rules", boom)
        assert self._run(tmp_path, {"src/m.py": "x = 1\n"}) == EXIT_INTERNAL_ERROR

    def test_write_baseline_then_clean(self, tmp_path):
        make_project(tmp_path, {"src/m.py": FIRING})
        argv = ["--root", str(tmp_path), "--baseline", str(tmp_path / "bl.json")]
        assert analyze_main.main(argv + ["--write-baseline", "src"]) == EXIT_OK
        assert analyze_main.main(argv + ["src"]) == EXIT_OK
        assert analyze_main.main(argv + ["--no-baseline", "src"]) == EXIT_FINDINGS

    def test_json_format_flag(self, tmp_path, capsys):
        self._run(tmp_path, {"src/m.py": FIRING}, ["--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1

    def test_list_rules(self, tmp_path, capsys):
        assert analyze_main.main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for n in range(1, 13):
            assert f"RA{n:03d}" in out


class TestFingerprintV2:
    def test_engine_findings_carry_symbol_and_snippet(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": FIRING})
        (finding,) = run_rules(project, [RA006Determinism()]).findings
        assert finding.symbol == "draw"
        assert finding.snippet == "return np.random.rand(3)"

    def test_baseline_survives_line_moves_and_rewords(self, tmp_path):
        """The satellite-2 contract: moving the finding line (or
        rewording the message) must not orphan the baseline entry."""
        project = make_project(tmp_path, {"src/m.py": FIRING})
        rule = RA006Determinism()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_rules(project, [rule]).findings)

        moved = make_project(
            tmp_path, {"src/m.py": "\n    ANSWER = 42\n    MORE = 43\n" + FIRING}
        )
        result = run_rules(moved, [rule], load_baseline(baseline_path))
        assert result.findings == []
        assert result.baselined == 1
        assert result.stale_baseline == []

    def test_changed_snippet_breaks_the_match(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": FIRING})
        rule = RA006Determinism()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_rules(project, [rule]).findings)

        edited = make_project(
            tmp_path, {"src/m.py": FIRING.replace("rand(3)", "rand(4)")}
        )
        result = run_rules(edited, [rule], load_baseline(baseline_path))
        assert len(result.findings) == 1
        assert len(result.stale_baseline) == 1

    def test_v1_message_keyed_baseline_still_matches(self, tmp_path):
        """Migration path: an old baseline written before symbol/snippet
        existed keeps masking its finding via the legacy fingerprint."""
        project = make_project(tmp_path, {"src/m.py": FIRING})
        rule = RA006Determinism()
        (finding,) = run_rules(project, [rule]).findings
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "findings": [{
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }],
        }))
        result = run_rules(project, [rule], load_baseline(path))
        assert result.findings == []
        assert result.baselined == 1

    def test_written_baseline_is_version_two(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": FIRING})
        path = tmp_path / "baseline.json"
        write_baseline(path, run_rules(project, [RA006Determinism()]).findings)
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        (entry,) = payload["findings"]
        assert entry["symbol"] == "draw"
        assert entry["snippet"] == "return np.random.rand(3)"


class TestStaleNoqa:
    def test_suppression_matching_nothing_fails_the_run(self, tmp_path):
        project = make_project(
            tmp_path, {"src/m.py": "x = 1  # repro: noqa[RA006]\n"}
        )
        result = run_rules(project, [RA006Determinism()])
        assert result.findings == []
        assert len(result.stale_suppressions) == 1
        assert result.stale_suppressions[0].rule == "NOQA"
        assert result.failed

    def test_live_suppression_is_not_stale(self, tmp_path):
        source = FIRING.replace(
            "np.random.rand(3)", "np.random.rand(3)  # repro: noqa[RA006]"
        )
        project = make_project(tmp_path, {"src/m.py": source})
        result = run_rules(project, [RA006Determinism()])
        assert result.stale_suppressions == []
        assert not result.failed

    def test_subset_run_does_not_judge_unran_rules(self, tmp_path):
        """A noqa[RA001] can only be judged stale when RA001 ran."""
        project = make_project(
            tmp_path, {"src/m.py": "x = 1  # repro: noqa[RA001]\n"}
        )
        result = run_rules(project, [RA006Determinism()])
        assert result.stale_suppressions == []

    def test_docstring_noqa_mention_is_not_a_suppression(self, tmp_path):
        project = make_project(tmp_path, {
            "src/m.py": '"""Docs may mention # repro: noqa[RA006] freely."""\n'
        })
        result = run_rules(project, [RA006Determinism()])
        assert result.stale_suppressions == []

    def test_stale_noqa_in_human_report(self, tmp_path):
        project = make_project(
            tmp_path, {"src/m.py": "x = 1  # repro: noqa[RA006]\n"}
        )
        result = run_rules(project, [RA006Determinism()])
        report = human_report(result, 1, 1)
        assert "NOQA" in report
        assert "stale suppression" in report


class TestSarif:
    def test_sarif_payload_validates_and_carries_findings(self, tmp_path):
        project = make_project(tmp_path, {"src/m.py": FIRING})
        rules = [RA006Determinism()]
        result = run_rules(project, rules)
        payload = json.loads(sarif_report(result, rules))
        assert validate_sarif(payload) is None
        run = payload["runs"][0]
        (sarif_result,) = run["results"]
        assert sarif_result["ruleId"] == "RA006"
        assert sarif_result["partialFingerprints"]["reproAnalyze/v2"]
        location = sarif_result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/m.py"
        assert location["region"]["startLine"] == 5

    def test_validator_rejects_malformed_payloads(self):
        assert validate_sarif({}) is not None
        assert validate_sarif({"version": "2.1.0", "runs": []}) is not None
        bad_rule = {
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "x", "rules": [{"id": "RA001"}]}},
                "results": [{
                    "ruleId": "RA999",
                    "message": {"text": "m"},
                    "locations": [],
                }],
            }],
        }
        assert validate_sarif(bad_rule) is not None

    def test_main_sarif_format_flag(self, tmp_path, capsys):
        write_files(tmp_path, {"src/m.py": FIRING})
        argv = [
            "--root", str(tmp_path), "--baseline", str(tmp_path / "bl.json"),
            "--format", "sarif", "src",
        ]
        assert analyze_main.main(argv) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert validate_sarif(payload) is None


class TestChangedOnly:
    FILES = {
        "src/clean.py": "x = 1\n",
        "src/dirty.py": FIRING,
        "src/other_dirty.py": FIRING.replace("draw", "roll"),
    }

    def _run(self, tmp_path, paths, capsys):
        write_files(tmp_path, self.FILES)
        argv = [
            "--root", str(tmp_path), "--no-baseline", "--changed-only",
        ] + paths
        code = analyze_main.main(argv)
        return code, capsys.readouterr().out

    def test_empty_changed_set_short_circuits(self, tmp_path, capsys):
        code, out = self._run(tmp_path, ["docs/NOTES.md"], capsys)
        assert code == EXIT_OK
        assert "no analyzable files" in out

    def test_only_changed_file_findings_reported(self, tmp_path, capsys):
        code, out = self._run(tmp_path, ["src/dirty.py", "src/clean.py"], capsys)
        assert code == EXIT_FINDINGS
        assert "src/dirty.py" in out
        assert "src/other_dirty.py" not in out

    def test_clean_changed_file_exits_zero(self, tmp_path, capsys):
        code, out = self._run(tmp_path, ["src/clean.py"], capsys)
        assert code == EXIT_OK

    def test_deleted_files_are_dropped(self, tmp_path, capsys):
        code, out = self._run(tmp_path, ["src/removed.py"], capsys)
        assert code == EXIT_OK
        assert "no analyzable files" in out
