"""Differential tests for the GMRF reconstruction backend.

The sparse conditional-mean solve is checked against the textbook dense
joint-covariance formula, the ML grid search against a brute-force
log-likelihood evaluation, and the refresh against its exponential
update (arXiv:1306.6482 adapted; see docs/PAPER_MAPPING.md).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.backends.gmrf import (
    _ALPHA_GRID,
    _BETA_GRID,
    GMRFBackend,
    GMRFState,
    gmrf_conditional_mean,
)
from repro.baselines.grmc import graph_laplacian
from repro.errors import BackendError, NotFittedError
from repro.traffic.history import SpeedHistory

SLOT_OFFSET = 120
N_SLOTS = 3


@pytest.fixture(scope="module")
def net():
    return repro.grid_network(4, 4)  # 16 roads


@pytest.fixture(scope="module")
def history(net):
    rng = np.random.default_rng(17)
    base = rng.uniform(25.0, 45.0, size=net.n_roads)
    speeds = base[None, None, :] + 4.0 * rng.standard_normal(
        (10, N_SLOTS, net.n_roads)
    )
    return SpeedHistory(np.maximum(speeds, 5.0), net.road_ids, SLOT_OFFSET)


@pytest.fixture(scope="module")
def backend(net):
    return GMRFBackend(net)


@pytest.fixture(scope="module")
def state(backend, history):
    return backend.fit(history)


def _dense_conditional_reference(precision, mu, observed, values):
    """Conditional mean via the dense joint covariance Σ = Q⁻¹."""
    n = mu.shape[0]
    cov = np.linalg.inv(precision.toarray())
    mask = np.zeros(n, dtype=bool)
    mask[observed] = True
    unknown = np.nonzero(~mask)[0]
    field = np.array(mu, copy=True)
    field[observed] = values
    if unknown.size:
        sigma_uo = cov[np.ix_(unknown, observed)]
        sigma_oo = cov[np.ix_(observed, observed)]
        field[unknown] = mu[unknown] + sigma_uo @ np.linalg.solve(
            sigma_oo, values - mu[observed]
        )
    return field


class TestConditionalMean:
    def test_matches_dense_covariance_reference(self, net):
        rng = np.random.default_rng(41)
        n = net.n_roads
        laplacian = graph_laplacian(net).tocsr()
        precision = (0.2 * sp.identity(n, format="csr") + 1.5 * laplacian).tocsr()
        mu = rng.uniform(20.0, 50.0, size=n)
        observed = np.array([1, 4, 9, 12])
        values = mu[observed] + rng.uniform(-6.0, 6.0, size=observed.size)

        got = gmrf_conditional_mean(precision, mu, observed, values)
        ref = _dense_conditional_reference(precision, mu, observed, values)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)

    def test_empty_observation_returns_mean(self, net):
        n = net.n_roads
        precision = sp.identity(n, format="csr")
        mu = np.linspace(20.0, 40.0, n)
        got = gmrf_conditional_mean(
            precision, mu, np.array([], dtype=int), np.array([])
        )
        np.testing.assert_array_equal(got, mu)
        got[0] = -1.0  # must be a copy, not a view of mu
        assert mu[0] != -1.0

    def test_full_observation_returns_values(self, net):
        n = net.n_roads
        precision = sp.identity(n, format="csr")
        mu = np.full(n, 30.0)
        observed = np.arange(n)
        values = np.linspace(10.0, 60.0, n)
        got = gmrf_conditional_mean(precision, mu, observed, values)
        np.testing.assert_array_equal(got, values)

    def test_pull_toward_neighbors(self, net):
        """A slow probe drags its graph neighbors below the prior mean."""
        n = net.n_roads
        laplacian = graph_laplacian(net).tocsr()
        precision = (0.1 * sp.identity(n, format="csr") + 2.0 * laplacian).tocsr()
        mu = np.full(n, 40.0)
        observed = np.array([0])
        values = np.array([10.0])
        field = gmrf_conditional_mean(precision, mu, observed, values)
        neighbors = [j for i, j in net.edges if i == 0]
        neighbors += [i for i, j in net.edges if j == 0]
        assert neighbors
        assert all(field[r] < 40.0 for r in neighbors)


class TestFit:
    def test_selects_grid_maximizer(self, backend, state, history, net):
        assert isinstance(state, GMRFState)
        assert state.alpha in _ALPHA_GRID
        assert state.beta in _BETA_GRID

        # Brute force: exact Gaussian log-likelihood of the centered
        # residuals for every grid pair, via dense slogdet.
        laplacian = graph_laplacian(net).toarray()
        residuals = np.vstack(
            [
                history.slot_samples(slot)
                - history.slot_samples(slot).mean(axis=0)
                for slot in history.global_slots
            ]
        )
        d = residuals.shape[0]
        best, best_ll = None, -np.inf
        for alpha in _ALPHA_GRID:
            for beta in _BETA_GRID:
                q = alpha * np.eye(net.n_roads) + beta * laplacian
                _, log_det = np.linalg.slogdet(q)
                quad = float(np.sum(residuals * (residuals @ q)))
                ll = 0.5 * d * log_det - 0.5 * quad
                if ll > best_ll:
                    best_ll, best = ll, (alpha, beta)
        assert (state.alpha, state.beta) == best

    def test_mu_is_per_slot_mean(self, state, history):
        for slot in history.global_slots:
            np.testing.assert_allclose(
                state.mu[slot],
                history.slot_samples(slot).mean(axis=0),
                rtol=1e-12,
            )

    def test_selection_disabled_keeps_defaults(self, net, history):
        fixed = GMRFBackend(
            net, alpha=0.25, beta=3.0, select_hyperparameters=False
        )
        state = fixed.fit(history)
        assert state.alpha == 0.25
        assert state.beta == 3.0

    def test_wrong_width_history_raises(self, backend):
        bad = SpeedHistory(
            np.full((3, 2, 5), 30.0), [f"r{k}" for k in range(5)], SLOT_OFFSET
        )
        with pytest.raises(BackendError, match="roads"):
            backend.fit(bad)


class TestRefresh:
    def test_exponential_update(self, backend, state):
        slot = SLOT_OFFSET + 1
        rng = np.random.default_rng(53)
        day = rng.uniform(20.0, 45.0, size=backend.network.n_roads)
        lr = 0.25
        refreshed = backend.refresh(state, {slot: day}, learning_rate=lr)
        expected = (1.0 - lr) * state.mu[slot] + lr * day
        np.testing.assert_allclose(refreshed.mu[slot], expected, rtol=1e-12)
        assert refreshed.alpha == state.alpha
        assert refreshed.beta == state.beta
        for other in state.mu:
            if other == slot:
                continue
            np.testing.assert_array_equal(
                refreshed.mu[other], state.mu[other]
            )

    def test_unknown_slot_is_noop(self, backend, state):
        day = np.full(backend.network.n_roads, 33.0)
        assert backend.refresh(state, {999: day}, learning_rate=0.2) is state

    def test_wrong_length_sample_raises(self, backend, state):
        with pytest.raises(BackendError, match="day sample"):
            backend.refresh(
                state, {SLOT_OFFSET: np.full(3, 30.0)}, learning_rate=0.2
            )


class TestEstimate:
    def test_matches_conditional_mean(self, backend, state):
        slot = SLOT_OFFSET
        probes = {2: 22.0, 8: 44.0, 13: 31.0}
        estimate = backend.estimate(state, probes, slot)
        assert estimate.backend == "gmrf"
        observed = np.array(sorted(probes))
        values = np.array([probes[int(r)] for r in observed])
        expected = np.maximum(
            gmrf_conditional_mean(
                backend.precision_matrix(state), state.mu[slot],
                observed, values,
            ),
            0.5,
        )
        np.testing.assert_allclose(estimate.speeds, expected, rtol=1e-10)
        for road, speed in probes.items():
            assert estimate.speeds[road] == pytest.approx(speed)
        assert estimate.provenance["observed"] == 3
        assert estimate.provenance["alpha"] == state.alpha
        assert estimate.provenance["beta"] == state.beta

    def test_no_probes_returns_mean_profile(self, backend, state):
        estimate = backend.estimate(state, {}, SLOT_OFFSET)
        np.testing.assert_allclose(
            estimate.speeds,
            np.maximum(state.mu[SLOT_OFFSET], 0.5),
            rtol=1e-12,
        )

    def test_unfitted_slot_raises(self, backend, state):
        with pytest.raises(NotFittedError, match="not fitted"):
            backend.estimate(state, {0: 30.0}, 7)

    def test_wrong_state_type_raises(self, backend):
        with pytest.raises(BackendError, match="GMRFState"):
            backend.estimate(object(), {0: 30.0}, SLOT_OFFSET)


class TestConstructor:
    @pytest.mark.parametrize("kwargs", [{"alpha": 0.0}, {"beta": -1.0}])
    def test_invalid_hyperparameters(self, net, kwargs):
        with pytest.raises(BackendError):
            GMRFBackend(net, **kwargs)
