"""Property-based invariants of the vectorized GSP kernel.

Hypothesis drives randomized worlds through the fast path and checks the
invariants that no example may break:

* clamping — observed roads are returned bit-identical to their probes;
* fixed point — at convergence every free road satisfies the Eq. 18
  update to within the convergence threshold;
* cache transparency — a warm (cache-hit) run returns arrays equal to a
  cold run, and stale caches are impossible because structure keys are
  content digests of the slot parameters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.gsp import (
    GSPConfig,
    GSPEngine,
    GSPKernel,
    GSPSchedule,
    build_propagation_structure,
    engine_for,
    params_signature,
)
from repro.core.rtf import RTFSlot

SETTINGS = settings(max_examples=25, deadline=None)

world_seeds = st.integers(min_value=0, max_value=10_000)
observed_fractions = st.floats(min_value=0.0, max_value=1.0)
schedules = st.sampled_from([GSPSchedule.BFS_PARALLEL, GSPSchedule.BFS_COLORED])


def make_world(seed: int, fraction: float):
    """A seeded random (network, params, observed) triple."""
    rng = np.random.default_rng(seed)
    topology = seed % 3
    if topology == 0:
        network = repro.grid_network(5 + seed % 4, 5 + seed % 3)
    elif topology == 1:
        network = repro.ring_radial_network(
            40 + 4 * (seed % 4), n_rings=2, n_radials=5 + seed % 3, seed=seed
        )
    else:
        network = repro.scale_free_network(40 + seed % 25, attach=2, seed=seed)
    n = network.n_roads
    params = RTFSlot(
        slot=seed % 288,
        mu=rng.uniform(15.0, 95.0, n),
        sigma=rng.uniform(0.4, 7.0, n),
        rho=rng.uniform(0.0, 0.98, network.n_edges),
    )
    n_observed = int(round(fraction * n))
    roads = rng.choice(n, size=n_observed, replace=False) if n_observed else []
    observed = {
        int(r): float(max(1.0, params.mu[r] * rng.uniform(0.5, 1.4))) for r in roads
    }
    return network, params, observed


class TestKernelInvariants:
    @SETTINGS
    @given(seed=world_seeds, fraction=observed_fractions, schedule=schedules)
    def test_observed_roads_never_overwritten(self, seed, fraction, schedule):
        network, params, observed = make_world(seed, fraction)
        result = GSPEngine(network).propagate(
            params, observed, GSPConfig(schedule=schedule, kernel=GSPKernel.VECTORIZED)
        )
        for road, value in observed.items():
            assert result.speeds[road] == value

    @SETTINGS
    @given(seed=world_seeds, fraction=st.floats(min_value=0.05, max_value=0.6),
           schedule=schedules)
    def test_fixed_point_satisfies_eq18(self, seed, fraction, schedule):
        network, params, observed = make_world(seed, fraction)
        epsilon = 1e-9
        result = GSPEngine(network).propagate(
            params,
            observed,
            GSPConfig(
                epsilon=epsilon,
                max_sweeps=6000,
                schedule=schedule,
                kernel=GSPKernel.VECTORIZED,
            ),
        )
        assert result.converged
        speeds = result.speeds
        for i in range(network.n_roads):
            if i in observed:
                continue
            num = params.mu[i] / params.sigma[i] ** 2
            den = 1.0 / params.sigma[i] ** 2
            for j in network.neighbors(i):
                var = params.pairwise_sigma(network, i, j) ** 2
                num += (speeds[j] + params.mu[i] - params.mu[j]) / var
                den += 1.0 / var
            # Eq. 18 residual: the converged value is its own update.
            assert abs(speeds[i] - num / den) < 10 * epsilon

    @SETTINGS
    @given(seed=world_seeds, fraction=observed_fractions, schedule=schedules)
    def test_cache_hit_equals_cold_run(self, seed, fraction, schedule):
        network, params, observed = make_world(seed, fraction)
        config = GSPConfig(schedule=schedule, kernel=GSPKernel.VECTORIZED)
        warm_engine = GSPEngine(network)
        cold = warm_engine.propagate(params, observed, config)
        warm = warm_engine.propagate(params, observed, config)
        fresh = GSPEngine(network).propagate(params, observed, config)
        if observed and len(observed) < network.n_roads:
            assert warm.structure_cache_hit and warm.schedule_cache_hit
        assert np.array_equal(warm.speeds, cold.speeds)
        assert np.array_equal(warm.speeds, fresh.speeds)
        assert warm.sweeps == cold.sweeps


class TestCacheInvalidation:
    """Acceptance criterion: caches invalidate on network/parameter change."""

    def world(self):
        return make_world(seed=42, fraction=0.2)

    def test_changed_slot_parameters_recompile_structure(self):
        network, params, observed = self.world()
        engine = GSPEngine(network)
        config = GSPConfig(
            schedule=GSPSchedule.BFS_PARALLEL, kernel=GSPKernel.VECTORIZED
        )
        engine.propagate(params, observed, config)
        shifted = RTFSlot(
            slot=params.slot,
            mu=params.mu + 5.0,
            sigma=params.sigma,
            rho=params.rho,
        )
        assert params_signature(shifted) != params_signature(params)
        result = engine.propagate(shifted, observed, config)
        # New parameters miss the structure cache but reuse the schedule
        # (layers depend on topology + R^c only).
        assert not result.structure_cache_hit
        assert result.schedule_cache_hit
        fresh = GSPEngine(network).propagate(shifted, observed, config)
        assert np.array_equal(result.speeds, fresh.speeds)
        assert engine.stats.structure_misses == 2
        assert engine.stats.schedule_misses == 1

    def test_changed_observed_set_recompiles_schedule(self):
        network, params, observed = self.world()
        engine = GSPEngine(network)
        config = GSPConfig(
            schedule=GSPSchedule.BFS_COLORED, kernel=GSPKernel.VECTORIZED
        )
        engine.propagate(params, observed, config)
        smaller = dict(list(observed.items())[:-1])
        result = engine.propagate(params, smaller, config)
        assert result.structure_cache_hit
        assert not result.schedule_cache_hit
        fresh = GSPEngine(network).propagate(params, smaller, config)
        assert np.array_equal(result.speeds, fresh.speeds)

    def test_changed_network_uses_distinct_engine(self):
        network, params, observed = self.world()
        first = engine_for(network)
        assert engine_for(network) is first
        other_network = repro.grid_network(4, 4)
        assert engine_for(other_network) is not first

    def test_mismatched_parameters_rejected(self):
        network, params, observed = self.world()
        other_network = repro.grid_network(3, 3)
        engine = GSPEngine(other_network)
        with pytest.raises(repro.ModelError):
            engine.propagate(params, observed)

    def test_structure_lru_evicts_oldest(self):
        network, params, observed = self.world()
        engine = GSPEngine(network, max_structures=2)
        config = GSPConfig(
            schedule=GSPSchedule.BFS_PARALLEL, kernel=GSPKernel.VECTORIZED
        )
        variants = [
            RTFSlot(params.slot, params.mu + k, params.sigma, params.rho)
            for k in range(3)
        ]
        for variant in variants:
            engine.propagate(variant, observed, config)
        # The first variant was evicted: running it again is a miss.
        result = engine.propagate(variants[0], observed, config)
        assert not result.structure_cache_hit
        assert engine.stats.structure_misses == 4

    def test_structure_matches_slot_export(self):
        network, params, _ = self.world()
        structure = build_propagation_structure(network, params)
        prior_precision, prior_pull, edge_precision, edge_mu = (
            params.propagation_arrays(network)
        )
        n = network.n_roads
        assert structure.indptr.shape == (n + 1,)
        assert structure.indices.shape == (2 * network.n_edges,)
        # Row i's slots hold exactly its neighbours, with the precision
        # and folded pull of the matching edges.
        for i in range(n):
            lo, hi = structure.indptr[i], structure.indptr[i + 1]
            assert sorted(structure.indices[lo:hi]) == sorted(network.neighbors(i))
            expected_denom = prior_precision[i]
            expected_pull = prior_pull[i]
            for j in network.neighbors(i):
                w = edge_precision[network.edge_id(i, int(j))]
                expected_denom += w
                expected_pull += w * (params.mu[i] - params.mu[j])
            assert structure.denom[i] == pytest.approx(expected_denom, rel=1e-12)
            assert structure.const_pull[i] == pytest.approx(expected_pull, rel=1e-12)
