"""Unit tests for the paired bootstrap significance test."""

import numpy as np
import pytest

import repro
from repro.errors import ExperimentError
from repro.eval.significance import paired_bootstrap


class TestPairedBootstrap:
    def test_clear_winner_significant(self, rng):
        truths = rng.uniform(40, 80, 300)
        good = truths * (1 + rng.normal(0, 0.02, 300))
        bad = truths * (1 + rng.normal(0, 0.3, 300))
        result = paired_bootstrap(good, bad, truths, seed=1)
        assert result.mean_difference < 0
        assert result.significant
        assert result.p_value < 0.05

    def test_identical_estimators_not_significant(self, rng):
        truths = rng.uniform(40, 80, 200)
        estimates = truths * (1 + rng.normal(0, 0.1, 200))
        result = paired_bootstrap(estimates, estimates.copy(), truths, seed=2)
        assert result.mean_difference == pytest.approx(0.0)
        assert not result.significant

    def test_ci_contains_mean(self, rng):
        truths = rng.uniform(40, 80, 150)
        a = truths * (1 + rng.normal(0, 0.05, 150))
        b = truths * (1 + rng.normal(0, 0.08, 150))
        result = paired_bootstrap(a, b, truths, seed=3)
        assert result.ci_low <= result.mean_difference <= result.ci_high

    def test_counts_recorded(self, rng):
        truths = rng.uniform(40, 80, 50)
        result = paired_bootstrap(truths, truths, truths, n_resamples=100, seed=4)
        assert result.n_cases == 50
        assert result.n_resamples == 100

    def test_validation(self, rng):
        truths = rng.uniform(40, 80, 20)
        with pytest.raises(ExperimentError):
            paired_bootstrap(truths, truths, truths, n_resamples=5)
        with pytest.raises(ExperimentError):
            paired_bootstrap(truths, truths, truths, confidence=1.5)

    def test_gsp_vs_per_on_real_pipeline(self, tiny_dataset, tiny_system):
        """Integration: quantify GSP vs Per over the test days."""
        gsp_all, per_all, truth_all = [], [], []
        params = tiny_system.model.slot(tiny_dataset.slot)
        for day in range(tiny_dataset.test_history.n_days):
            market = repro.CrowdMarket(
                tiny_dataset.network, tiny_dataset.pool, tiny_dataset.cost_model,
                rng=np.random.default_rng(day),
            )
            truth = repro.truth_oracle_for(
                tiny_dataset.test_history, day, tiny_dataset.slot
            )
            result = tiny_system.answer_query(
                tiny_dataset.queried, tiny_dataset.slot, budget=30,
                market=market, truth=truth,
            )
            gsp_all.append(result.estimates_kmh)
            per_all.append(params.mu[list(tiny_dataset.queried)])
            truth_all.append(np.array([truth(q) for q in tiny_dataset.queried]))
        result = paired_bootstrap(
            np.concatenate(gsp_all),
            np.concatenate(per_all),
            np.concatenate(truth_all),
            seed=5,
        )
        # GSP's mean error is lower (may or may not be significant on
        # this tiny instance, but the direction must hold).
        assert result.mean_difference < 0.01
