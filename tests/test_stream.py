"""Unit and fault-injection tests for the streaming ingestion layer.

The adapter is the stream's exception boundary: raw feed garbage —
corrupt JSONL, missing fields, unknown roads, bad speeds, off-grid
slots, empty snapshots — must become *counted drops* (default) or a
typed :class:`FeedError` (strict), never a raw ``KeyError`` or
``ValueError`` (the contract ``tests/test_robustness.py`` enforces for
the crowd layer).  Behind the boundary, the ObservationLog and
StreamRefresher tests cover merge/dedup/late semantics, drain,
backpressure, and publisher-error propagation.
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.pipeline import CrowdRTSE
from repro.core.rtf import RTFModel, RTFSlot
from repro.core.store import ModelStore
from repro.errors import FeedError, ReproError, StreamError
from repro.stream import (
    DROP_REASONS,
    FeedAdapter,
    ObservationLog,
    ProbeMessage,
    StreamConfig,
    StreamRefresher,
    messages_from_trajectories,
    save_feed,
    slot_end_ts,
    slot_start_ts,
    synthesize_day_feed,
)
from repro.traffic.trajectories import TrajectoryGenerator


def _msg(road, slot=0, day=0, speed=50.0, ts=None, msg_id=None):
    if ts is None:
        ts = slot_start_ts(day, slot) + 10.0
    if msg_id is None:
        msg_id = f"r{road}.d{day}.t{slot}@{ts:.3f}"
    return ProbeMessage(
        road=road, day=day, slot=slot, speed_kmh=speed, ts=ts, msg_id=msg_id
    )


def _line(**overrides):
    payload = {"road": 0, "slot": 0, "speed_kmh": 42.0, "ts": 10.0}
    payload.update(overrides)
    return json.dumps({k: v for k, v in payload.items() if v is not ...})


def _flat_slot(net, slot, mu=50.0):
    return RTFSlot(
        slot=slot,
        mu=np.full(net.n_roads, float(mu)),
        sigma=np.full(net.n_roads, 3.0),
        rho=np.full(net.n_edges, 0.5),
    )


def _system(net, slots=(0, 1)):
    model = RTFModel(net, [_flat_slot(net, s) for s in slots])
    return CrowdRTSE(net, store=ModelStore(model))


class TestFeedAdapterFaults:
    """Malformed input is counted and dropped — never a raw exception."""

    @pytest.mark.parametrize(
        "line,reason",
        [
            ('{"road": 0, "slot": 0, "speed_', "corrupt"),  # truncated JSON
            ("not json at all", "corrupt"),
            ("[1, 2, 3]", "corrupt"),  # not an object
            ('"just a string"', "corrupt"),
            (_line(ts="soon"), "corrupt"),  # non-numeric ts
            (_line(road=...), "missing_field"),
            (_line(speed_kmh=...), "missing_field"),
            ('{"road": 0}', "missing_field"),
            (_line(road="no-such-road"), "unknown_road"),
            (_line(road=999), "unknown_road"),  # out of range
            (_line(road=-1), "unknown_road"),
            (_line(road=True), "unknown_road"),  # bool is not an index
            (_line(road=1.5), "unknown_road"),
            (_line(road=None), "unknown_road"),
            (_line(speed_kmh=0.0), "invalid_speed"),
            (_line(speed_kmh=-10.0), "invalid_speed"),
            (_line(speed_kmh="fast"), "invalid_speed"),
            ('{"road": 0, "slot": 0, "speed_kmh": NaN, "ts": 1.0}', "invalid_speed"),
            (
                '{"road": 0, "slot": 0, "speed_kmh": Infinity, "ts": 1.0}',
                "invalid_speed",
            ),
            (_line(slot=-1), "invalid_slot"),
            (_line(slot=288), "invalid_slot"),  # off the 5-minute grid
            (_line(slot="noon"), "invalid_slot"),
            (_line(slot=True), "invalid_slot"),
            (_line(day=-1), "invalid_slot"),
            (_line(day="today"), "invalid_slot"),
        ],
    )
    def test_bad_line_counts_one_drop(self, line_net, line, reason):
        adapter = FeedAdapter(line_net)
        messages = adapter.parse_snapshot([line])
        assert messages == []
        assert adapter.dropped[reason] == 1
        assert adapter.total_dropped == 1
        assert adapter.parsed == 0

    def test_strict_mode_raises_typed_error(self, line_net):
        adapter = FeedAdapter(line_net, strict=True)
        with pytest.raises(FeedError) as excinfo:
            adapter.parse_snapshot(["{broken"])
        assert excinfo.value.reason == "corrupt"
        assert isinstance(excinfo.value, ReproError)

    def test_strict_mode_names_the_reason(self, line_net):
        adapter = FeedAdapter(line_net, strict=True)
        with pytest.raises(FeedError) as excinfo:
            adapter.parse_snapshot([_line(road=999)], origin="probe.jsonl")
        assert excinfo.value.reason == "unknown_road"
        assert "probe.jsonl:1" in str(excinfo.value)

    def test_empty_snapshot_is_counted(self, line_net):
        adapter = FeedAdapter(line_net)
        assert adapter.parse_snapshot([]) == []
        assert adapter.parse_snapshot(["", "   ", "# comment only"]) == []
        assert adapter.dropped["empty_snapshot"] == 2
        with pytest.raises(FeedError):
            FeedAdapter(line_net, strict=True).parse_snapshot([])

    def test_bad_lines_do_not_poison_good_ones(self, line_net):
        adapter = FeedAdapter(line_net)
        messages = adapter.parse_snapshot(
            [_line(road=2), "{oops", _line(road=3, speed_kmh=-1.0), _line(road=4)]
        )
        assert [m.road for m in messages] == [2, 4]
        assert adapter.parsed == 2
        assert adapter.total_dropped == 2

    def test_drops_are_exported_as_metrics(self, line_net):
        obs.configure(metrics=True)
        try:
            obs.get_metrics().clear()
            adapter = FeedAdapter(line_net)
            adapter.parse_snapshot(["{oops", _line(road=999)])
            metrics = obs.get_metrics()
            assert metrics.counter("stream.dropped", {"reason": "corrupt"}).value == 1
            assert (
                metrics.counter("stream.dropped", {"reason": "unknown_road"}).value
                == 1
            )
            assert metrics.counter("stream.snapshots").value == 1
        finally:
            obs.disable_all()
            obs.get_metrics().clear()

    def test_every_drop_reason_is_catalogued(self, line_net):
        adapter = FeedAdapter(line_net)
        assert set(adapter.dropped) == set(DROP_REASONS)


class TestFeedAdapterParsing:
    def test_string_road_ids_resolve(self, line_net):
        name = line_net.road_ids[3]
        adapter = FeedAdapter(line_net)
        (message,) = adapter.parse_snapshot([_line(road=name)])
        assert message.road == 3

    def test_default_msg_id_dedups_exact_replays(self, line_net):
        adapter = FeedAdapter(line_net)
        line = _line(road=1, ts=12.5)
        first = adapter.parse_snapshot([line])
        second = adapter.parse_snapshot([line])
        assert first[0].msg_id == second[0].msg_id
        log = ObservationLog(line_net.n_roads)
        log.ingest(first)
        result = log.ingest(second)
        assert result.duplicates == 1 and result.accepted == 0

    def test_round_trip_through_feed_file(self, line_net, tmp_path):
        snapshots = [
            [_msg(0, ts=5.0), _msg(1, ts=20.0)],
            [_msg(1, ts=20.0), _msg(2, ts=40.0)],
        ]
        path = save_feed(snapshots, tmp_path / "feed.jsonl")
        adapter = FeedAdapter(line_net)
        parsed = adapter.parse_feed_file(path)
        assert parsed == snapshots
        assert adapter.total_dropped == 0

    def test_file_without_delimiters_is_one_snapshot(self, line_net, tmp_path):
        path = tmp_path / "flat.jsonl"
        path.write_text(_line(road=0) + "\n" + _line(road=1) + "\n")
        parsed = FeedAdapter(line_net).parse_feed_file(path)
        assert len(parsed) == 1 and len(parsed[0]) == 2


class TestObservationLog:
    def test_aggregate_is_mean_per_road(self, line_net):
        log = ObservationLog(line_net.n_roads)
        log.ingest(
            [
                _msg(0, speed=40.0, msg_id="a"),
                _msg(0, speed=60.0, msg_id="b"),
                _msg(1, speed=30.0, msg_id="c"),
            ]
        )
        assert log.observations(0, 0) == {0: 50.0, 1: 30.0}

    def test_reingest_is_idempotent(self, line_net):
        log = ObservationLog(line_net.n_roads)
        batch = [_msg(0, msg_id="a"), _msg(1, msg_id="b")]
        log.ingest(batch)
        before = log.observations(0, 0)
        result = log.ingest(batch)
        assert result.accepted == 0 and result.duplicates == 2
        assert log.observations(0, 0) == before

    def test_watermark_tracks_event_time_high_water(self, line_net):
        log = ObservationLog(line_net.n_roads, lateness_s=math.inf)
        assert log.watermark == -math.inf
        log.ingest([_msg(0, ts=100.0)])
        log.ingest([_msg(1, ts=50.0)])  # out of order: no regression
        assert log.watermark == 100.0

    def test_late_messages_are_dropped_after_horizon(self, line_net):
        log = ObservationLog(line_net.n_roads, lateness_s=30.0)
        # Advance the watermark past slot (0, 0)'s end + horizon.
        log.ingest([_msg(0, slot=1, ts=slot_end_ts(0, 0) + 30.0)])
        result = log.ingest([_msg(1, slot=0, ts=slot_start_ts(0, 0) + 5.0)])
        assert result.late == 1 and result.accepted == 0
        assert log.late == 1
        assert log.observations(0, 0) == {}

    def test_straggler_within_horizon_is_merged(self, line_net):
        log = ObservationLog(line_net.n_roads, lateness_s=120.0)
        log.ingest([_msg(0, slot=1, ts=slot_end_ts(0, 0) + 60.0)])
        result = log.ingest([_msg(1, slot=0, ts=slot_start_ts(0, 0) + 5.0)])
        assert result.accepted == 1
        assert 1 in log.observations(0, 0)

    def test_lateness_decided_against_previous_batch_watermark(self, line_net):
        # A batch that both advances the watermark far ahead and carries
        # an old reading still merges the old reading: lateness uses the
        # watermark as of the previous batch, so batches are internally
        # order-insensitive.
        log = ObservationLog(line_net.n_roads, lateness_s=0.0)
        result = log.ingest(
            [
                _msg(0, slot=3, ts=slot_start_ts(0, 3) + 1.0),
                _msg(1, slot=0, ts=slot_start_ts(0, 0) + 1.0),
            ]
        )
        assert result.accepted == 2 and result.late == 0
        # ... but the *next* batch sees the raised watermark.
        late = log.ingest([_msg(2, slot=0, ts=slot_start_ts(0, 0) + 2.0)])
        assert late.late == 1

    def test_closable_lists_passed_slots_oldest_first(self, line_net):
        log = ObservationLog(line_net.n_roads, lateness_s=60.0)
        log.ingest([_msg(0, slot=0), _msg(0, slot=1)])
        # Watermark is slot 1's start + 10s: inside slot 0's horizon.
        assert log.closable() == []
        log.ingest([_msg(0, slot=3, ts=slot_start_ts(0, 3) + 1.0)])
        assert log.closable() == [(0, 0), (0, 1)]

    def test_close_slot_pops_the_bucket(self, line_net):
        log = ObservationLog(line_net.n_roads)
        log.ingest([_msg(2, speed=33.0)])
        assert log.close_slot((0, 0)) == {2: 33.0}
        assert log.open_slots() == []
        with pytest.raises(StreamError):
            log.close_slot((0, 0))

    def test_out_of_range_road_is_a_contract_violation(self, line_net):
        log = ObservationLog(line_net.n_roads)
        with pytest.raises(StreamError, match="adapter"):
            log.ingest([_msg(line_net.n_roads)])

    def test_constructor_validation(self):
        with pytest.raises(StreamError):
            ObservationLog(0)
        with pytest.raises(StreamError):
            ObservationLog(4, lateness_s=-1.0)
        with pytest.raises(StreamError):
            ObservationLog(4, lateness_s=math.nan)


class TestStreamConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"learning_rate": 1.0},
            {"max_pending": 0},
            {"max_slots_per_publish": 0},
            {"min_observed": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(StreamError):
            StreamConfig(**kwargs)


class TestStreamRefresher:
    def test_sync_end_to_end_publishes_closed_slots(self, line_net):
        system = _system(line_net, slots=(0, 1))
        config = StreamConfig(
            lateness_s=0.0, learning_rate=0.5, async_publish=False
        )
        with StreamRefresher(system, config) as refresher:
            refresher.ingest([_msg(0, slot=0, speed=70.0, msg_id="a")])
            # Advancing past slot 0 closes and publishes it inline.
            refresher.ingest([_msg(0, slot=1, ts=slot_start_ts(0, 1) + 1.0)])
            assert system.store.version == 2
            assert system.store.current().slot(0).mu[0] == pytest.approx(60.0)
        # Context exit drains the trailing open slot 1.
        assert system.store.version == 3
        assert refresher.stats.published_slots == 2

    def test_drain_flushes_open_slots_without_closing(self, line_net):
        system = _system(line_net)
        refresher = StreamRefresher(
            system, StreamConfig(async_publish=False, learning_rate=0.5)
        )
        refresher.ingest([_msg(0, slot=0, speed=70.0)])
        assert system.store.version == 1
        refresher.drain()
        assert system.store.version == 2
        # Still open for business after a drain.
        refresher.ingest([_msg(1, slot=1, ts=slot_start_ts(0, 1) + 1.0)])
        refresher.close()
        assert system.store.version == 3

    def test_publish_lag_is_event_time(self, line_net):
        system = _system(line_net)
        config = StreamConfig(
            lateness_s=60.0, learning_rate=0.5, async_publish=False
        )
        with StreamRefresher(system, config) as refresher:
            refresher.ingest([_msg(0, slot=0, ts=10.0)])
            close_ts = slot_end_ts(0, 0) + 61.0
            refresher.ingest([_msg(0, slot=1, ts=close_ts)])
            # Lag = watermark at publish minus the slot's end.
            assert refresher.stats.last_publish_lag_s == pytest.approx(61.0)
            assert refresher.stats.max_publish_lag_s == pytest.approx(61.0)

    def test_unfitted_slot_is_counted_not_published(self, line_net):
        from repro import errors

        errors.reset_deprecation_warnings()
        system = _system(line_net, slots=(0,))
        config = StreamConfig(
            lateness_s=0.0, learning_rate=0.5, async_publish=False
        )
        with StreamRefresher(system, config) as refresher:
            with pytest.warns(RuntimeWarning, match="fitted slot range"):
                refresher.ingest(
                    [
                        _msg(0, slot=5, ts=slot_start_ts(0, 5) + 1.0),
                        _msg(0, slot=7, ts=slot_start_ts(0, 7) + 1.0),
                    ]
                )
        # Both the watermark-closed slot 5 and the drained slot 7 count.
        assert refresher.stats.skipped_unfitted == 2
        assert refresher.stats.publishes == 0
        assert system.store.version == 1
        errors.reset_deprecation_warnings()

    def test_low_coverage_slot_is_skipped(self, line_net):
        system = _system(line_net)
        config = StreamConfig(
            lateness_s=0.0, min_observed=3, learning_rate=0.5,
            async_publish=False,
        )
        with StreamRefresher(system, config) as refresher:
            refresher.ingest([_msg(0, slot=0), _msg(1, slot=0)])
        assert refresher.stats.skipped_low_coverage == 1
        assert system.store.version == 1

    def test_backpressure_blocks_the_feed_thread(self, line_net, monkeypatch):
        system = _system(line_net, slots=(0, 1, 2, 3))
        release = threading.Event()
        original = CrowdRTSE.refresh

        def slow_refresh(self, day_samples, learning_rate):
            release.wait(timeout=10.0)
            return original(self, day_samples, learning_rate=learning_rate)

        monkeypatch.setattr(CrowdRTSE, "refresh", slow_refresh)
        config = StreamConfig(
            lateness_s=0.0, max_pending=1, max_slots_per_publish=1,
            learning_rate=0.5,
        )
        refresher = StreamRefresher(system, config)
        done = threading.Event()

        def feed():
            # Slot k closes when slot k+1's first message raises the
            # watermark; with the publisher stalled, the queue fills and
            # ingest must block instead of growing it.
            for slot in range(4):
                refresher.ingest(
                    [_msg(0, slot=slot, ts=slot_start_ts(0, slot) + 1.0)]
                )
            refresher.drain()
            done.set()

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()
        stalled = not done.wait(timeout=0.5)
        release.set()
        assert done.wait(timeout=10.0), "feed thread never unblocked"
        feeder.join(timeout=10.0)
        refresher.close()
        assert stalled, "feed was never throttled by the full queue"
        assert refresher.stats.backpressure_waits >= 1
        assert refresher.stats.max_pending_seen <= config.max_pending
        assert refresher.stats.published_slots == 4

    def test_publisher_failure_surfaces_as_stream_error(self, line_net, monkeypatch):
        system = _system(line_net)

        def broken_refresh(self, day_samples, learning_rate):
            raise repro.ReproError("store exploded")

        monkeypatch.setattr(CrowdRTSE, "refresh", broken_refresh)
        config = StreamConfig(
            lateness_s=0.0, learning_rate=0.5, async_publish=False
        )
        refresher = StreamRefresher(system, config)
        refresher.ingest([_msg(0, slot=0)])
        with pytest.raises(StreamError, match="store exploded"):
            refresher.ingest([_msg(0, slot=2, ts=slot_start_ts(0, 2) + 1.0)])

    def test_async_publisher_failure_reaches_close(self, line_net, monkeypatch):
        system = _system(line_net)

        def broken_refresh(self, day_samples, learning_rate):
            raise repro.ReproError("store exploded")

        monkeypatch.setattr(CrowdRTSE, "refresh", broken_refresh)
        refresher = StreamRefresher(
            system, StreamConfig(lateness_s=0.0, learning_rate=0.5)
        )
        refresher.ingest([_msg(0, slot=0)])
        refresher.ingest([_msg(0, slot=2, ts=slot_start_ts(0, 2) + 1.0)])
        with pytest.raises(StreamError, match="store exploded"):
            refresher.close()
        # close() stays idempotent: the stored error is re-raised.
        with pytest.raises(StreamError, match="store exploded"):
            refresher.close()

    def test_ingest_after_close_is_refused(self, line_net):
        system = _system(line_net)
        refresher = StreamRefresher(system, StreamConfig(async_publish=False))
        refresher.close()
        with pytest.raises(StreamError, match="closed"):
            refresher.ingest([_msg(0)])
        with pytest.raises(StreamError, match="closed"):
            refresher.drain()


class TestSynth:
    def test_feed_is_deterministic_under_seed(self, tiny_dataset):
        kwargs = dict(slots=[tiny_dataset.slot], coverage=0.3, seed=9)
        first = synthesize_day_feed(tiny_dataset.test_history, 0, **kwargs)
        second = synthesize_day_feed(tiny_dataset.test_history, 0, **kwargs)
        assert first == second
        assert sum(len(s) for s in first) > 0

    def test_overlap_duplicates_dedup_to_distinct_ids(self, tiny_dataset):
        feed = synthesize_day_feed(
            tiny_dataset.test_history,
            0,
            slots=[tiny_dataset.slot],
            coverage=0.5,
            overlap_fraction=0.5,
            seed=3,
        )
        flat = [m for snapshot in feed for m in snapshot]
        distinct = {m.msg_id for m in flat}
        assert len(flat) > len(distinct), "overlap produced no resends"
        log = ObservationLog(
            tiny_dataset.network.n_roads, lateness_s=math.inf
        )
        total = 0
        for snapshot in feed:
            result = log.ingest(snapshot)
            total += result.accepted
        assert total == len(distinct)

    def test_disorder_stays_within_horizon(self, tiny_dataset):
        disorder = 20.0
        feed = synthesize_day_feed(
            tiny_dataset.test_history,
            0,
            slots=[tiny_dataset.slot],
            disorder_s=disorder,
            seed=5,
        )
        flat = [m for snapshot in feed for m in snapshot]
        high = -math.inf
        for message in flat:
            high = max(high, message.ts)
            assert message.ts >= high - 2 * disorder

    def test_validation(self, tiny_dataset):
        history = tiny_dataset.test_history
        with pytest.raises(StreamError):
            synthesize_day_feed(history, 0, coverage=0.0)
        with pytest.raises(StreamError):
            synthesize_day_feed(history, history.n_days)
        with pytest.raises(StreamError):
            synthesize_day_feed(history, 0, max_readings_per_road=0)
        with pytest.raises(StreamError):
            synthesize_day_feed(history, 0, snapshot_every_s=0.0)

    def test_messages_from_trajectories(self, small_world):
        network = small_world["network"]
        history = small_world["history"]
        slot = small_world["slot"]
        generator = TrajectoryGenerator(
            network, history.day(0)[history.local_slot(slot)], seed=21
        )
        trajectories = [
            generator.drive(f"v{k}", start_road=k, duration_s=180.0)
            for k in range(4)
        ]
        messages = messages_from_trajectories(
            network, trajectories, day=0, slot=slot
        )
        assert messages, "no dwell long enough to yield a speed"
        start = slot_start_ts(0, slot)
        for message in messages:
            assert 0 <= message.road < network.n_roads
            assert message.speed_kmh > 0.0
            assert message.ts >= start
        # The feed boundary accepts its own synthesis.
        log = ObservationLog(network.n_roads, lateness_s=math.inf)
        result = log.ingest(messages)
        assert result.accepted == len(messages)
