"""Tests for the admin endpoint and flight recorder under serving load.

The admin server binds to port 0 (an OS-assigned free port) so tests
never collide with a real deployment.  The hot-refresh race test
hammers ``/healthz`` and ``/metrics`` from client threads while the
model store republishes snapshots — every response must be a clean
200/503 with a parseable body, never a 500.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro import cli
from repro.errors import InternalError
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry, parse_prometheus_text
from repro.obs.export import validate_flight_record
from repro.obs.health import AdminServer, HealthMonitor
from repro.obs import health as obs_health
from repro.serve import QueryService, ServeConfig, ServeRequest


def _get(url: str, timeout: float = 5.0):
    """``(status, body_text)`` for a GET, treating HTTP errors as data."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


@pytest.fixture()
def monitor():
    registry = MetricsRegistry(enabled=True)
    mon = HealthMonitor(registry=registry, interval_s=0.05)
    yield mon
    mon.close()


@pytest.fixture()
def admin(monitor):
    server = AdminServer(monitor, port=0, registry=monitor.registry)
    server.start()
    yield server
    server.close()


class TestAdminEndpoint:
    def test_healthz_and_metrics_and_index(self, monitor, admin):
        monitor.registry.counter("serve.completed", {"outcome": "ok"}).inc(3)
        monitor.tick()

        status, body = _get(admin.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert isinstance(payload["results"], list)

        status, body = _get(admin.url + "/metrics")
        assert status == 200
        parsed = parse_prometheus_text(body)
        assert "serve_completed_total" in parsed

        status, body = _get(admin.url + "/")
        assert status == 200
        assert "/flightrecorder" in json.loads(body)["routes"]

        status, _ = _get(admin.url + "/nope")
        assert status == 404

    def test_flightrecorder_endpoint_is_parseable(self, monitor, admin):
        monitor.tick()
        status, body = _get(admin.url + "/flightrecorder")
        assert status == 200
        document = json.loads(body)
        validate_flight_record(document)
        assert document["trigger"] == "endpoint"

    def test_healthz_reports_503_when_failing(self):
        registry = MetricsRegistry(enabled=True)
        slo = obs_health.SLO(
            name="serve.latency.p99",
            kind="quantile",
            metric="serve.latency_seconds",
            threshold=0.25,
            fast_window_s=0.03,
            slow_window_s=0.03,
        )
        monitor = HealthMonitor(registry=registry, slos=[slo])
        hist = registry.histogram("serve.latency_seconds", DEFAULT_TIME_BUCKETS)
        monitor.tick()
        for _ in range(10):
            hist.observe(2.0)
        time.sleep(0.05)
        monitor.tick()
        with AdminServer(monitor, port=0, registry=registry) as server:
            status, body = _get(server.url + "/healthz")
        monitor.close()
        assert status == 503
        assert json.loads(body)["status"] == "failing"


class TestHotRefreshRace:
    def test_endpoints_stay_consistent_during_refresh(
        self, tiny_system, monitor, admin
    ):
        """No 500s and parseable bodies while the store republishes."""
        monitor.set_info("store", tiny_system.store.health_info)
        monitor.start()
        store = tiny_system.store
        stop = threading.Event()
        failures = []

        def client() -> None:
            while not stop.is_set():
                for path in ("/healthz", "/metrics"):
                    status, body = _get(admin.url + path)
                    if status not in (200, 503):
                        failures.append((path, status, body[:200]))
                        continue
                    try:
                        if path == "/healthz":
                            json.loads(body)
                        else:
                            parse_prometheus_text(body)
                    except Exception as exc:  # pragma: no cover - fail path
                        failures.append((path, status, repr(exc)))

        clients = [threading.Thread(target=client) for _ in range(3)]
        for thread in clients:
            thread.start()
        try:
            base_version = store.version
            current = store.current()
            slots = [current.slot(s) for s in current.slots]
            for _ in range(20):
                store.publish(slots)
        finally:
            stop.set()
            for thread in clients:
                thread.join(timeout=10)
        assert not failures, failures[:3]
        assert store.version >= base_version + 20
        # The monitor's info providers see the refreshed store (the
        # cached report can lag a sampler interval, so force a tick).
        report = monitor.tick()
        assert report.info["store"]["store_version"] == store.version


class TestInternalErrorBlackBox:
    def test_worker_internal_error_triggers_auto_dump(
        self, tiny_system, tiny_dataset, monkeypatch
    ):
        registry = MetricsRegistry(enabled=True)
        monitor = HealthMonitor(registry=registry, min_dump_interval_s=0.0)
        obs_health.install(monitor)

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic worker fault")

        monkeypatch.setattr(tiny_system, "answer_query", boom)
        market = repro.CrowdMarket(
            tiny_dataset.network,
            tiny_dataset.pool,
            tiny_dataset.cost_model,
            rng=np.random.default_rng(7),
        )
        truth = repro.truth_oracle_for(
            tiny_dataset.test_history, 0, tiny_dataset.slot
        )
        try:
            with QueryService(
                tiny_system,
                market=market,
                truth=truth,
                config=ServeConfig(num_workers=1),
            ) as service:
                ticket = service.submit(
                    ServeRequest(
                        queried=(0, 1), slot=tiny_dataset.slot, budget=5
                    )
                )
                with pytest.raises(InternalError):
                    ticket.result(timeout=30)
        finally:
            obs_health.uninstall()
            monitor.close()

        document = monitor.recorder.last_dump
        assert document is not None
        validate_flight_record(document)
        assert document["trigger"] == "auto:serve"
        # The black box is serialisable end to end.
        round_tripped = json.loads(json.dumps(document))
        assert round_tripped["schema"] == document["schema"]
        errors = [
            event["attrs"].get("error")
            for event in document["events"]
            if event["level"] == "error"
        ]
        assert "InternalError" in errors


class TestReproTopCLI:
    def test_top_renders_one_frame(self, monitor, admin, capsys):
        monitor.registry.counter("serve.completed", {"outcome": "ok"}).inc(2)
        monitor.tick()
        code = cli.main(
            [
                "top",
                "--url",
                admin.url,
                "--iterations",
                "1",
                "--no-clear",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "status" in out.lower()
        assert "slo" in out.lower()

    def test_top_unreachable_url_exits_nonzero(self, capsys):
        code = cli.main(
            [
                "top",
                "--url",
                "http://127.0.0.1:9",  # discard port: nothing listens
                "--iterations",
                "1",
                "--no-clear",
            ]
        )
        assert code != 0
