"""Unit tests for repro.traffic.incidents."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.traffic.incidents import Incident, IncidentModel


class TestIncidentValidation:
    def test_valid(self):
        inc = Incident(road_index=0, day=0, start_slot=0, duration_slots=3, severity=0.5)
        assert inc.severity == 0.5

    def test_bad_duration(self):
        with pytest.raises(DatasetError):
            Incident(0, 0, 0, 0, 0.5)

    def test_bad_severity(self):
        with pytest.raises(DatasetError):
            Incident(0, 0, 0, 3, 1.5)
        with pytest.raises(DatasetError):
            Incident(0, 0, 0, 3, 0.0)

    def test_bad_spread(self):
        with pytest.raises(DatasetError):
            Incident(0, 0, 0, 3, 0.5, spread_hops=-1)
        with pytest.raises(DatasetError):
            Incident(0, 0, 0, 3, 0.5, spatial_decay=1.5)


class TestIncidentModel:
    def test_rate_zero_no_incidents(self, line_net, rng):
        model = IncidentModel(line_net, rate_per_day=0.0)
        assert model.sample(5, 10, rng) == []

    def test_sampled_fields_in_range(self, line_net, rng):
        model = IncidentModel(line_net, rate_per_day=3.0)
        incidents = model.sample(4, 12, rng)
        assert incidents  # expected ~12
        for inc in incidents:
            assert 0 <= inc.road_index < line_net.n_roads
            assert 0 <= inc.day < 4
            assert 0 <= inc.start_slot < 12
            assert 0.3 <= inc.severity <= 0.7

    def test_bad_config(self, line_net):
        with pytest.raises(DatasetError):
            IncidentModel(line_net, rate_per_day=-1)
        with pytest.raises(DatasetError):
            IncidentModel(line_net, severity_range=(0.9, 0.5))
        with pytest.raises(DatasetError):
            IncidentModel(line_net, duration_range_slots=(5, 2))


class TestSlowdownField:
    def test_no_incidents_identity(self, line_net):
        model = IncidentModel(line_net, rate_per_day=0.0)
        field = model.slowdown_field([], 2, 4)
        assert np.allclose(field, 1.0)

    def test_epicentre_slowest(self, line_net):
        model = IncidentModel(line_net, rate_per_day=0.0)
        inc = Incident(road_index=2, day=0, start_slot=1, duration_slots=6, severity=0.6)
        field = model.slowdown_field([inc], 1, 8)
        during = field[0, 1:7, :]
        epicentre_min = during[:, 2].min()
        neighbour_min = during[:, 1].min()
        assert epicentre_min < neighbour_min < 1.0

    def test_decay_with_hops(self, line_net):
        model = IncidentModel(line_net, rate_per_day=0.0)
        inc = Incident(
            road_index=0, day=0, start_slot=0, duration_slots=6, severity=0.6,
            spread_hops=2, spatial_decay=0.5,
        )
        field = model.slowdown_field([inc], 1, 6)
        # Road 3 is 3 hops away: untouched.
        assert np.allclose(field[0, :, 3], 1.0)
        assert field[0, :, 1].min() < 1.0
        assert field[0, :, 2].min() < 1.0
        assert field[0, :, 1].min() < field[0, :, 2].min()

    def test_factors_in_unit_interval(self, grid_net, rng):
        model = IncidentModel(grid_net, rate_per_day=5.0)
        incidents = model.sample(3, 10, rng)
        field = model.slowdown_field(incidents, 3, 10)
        assert np.all(field > 0.0)
        assert np.all(field <= 1.0)

    def test_day_out_of_window_rejected(self, line_net):
        model = IncidentModel(line_net, rate_per_day=0.0)
        inc = Incident(road_index=0, day=5, start_slot=0, duration_slots=2, severity=0.5)
        with pytest.raises(DatasetError, match="outside window"):
            model.slowdown_field([inc], 2, 4)

    def test_overlapping_incidents_multiply(self, line_net):
        model = IncidentModel(line_net, rate_per_day=0.0)
        one = Incident(road_index=2, day=0, start_slot=0, duration_slots=6, severity=0.4)
        field_one = model.slowdown_field([one], 1, 6)
        field_two = model.slowdown_field([one, one], 1, 6)
        assert field_two[0, :, 2].min() < field_one[0, :, 2].min()
