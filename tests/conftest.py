"""Shared fixtures for the test suite.

Fixtures build the smallest worlds that still exercise the real code
paths: a path graph, a grid, and a simulated history with a fitted RTF
slot.  Session scope keeps the suite fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# The repo root is not on sys.path under `PYTHONPATH=src` runs; the
# analyzer tests import the repo-local `tools` package from it.
_REPO_ROOT = str(Path(__file__).resolve().parents[1])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

import repro
from repro.core.inference import empirical_slot_parameters


@pytest.fixture(scope="session")
def line_net():
    """A 6-road path graph."""
    return repro.line_network(6)


@pytest.fixture(scope="session")
def grid_net():
    """A 5x5 grid (25 roads)."""
    return repro.grid_network(5, 5)


@pytest.fixture(scope="session")
def small_world():
    """A 60-road ring-radial network with profiles and a history.

    Returns:
        dict with keys ``network``, ``profiles``, ``history``, ``slot``,
        ``params`` (empirically fitted RTF slot).
    """
    network = repro.ring_radial_network(60, n_rings=2, n_radials=6, seed=11)
    profiles = repro.random_profiles(network, seed=12)
    config = repro.SimulationConfig(n_days=18, slot_start=90, n_slots=6, seed=13)
    simulator = repro.TrafficSimulator(network, profiles, config)
    history = simulator.simulate()
    slot = 93
    params = empirical_slot_parameters(network, history.slot_samples(slot), slot)
    return {
        "network": network,
        "profiles": profiles,
        "history": history,
        "slot": slot,
        "params": params,
    }


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small semi-synthetic dataset bundle for integration tests."""
    config = repro.SemiSynConfig(
        n_roads=80,
        n_queried=15,
        n_train_days=12,
        n_test_days=4,
        n_slots=6,
        budgets=(10, 20, 30),
        seed=77,
    )
    return repro.build_semisyn(config)


@pytest.fixture(scope="session")
def tiny_system(tiny_dataset):
    """CrowdRTSE fitted on the tiny dataset's query slot."""
    return repro.CrowdRTSE.fit(
        tiny_dataset.network, tiny_dataset.train_history, slots=[tiny_dataset.slot]
    )


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
