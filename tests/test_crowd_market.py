"""Unit tests for repro.crowd.market."""

import numpy as np
import pytest

import repro
from repro.errors import BudgetError, CrowdError, NoWorkersError
from repro.crowd.cost import CostModel
from repro.crowd.market import BudgetLedger, CrowdMarket
from repro.crowd.workers import WorkerPool


@pytest.fixture()
def setup(line_net):
    pool = WorkerPool.cover_all_roads(line_net, workers_per_road=3, seed=1)
    costs = CostModel(line_net, [2, 1, 3, 1, 2, 1])
    market = CrowdMarket(line_net, pool, costs, rng=np.random.default_rng(7))
    truth = lambda road: 40.0 + 5.0 * road  # noqa: E731
    return line_net, pool, costs, market, truth


class TestBudgetLedger:
    def test_charges_accumulate(self):
        ledger = BudgetLedger(10)
        ledger.charge(0, 3)
        ledger.charge(1, 4)
        assert ledger.spent == 7
        assert ledger.remaining == 3
        assert ledger.entries == ((0, 3), (1, 4))

    def test_overcharge_rejected(self):
        ledger = BudgetLedger(5)
        ledger.charge(0, 4)
        with pytest.raises(BudgetError, match="exceeds budget"):
            ledger.charge(1, 2)

    def test_invalid_budget(self):
        with pytest.raises(BudgetError):
            BudgetLedger(0)

    def test_invalid_amount(self):
        with pytest.raises(BudgetError):
            BudgetLedger(5).charge(0, 0)


class TestCrowdMarket:
    def test_candidate_roads(self, setup):
        _, pool, _, market, _ = setup
        assert market.candidate_roads() == pool.roads_with_workers()

    def test_probe_collects_cost_answers(self, setup):
        _, _, costs, market, truth = setup
        probes, receipts = market.probe([0, 2], truth)
        assert set(probes) == {0, 2}
        by_road = {r.road_index: r for r in receipts}
        assert len(by_road[0].answers) == costs.cost_of(0)
        assert len(by_road[2].answers) == costs.cost_of(2)

    def test_probe_values_near_truth(self, setup):
        _, _, _, market, truth = setup
        probes, _ = market.probe([3], truth)
        assert probes[3] == pytest.approx(truth(3), rel=0.25)

    def test_probe_charges_ledger(self, setup):
        _, _, costs, market, truth = setup
        ledger = BudgetLedger(10)
        market.probe([0, 1], truth, ledger)
        assert ledger.spent == costs.cost_of(0) + costs.cost_of(1)

    def test_probe_over_budget_raises(self, setup):
        _, _, _, market, truth = setup
        ledger = BudgetLedger(2)
        with pytest.raises(BudgetError):
            market.probe([0, 2], truth, ledger)

    def test_probe_road_without_workers(self, line_net):
        pool = WorkerPool.on_roads(line_net, [0], workers_per_road=2, seed=2)
        market = CrowdMarket(line_net, pool, CostModel(line_net, [1] * 6))
        with pytest.raises(NoWorkersError):
            market.probe([4], lambda r: 50.0)

    def test_bad_truth_rejected(self, setup):
        _, _, _, market, _ = setup
        with pytest.raises(CrowdError):
            market.probe([0], lambda r: 0.0)

    def test_workers_reused_when_fewer_than_cost(self, line_net):
        pool = WorkerPool.on_roads(line_net, [2], workers_per_road=1, seed=3)
        costs = CostModel(line_net, [1, 1, 4, 1, 1, 1])
        market = CrowdMarket(line_net, pool, costs, rng=np.random.default_rng(4))
        probes, receipts = market.probe([2], lambda r: 50.0)
        assert len(receipts[0].answers) == 4

    def test_more_answers_reduce_error(self, line_net):
        """Aggregating more answers gives a more accurate probe."""
        pool = WorkerPool.cover_all_roads(line_net, workers_per_road=20, seed=5)
        errors = {}
        for cost in (1, 10):
            costs = CostModel(line_net, [cost] * 6)
            trials = []
            for t in range(60):
                market = CrowdMarket(
                    line_net, pool, costs, rng=np.random.default_rng(t)
                )
                probes, _ = market.probe([0], lambda r: 60.0)
                trials.append(abs(probes[0] - 60.0))
            errors[cost] = np.mean(trials)
        assert errors[10] < errors[1]

    def test_receipt_records_truth(self, setup):
        _, _, _, market, truth = setup
        _, receipts = market.probe([1], truth)
        assert receipts[0].true_kmh == pytest.approx(truth(1))
