"""Unit tests for the external CSV history loader."""

import numpy as np
import pytest

import repro
from repro.errors import DatasetError
from repro.datasets.loaders import (
    history_from_csv,
    history_from_records,
    history_to_csv,
)


def make_records(n_days=3, slots=(96, 97), road_ids=("a", "b"), base=40.0):
    records = []
    for day in range(n_days):
        for slot in slots:
            for k, road in enumerate(road_ids):
                records.append((road, day, slot, base + day + slot / 100 + k))
    return records


class TestHistoryFromRecords:
    def test_roundtrip_values(self):
        records = make_records()
        history = history_from_records(records)
        assert history.n_days == 3
        assert history.n_slots == 2
        assert history.n_roads == 2
        assert history.slot_offset == 96
        # Spot-check one cell.
        expected = 40.0 + 2 + 0.97 + 1
        assert history.slot_samples(97)[2, 1] == pytest.approx(expected, abs=1e-3)

    def test_network_ordering(self, line_net):
        road_ids = line_net.road_ids
        records = make_records(road_ids=road_ids)
        history = history_from_records(records, line_net)
        assert history.road_ids == road_ids

    def test_network_coverage_enforced(self, line_net):
        records = make_records(road_ids=("r0", "r1"))  # misses r2..r5
        with pytest.raises(DatasetError, match="missing"):
            history_from_records(records, line_net)

    def test_gap_rejected(self):
        records = make_records()
        records.pop()
        with pytest.raises(DatasetError, match="missing"):
            history_from_records(records)

    def test_duplicate_rejected(self):
        records = make_records()
        records.append(records[0])
        with pytest.raises(DatasetError, match="duplicate"):
            history_from_records(records)

    def test_noncontiguous_slots_rejected(self):
        records = make_records(slots=(96, 98))
        with pytest.raises(DatasetError, match="contiguous"):
            history_from_records(records)

    def test_bad_day_indexing_rejected(self):
        records = [(r, d + 1, s, v) for r, d, s, v in make_records()]
        with pytest.raises(DatasetError, match="day indices"):
            history_from_records(records)

    def test_invalid_speed_rejected(self):
        records = make_records()
        road, day, slot, _ = records[0]
        records[0] = (road, day, slot, -5.0)
        with pytest.raises(DatasetError, match="invalid speed"):
            history_from_records(records)

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            history_from_records([])


class TestCSVRoundtrip:
    def test_write_then_read(self, tmp_path, small_world):
        history = small_world["history"]
        path = tmp_path / "speeds.csv"
        history_to_csv(history, path)
        loaded = history_from_csv(path, small_world["network"])
        assert loaded.n_days == history.n_days
        assert loaded.road_ids == history.road_ids
        assert np.allclose(loaded.values, history.values, atol=1e-2)

    def test_loaded_history_fits_rtf(self, tmp_path, small_world):
        """External data flows straight into the offline stage."""
        history = small_world["history"]
        network = small_world["network"]
        path = tmp_path / "speeds.csv"
        history_to_csv(history, path)
        loaded = history_from_csv(path, network)
        model, diags = repro.fit_rtf(network, loaded, slots=[small_world["slot"]])
        assert diags[small_world["slot"]].converged

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("road,day,slot\nr0,0,0\n")
        with pytest.raises(DatasetError, match="columns"):
            history_from_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("road_id,day,slot,speed_kmh\nr0,zero,0,50\n")
        with pytest.raises(DatasetError, match="malformed"):
            history_from_csv(path)
