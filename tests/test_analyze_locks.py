"""RA001 (lock discipline) and RA002 (lock-order cycles) rule tests."""

from __future__ import annotations

from tests.analyze_util import check
from tools.analyze.rules.ra001_lock_discipline import RA001LockDiscipline
from tools.analyze.rules.ra002_lock_order import RA002LockOrder


class TestRA001:
    def test_seeded_bug_unlocked_mutation_is_caught(self, tmp_path):
        """The acceptance fixture: one attr written on both sides."""
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/worker.py": """
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def locked_inc(self):
                        with self._lock:
                            self.count += 1

                    def unlocked_inc(self):
                        self.count += 1
            """,
        })
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "RA001"
        assert "self.count" in finding.message
        assert "self._lock" in finding.message
        assert finding.line == 14

    def test_clean_class_passes(self, tmp_path):
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/worker.py": """
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0
                        self.queue = []

                    def inc(self):
                        with self._lock:
                            self.count += 1
                            self.queue.append(self.count)

                    def read(self):
                        with self._lock:
                            return self.count
            """,
        })
        assert findings == []

    def test_init_writes_are_exempt(self, tmp_path):
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/worker.py": """
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def inc(self):
                        with self._lock:
                            self.count += 1
            """,
        })
        assert findings == []

    def test_condition_counts_as_the_wrapped_lock(self, tmp_path):
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/queue.py": """
                import threading

                class Q:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._ready = threading.Condition(self._lock)
                        self._items = []

                    def put(self, item):
                        with self._ready:
                            self._items.append(item)

                    def drop_all(self):
                        self._items.clear()
            """,
        })
        assert len(findings) == 1
        assert "_items" in findings[0].message
        assert findings[0].line == 15

    def test_container_mutators_count_as_mutations(self, tmp_path):
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/cache.py": """
                import threading
                from collections import OrderedDict

                class Cache:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._entries = OrderedDict()

                    def get(self, key):
                        with self._lock:
                            self._entries.move_to_end(key)
                            return self._entries[key]

                    def evict(self, key):
                        self._entries.pop(key, None)
            """,
        })
        assert len(findings) == 1
        assert "_entries" in findings[0].message

    def test_nested_functions_are_skipped(self, tmp_path):
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/worker.py": """
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def inc(self):
                        with self._lock:
                            self.count += 1

                    def deferred(self):
                        def later():
                            self.count += 1
                        return later
            """,
        })
        assert findings == []

    def test_class_without_lock_is_ignored(self, tmp_path):
        findings = check(RA001LockDiscipline(), tmp_path, {
            "src/plain.py": """
                class Plain:
                    def __init__(self):
                        self.count = 0

                    def inc(self):
                        self.count += 1
            """,
        })
        assert findings == []


class TestRA002:
    def test_seeded_bug_two_lock_cycle_is_caught(self, tmp_path):
        """The acceptance fixture: opposite acquisition orders."""
        findings = check(RA002LockOrder(), tmp_path, {
            "src/orders.py": """
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def a_then_b():
                    with LOCK_A:
                        with LOCK_B:
                            pass

                def b_then_a():
                    with LOCK_B:
                        with LOCK_A:
                            pass
            """,
        })
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "RA002"
        assert "cycle" in finding.message
        assert "LOCK_A" in finding.message and "LOCK_B" in finding.message

    def test_consistent_order_is_clean(self, tmp_path):
        findings = check(RA002LockOrder(), tmp_path, {
            "src/orders.py": """
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def first():
                    with LOCK_A:
                        with LOCK_B:
                            pass

                def second():
                    with LOCK_A:
                        with LOCK_B:
                            pass
            """,
        })
        assert findings == []

    def test_interprocedural_cycle_across_classes(self, tmp_path):
        findings = check(RA002LockOrder(), tmp_path, {
            "src/pair.py": """
                import threading

                class Left:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def poke(self, right):
                        with self._lock:
                            right.work()

                class Right:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def work(self):
                        with self._lock:
                            pass

                    def poke_back(self, left):
                        with self._lock:
                            left.grind()

                class LeftHelper:
                    pass
            """,
            "src/more.py": """
                class Unrelated:
                    def grind(self):
                        pass
            """,
        })
        # Left holds its lock and calls Right.work (takes Right's lock);
        # Right holds its lock and calls grind — resolved to Unrelated
        # (no lock), so no cycle yet.
        assert findings == []

        findings = check(RA002LockOrder(), tmp_path / "cyc", {
            "src/pair.py": """
                import threading

                class Left:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def solo(self):
                        with self._lock:
                            pass

                    def poke(self, right):
                        with self._lock:
                            right.work()

                class Right:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def work(self):
                        with self._lock:
                            pass

                    def poke_back(self, left):
                        with self._lock:
                            left.solo()
            """,
        })
        assert len(findings) == 1
        assert "cycle" in findings[0].message

    def test_rlock_reentry_is_fine_but_lock_reentry_fires(self, tmp_path):
        source = """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.{factory}()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """
        clean = check(RA002LockOrder(), tmp_path / "r", {
            "src/c.py": source.format(factory="RLock"),
        })
        assert clean == []

        firing = check(RA002LockOrder(), tmp_path / "l", {
            "src/c.py": source.format(factory="Lock"),
        })
        assert len(firing) == 1
        assert "re-acquired" in firing[0].message

    def test_condition_aliases_do_not_self_deadlock_report(self, tmp_path):
        findings = check(RA002LockOrder(), tmp_path, {
            "src/q.py": """
                import threading

                class Q:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._ready = threading.Condition(self._lock)

                    def submit(self):
                        with self._ready:
                            pass

                    def drain(self):
                        with self._lock:
                            pass
            """,
        })
        assert findings == []
