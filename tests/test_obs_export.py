"""Tests for the exporters and validators (repro.obs.export)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    metrics_from_jsonl,
    metrics_to_jsonl,
    parse_prometheus_text,
    read_metrics_json,
    to_prometheus_text,
    validate_chrome_trace,
    validate_metrics_snapshot,
    validate_trace_jsonl,
    write_metrics_json,
)
from repro.obs.export import main as export_main, prometheus_name


@pytest.fixture()
def sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("gsp.propagations", {"schedule": "bfs", "kernel": "vec"}).inc(3)
    registry.counter("crowd.cost_spent").inc(42)
    registry.gauge("crowd.budget_remaining").set(18.0)
    hist = registry.histogram("gsp.sweeps", buckets=(1.0, 5.0, 10.0))
    for value in (1, 4, 6, 20):
        hist.observe(value)
    return registry.snapshot()


class TestPrometheus:
    def test_golden_text(self, sample_snapshot):
        text = to_prometheus_text(sample_snapshot)
        expected = (
            "# TYPE crowd_cost_spent_total counter\n"
            "crowd_cost_spent_total 42\n"
            "# TYPE gsp_propagations_total counter\n"
            'gsp_propagations_total{kernel="vec",schedule="bfs"} 3\n'
            "# TYPE crowd_budget_remaining gauge\n"
            "crowd_budget_remaining 18\n"
            "# TYPE gsp_sweeps histogram\n"
            'gsp_sweeps_bucket{le="1"} 1\n'
            'gsp_sweeps_bucket{le="5"} 2\n'
            'gsp_sweeps_bucket{le="10"} 3\n'
            'gsp_sweeps_bucket{le="+Inf"} 4\n'
            "gsp_sweeps_sum 31\n"
            "gsp_sweeps_count 4\n"
        )
        assert text == expected

    def test_round_trip_recovers_families_and_values(self, sample_snapshot):
        families = parse_prometheus_text(to_prometheus_text(sample_snapshot))
        assert families["crowd_cost_spent_total"]["kind"] == "counter"
        assert families["crowd_cost_spent_total"]["samples"] == {
            "crowd_cost_spent_total": 42.0
        }
        assert families["gsp_sweeps"]["kind"] == "histogram"
        samples = families["gsp_sweeps"]["samples"]
        assert samples['gsp_sweeps_bucket{le="+Inf"}'] == 4.0
        assert samples["gsp_sweeps_count"] == 4.0
        assert samples["gsp_sweeps_sum"] == 31.0
        assert (
            families["gsp_propagations_total"]["samples"][
                'gsp_propagations_total{kernel="vec",schedule="bfs"}'
            ]
            == 3.0
        )

    def test_name_sanitization(self):
        assert prometheus_name("gsp.cache.lookups") == "gsp_cache_lookups"
        assert prometheus_name("ok_name") == "ok_name"

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_unparseable_line_raises(self):
        with pytest.raises(ObservabilityError, match="unparseable"):
            parse_prometheus_text("!!! not prometheus")


class TestMetricsJson:
    def test_jsonl_round_trip_is_lossless(self, sample_snapshot):
        assert metrics_from_jsonl(metrics_to_jsonl(sample_snapshot)) == sample_snapshot

    def test_jsonl_bad_kind_raises(self):
        with pytest.raises(ObservabilityError, match="kind"):
            metrics_from_jsonl('{"kind": "mystery", "name": "x"}')

    def test_file_round_trip_with_schema(self, sample_snapshot, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(sample_snapshot, str(path))
        assert read_metrics_json(str(path)) == sample_snapshot
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.metrics/v1"

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9", "snapshot": {}}')
        with pytest.raises(ObservabilityError, match="repro.metrics/v1"):
            read_metrics_json(str(path))


class TestValidators:
    def test_metrics_validator_accepts_real_snapshot(self, sample_snapshot):
        validate_metrics_snapshot(sample_snapshot)

    def test_metrics_validator_rejects_bad_counts(self, sample_snapshot):
        sample_snapshot["histograms"][0]["counts"].append(99)
        with pytest.raises(ObservabilityError, match="len\\(buckets\\)\\+1"):
            validate_metrics_snapshot(sample_snapshot)

    def test_metrics_validator_rejects_count_mismatch(self, sample_snapshot):
        sample_snapshot["histograms"][0]["count"] = 999
        with pytest.raises(ObservabilityError, match="do not sum"):
            validate_metrics_snapshot(sample_snapshot)

    def test_trace_validator_accepts_real_export(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner") as span:
                span.event("tick", n=1)
        spans = validate_trace_jsonl(tracer.to_jsonl())
        assert {s["name"] for s in spans} == {"outer", "inner"}

    def test_trace_validator_rejects_dangling_parent(self):
        line = json.dumps(
            {
                "type": "span", "span_id": 2, "parent_id": 99, "name": "s",
                "thread": "t", "thread_id": 1, "start_unix": 0.0,
                "wall_s": 0.0, "cpu_s": 0.0, "attrs": {}, "events": [],
            }
        )
        with pytest.raises(ObservabilityError, match="dangling parent_id"):
            validate_trace_jsonl(line)

    def test_trace_validator_rejects_empty(self):
        with pytest.raises(ObservabilityError, match="no spans"):
            validate_trace_jsonl("")

    def test_chrome_validator_accepts_real_export(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s") as span:
            span.event("e")
        events = validate_chrome_trace(tracer.to_chrome_trace())
        assert len(events) == 2

    def test_chrome_validator_rejects_bad_shape(self):
        with pytest.raises(ObservabilityError, match="traceEvents"):
            validate_chrome_trace(["not", "a", "dict"])
        with pytest.raises(ObservabilityError, match="missing dur"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0}]}
            )


class TestCli:
    def test_validate_all_artifacts(self, sample_snapshot, tmp_path, capsys):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        chrome_path = tmp_path / "c.json"
        write_metrics_json(sample_snapshot, str(metrics_path))
        tracer.export_jsonl(str(trace_path))
        tracer.export_chrome_trace(str(chrome_path))
        code = export_main(
            [
                "--validate-metrics", str(metrics_path),
                "--validate-trace", str(trace_path),
                "--validate-chrome", str(chrome_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "valid metrics snapshot (4 series)" in out
        assert "valid trace (1 spans, 1 roots)" in out
        assert "valid chrome trace (1 events)" in out

    def test_invalid_artifact_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert export_main(["--validate-metrics", str(bad)]) == 1
        assert "validation failed" in capsys.readouterr().err


class TestLabelEscaping:
    """Exposition-format escaping of label values (`\\`, `"`, newline)."""

    NASTY = 'he said "hi"\\to a road\nnamed {x="1"}'

    def test_escape_unescape_round_trip(self):
        from repro.obs import escape_label_value, unescape_label_value

        escaped = escape_label_value(self.NASTY)
        assert "\n" not in escaped
        assert unescape_label_value(escaped) == self.NASTY

    def test_escaped_text_round_trips_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("stream.dropped", {"reason": self.NASTY}).inc(2)
        registry.counter("stream.dropped", {"reason": "late"}).inc(5)
        text = to_prometheus_text(registry.snapshot())
        # One line per series: the newline inside the value is escaped.
        assert text.count("stream_dropped_total{") == 2
        families = parse_prometheus_text(text)
        samples = families["stream_dropped_total"]["samples"]
        assert sum(samples.values()) == 7

    def test_parse_prometheus_series_decodes_values(self):
        from repro.obs import escape_label_value, parse_prometheus_series

        series = (
            'stream_dropped_total{reason="'
            + escape_label_value(self.NASTY)
            + '",x="1"}'
        )
        name, labels = parse_prometheus_series(series)
        assert name == "stream_dropped_total"
        assert labels == {"reason": self.NASTY, "x": "1"}

    def test_parse_prometheus_series_without_labels(self):
        from repro.obs import parse_prometheus_series

        assert parse_prometheus_series("serve_admitted_total") == (
            "serve_admitted_total",
            {},
        )

    def test_parse_prometheus_series_rejects_garbage(self):
        from repro.obs import parse_prometheus_series

        with pytest.raises(ObservabilityError):
            parse_prometheus_series("not a series at all {{{")

    def test_unknown_escape_kept_verbatim(self):
        from repro.obs import unescape_label_value

        assert unescape_label_value(r"a\qb") == r"a\qb"


class TestFlightRecordValidator:
    def _valid_document(self):
        from repro.obs import FLIGHT_RECORDER_SCHEMA

        registry = MetricsRegistry()
        registry.counter("serve.admitted").inc()
        return {
            "schema": FLIGHT_RECORDER_SCHEMA,
            "trigger": "manual",
            "dumped_at_unix": 1700000000.0,
            "dump_index": 0,
            "events": [
                {"level": "error", "message": "boom", "t_monotonic": 1.5, "attrs": {}}
            ],
            "samples": [
                {"index": 0, "t_monotonic": 1.0, "snapshot": registry.snapshot()}
            ],
            "spans": [],
            "health": {"status": "ok"},
        }

    def test_accepts_valid_document(self):
        from repro.obs import validate_flight_record

        validate_flight_record(self._valid_document())

    def test_rejects_wrong_schema(self):
        from repro.obs import validate_flight_record

        with pytest.raises(ObservabilityError, match="not a repro.flightrecorder"):
            validate_flight_record({"schema": "nope"})

    def test_rejects_bad_sample_snapshot(self):
        from repro.obs import validate_flight_record

        document = self._valid_document()
        document["samples"][0]["snapshot"] = {"counters": "nope"}
        with pytest.raises(ObservabilityError, match=r"samples\[0\]"):
            validate_flight_record(document)

    def test_rejects_bad_health_status(self):
        from repro.obs import validate_flight_record

        document = self._valid_document()
        document["health"] = {"status": "on_fire"}
        with pytest.raises(ObservabilityError, match="health.status"):
            validate_flight_record(document)

    def test_cli_flag_validates_dump(self, tmp_path, capsys):
        flight_path = tmp_path / "flight.json"
        flight_path.write_text(json.dumps(self._valid_document()))
        assert export_main(["--validate-flightrecorder", str(flight_path)]) == 0
        out = capsys.readouterr().out
        assert "valid flight record" in out
        assert "trigger=manual" in out
