"""Property-based tests for routing, trajectories, mobility and online updates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.online_update import OnlineRTFUpdater
from repro.core.rtf import RTFSlot
from repro.crowd.mobility import MobilityModel
from repro.crowd.workers import WorkerPool
from repro.network.routing import RouteWeight, shortest_route
from repro.traffic.trajectories import TrajectoryGenerator, extract_road_speeds


@st.composite
def connected_network(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    roads = [repro.Road(road_id=f"r{i}") for i in range(n)]
    edges = set()
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((parent, i))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return repro.TrafficNetwork(roads, [(f"r{i}", f"r{j}") for i, j in sorted(edges)])


class TestRoutingProperties:
    @given(connected_network(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_route_endpoints_and_adjacency(self, net, seed):
        rng = np.random.default_rng(seed)
        source = int(rng.integers(net.n_roads))
        target = int(rng.integers(net.n_roads))
        route, cost = shortest_route(net, source, target)
        assert route[0] == source
        assert route[-1] == target
        assert cost >= 0
        for a, b in zip(route, route[1:]):
            assert net.are_adjacent(a, b)

    @given(connected_network(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_hop_route_matches_bfs_distance(self, net, seed):
        rng = np.random.default_rng(seed)
        source = int(rng.integers(net.n_roads))
        target = int(rng.integers(net.n_roads))
        _, cost = shortest_route(net, source, target, RouteWeight.HOPS)
        bfs = net.hop_distances([source])[target]
        assert cost == bfs

    @given(connected_network(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_route_cost_symmetric_for_uniform_weights(self, net, seed):
        rng = np.random.default_rng(seed)
        a = int(rng.integers(net.n_roads))
        b = int(rng.integers(net.n_roads))
        _, cost_ab = shortest_route(net, a, b, RouteWeight.HOPS)
        _, cost_ba = shortest_route(net, b, a, RouteWeight.HOPS)
        assert cost_ab == cost_ba


class TestTrajectoryProperties:
    @given(connected_network(), st.integers(0, 10_000), st.floats(10.0, 80.0))
    @settings(max_examples=25, deadline=None)
    def test_trace_invariants(self, net, seed, speed):
        rng = np.random.default_rng(seed)
        generator = TrajectoryGenerator(
            net, np.full(net.n_roads, speed), seed=seed, gps_noise_fraction=0.0
        )
        start = int(rng.integers(net.n_roads))
        trace = generator.drive("v", start, duration_s=120)
        times = [p.timestamp_s for p in trace.points]
        assert times == sorted(times)
        visited = trace.roads_visited()
        assert visited[0] == start
        for a, b in zip(visited, visited[1:]):
            assert net.are_adjacent(a, b) or a == b

    @given(connected_network(), st.integers(0, 10_000), st.floats(20.0, 60.0))
    @settings(max_examples=20, deadline=None)
    def test_extracted_speeds_positive_and_bounded(self, net, seed, speed):
        generator = TrajectoryGenerator(
            net, np.full(net.n_roads, speed), seed=seed,
            gps_noise_fraction=0.0, fix_interval_s=5.0,
        )
        trace = generator.drive("v", 0, duration_s=240)
        observed = extract_road_speeds(net, trace)
        for value in observed.values():
            assert 0 < value < 3 * speed


class TestMobilityProperties:
    @given(connected_network(), st.integers(1, 40), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_walk_preserves_workers_and_validity(self, net, n_workers, seed):
        pool = WorkerPool.random_distribution(net, n_workers, seed=seed)
        model = MobilityModel(net, move_probability=0.5, seed=seed)
        for stepped in model.walk(pool, 3):
            assert stepped.n_workers == n_workers
            for worker in stepped.workers:
                assert 0 <= worker.road_index < net.n_roads


class TestOnlineUpdateProperties:
    @given(
        connected_network(),
        st.integers(0, 10_000),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_parameters_stay_valid_under_any_stream(self, net, seed, eta):
        rng = np.random.default_rng(seed)
        initial = RTFSlot(
            0,
            np.full(net.n_roads, 50.0),
            np.full(net.n_roads, 3.0),
            np.full(net.n_edges, 0.5),
        )
        updater = OnlineRTFUpdater(net, initial, learning_rate=eta)
        for _ in range(10):
            sample = rng.uniform(1.0, 140.0, net.n_roads)
            params = updater.update(sample)
            assert np.all(params.sigma > 0)
            assert np.all((params.rho >= 0) & (params.rho <= 1))
            assert np.all(np.isfinite(params.mu))

    @given(connected_network(), st.floats(30.0, 90.0), st.floats(0.05, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_constant_stream_collapses_sigma(self, net, level, eta):
        initial = RTFSlot(
            0,
            np.full(net.n_roads, level),
            np.full(net.n_roads, 5.0),
            np.full(net.n_edges, 0.5),
        )
        updater = OnlineRTFUpdater(net, initial, learning_rate=eta)
        sample = np.full(net.n_roads, level)
        for _ in range(60):
            params = updater.update(sample)
        assert np.all(params.mu == pytest.approx(level, abs=1e-6))
        assert np.all(params.sigma < 5.0)
