"""Concurrency tests: snapshot-isolated serving under a hot writer.

Readers hammer :meth:`ModelStore.current` / :meth:`CrowdRTSE.answer_query`
while a writer publishes refreshes; no reader may ever observe a mixed
version (parameters from one generation, correlations from another).
The hypothesis block checks the copy-on-write publish invariant over
arbitrary touched-slot subsets.

Run in CI with faulthandler and a hard timeout so a deadlock shows a
stack dump instead of hanging the job.
"""

from __future__ import annotations

import threading
from typing import List

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.inference import empirical_slot_parameters
from repro.core.rtf import RTFModel, params_signature
from repro.core.store import ModelStore

SLOTS = (90, 91, 92, 93)
SETTINGS = settings(max_examples=20, deadline=None)


@pytest.fixture(scope="module")
def world(small_world):
    network = small_world["network"]
    history = small_world["history"]
    model = RTFModel(
        network,
        [
            empirical_slot_parameters(network, history.slot_samples(t), t)
            for t in SLOTS
        ],
    )
    day0 = history.day(0)
    day1 = history.day(1)
    return {
        "network": network,
        "model": model,
        "samples": [
            {t: day[history.local_slot(t)] for t in SLOTS}
            for day in (day0, day1)
        ],
    }


class TestConcurrentServing:
    def test_readers_never_see_mixed_versions(self, world):
        """Every artifact read off one pinned snapshot is self-consistent.

        The writer publishes ~50 refreshes while readers repeatedly pin
        a snapshot and check that the digest recorded for a slot still
        matches a recomputed signature of the parameters they read —
        which fails if a publish ever swapped parameters under a live
        snapshot.
        """
        store = ModelStore(world["model"])
        stop = threading.Event()
        errors: List[str] = []

        def writer():
            rng = np.random.default_rng(7)
            for k in range(50):
                sample = world["samples"][k % 2]
                touched = list(rng.choice(SLOTS, size=2, replace=False))
                store.refresh({int(t): sample[int(t)] for t in touched})
            stop.set()

        def reader():
            while not stop.is_set():
                snapshot = store.current()
                version = snapshot.version
                for t in SLOTS:
                    params = snapshot.slot(t)
                    if snapshot.digest(t) != params_signature(params):
                        errors.append(
                            f"v{version}: slot {t} digest/params mismatch"
                        )
                        return
                # Derived artifacts must belong to the same generation.
                snapshot.correlation_matrix(SLOTS[0])
                if snapshot.version != version:
                    errors.append("snapshot version mutated in place")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        for thread in readers:
            thread.join(timeout=120)
        assert not errors, errors
        assert store.version == 51

    def test_concurrent_queries_are_version_consistent(self, tiny_dataset):
        """Full answer_query spans racing a refresh stay self-consistent."""
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        local = data.test_history.local_slot(data.slot)
        truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
        errors: List[str] = []
        stop = threading.Event()

        def writer():
            for day in range(data.test_history.n_days):
                system.refresh(
                    {data.slot: data.test_history.day(day)[local]},
                    learning_rate=0.3,
                )
            stop.set()

        def reader(seed: int):
            while not stop.is_set():
                market = repro.CrowdMarket(
                    data.network,
                    data.pool,
                    data.cost_model,
                    rng=np.random.default_rng(seed),
                )
                result = system.answer_query(
                    data.queried,
                    data.slot,
                    budget=15,
                    market=market,
                    truth=truth,
                    rng=np.random.default_rng(seed),
                )
                if not np.all(np.isfinite(result.estimates_kmh)):
                    errors.append("non-finite estimates under refresh")
                    return

        threads = [threading.Thread(target=reader, args=(s,)) for s in range(3)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=300)
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        assert system.store.version == data.test_history.n_days + 1

    def test_single_flight_derivation(self, world):
        """Concurrent first lookups of one matrix derive it exactly once."""
        store = ModelStore(world["model"])
        snapshot = store.current()
        barrier = threading.Barrier(6)
        results: List[np.ndarray] = []

        def lookup():
            barrier.wait()
            results.append(snapshot.correlation_matrix(92))

        threads = [threading.Thread(target=lookup) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert store.stats.correlation_derivations == 1
        assert all(m is results[0] for m in results)


class TestWarmStartUnderRefresh:
    def test_warm_seeded_answers_stay_correct_under_hot_refresh(
        self, tiny_dataset
    ):
        """Warm-start caching races a hot writer without corrupting answers.

        Readers answer warm-started queries (storing/consuming seeds on
        their pinned snapshots) while the writer publishes refreshes
        that drop the touched slot's seed in the same atomic publish.
        Each warm answer is checked against a cold-start answer off the
        *same pinned snapshot* — a seed leaking across digests, or a
        race between the artifact drop and a concurrent store, would
        surface as a divergent field or an exception.
        """
        data = tiny_dataset
        system = repro.CrowdRTSE.fit(
            data.network, data.train_history, slots=[data.slot]
        )
        local = data.test_history.local_slot(data.slot)
        truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
        errors: List[str] = []
        stop = threading.Event()

        def request(warm_start: bool):
            return repro.EstimationRequest(
                queried=data.queried,
                slot=data.slot,
                budget=15,
                warm_start=warm_start,
            )

        def market(seed: int):
            return repro.CrowdMarket(
                data.network,
                data.pool,
                data.cost_model,
                rng=np.random.default_rng(seed),
            )

        def writer():
            for day in range(data.test_history.n_days):
                system.refresh(
                    {data.slot: data.test_history.day(day)[local]},
                    learning_rate=0.3,
                )
            stop.set()

        def reader(seed: int):
            while not stop.is_set():
                snapshot = system.store.current()
                warm = system.answer_query(
                    request(True), market=market(seed), truth=truth,
                    snapshot=snapshot,
                )
                cold = system.answer_query(
                    request(False), market=market(seed), truth=truth,
                    snapshot=snapshot,
                )
                if warm.probes != cold.probes:
                    errors.append("warm/cold probes diverged on one snapshot")
                    return
                if not np.allclose(
                    warm.full_field_kmh, cold.full_field_kmh, atol=1e-2
                ):
                    errors.append(
                        "warm-started field diverged from cold start "
                        "beyond the solver tolerance"
                    )
                    return

        readers = [threading.Thread(target=reader, args=(s,)) for s in range(3)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=300)
        for thread in readers:
            thread.join(timeout=300)
        assert not errors, errors
        assert system.store.version == data.test_history.n_days + 1


class TestPublishProperty:
    @SETTINGS
    @given(
        touched=st.sets(st.sampled_from(SLOTS), min_size=1),
        eta=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_cow_publish_shares_untouched_arrays(self, world, touched, eta):
        """COW invariant over arbitrary refresh subsets.

        After refreshing any subset of slots, every untouched slot of
        the new snapshot holds the *same* parameter arrays (``is``), and
        every touched slot got a fresh digest.
        """
        store = ModelStore(world["model"])
        before = store.current()
        after = store.refresh(
            {t: world["samples"][0][t] for t in touched}, learning_rate=eta
        )
        assert after.version == before.version + 1
        for t in SLOTS:
            if t in touched:
                assert after.slot(t) is not before.slot(t)
                assert after.digest(t) != before.digest(t)
            else:
                assert after.slot(t) is before.slot(t)
                assert after.slot(t).mu is before.slot(t).mu
                assert after.slot(t).sigma is before.slot(t).sigma
                assert after.slot(t).rho is before.slot(t).rho
                assert after.digest(t) == before.digest(t)
