"""Differential tests for the LSM-RN latent-space backend.

The vectorized GNMF solver is checked against a naive loop reference,
the objective is checked to descend, and the incremental refresh is
checked against the closed-form ridge solve it claims to implement
(arXiv:1602.04301 adapted; see docs/PAPER_MAPPING.md).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.backends.lsmrn import (
    LSMRNBackend,
    LSMRNState,
    gnmf_multiplicative_step,
    gnmf_objective,
    road_adjacency,
)
from repro.baselines.grmc import graph_laplacian
from repro.errors import BackendError, NotFittedError
from repro.traffic.history import SpeedHistory

SLOT_OFFSET = 100
N_SLOTS = 4


@pytest.fixture(scope="module")
def net():
    return repro.grid_network(3, 4)  # 12 roads


@pytest.fixture(scope="module")
def history(net):
    rng = np.random.default_rng(5)
    speeds = 35.0 + 8.0 * rng.standard_normal((9, N_SLOTS, net.n_roads))
    return SpeedHistory(np.maximum(speeds, 5.0), net.road_ids, SLOT_OFFSET)


@pytest.fixture(scope="module")
def backend(net):
    return LSMRNBackend(net, rank=4, n_iterations=25, seed=3)


@pytest.fixture(scope="module")
def state(backend, history):
    return backend.fit(history)


def _loop_reference_step(matrix, w, v, adjacency, degrees, gamma, reg, eps):
    """gnmf_multiplicative_step re-derived with explicit Python loops."""
    n_days, n_roads = matrix.shape
    rank = w.shape[1]
    adj = adjacency.toarray()

    w_new = np.empty_like(w)
    vtv = np.empty((rank, rank))
    for a in range(rank):
        for b in range(rank):
            vtv[a, b] = sum(v[r, a] * v[r, b] for r in range(n_roads))
    for d in range(n_days):
        for k in range(rank):
            numer = sum(matrix[d, r] * v[r, k] for r in range(n_roads))
            denom = (
                sum(w[d, a] * vtv[a, k] for a in range(rank))
                + reg * w[d, k]
                + eps
            )
            w_new[d, k] = w[d, k] * numer / denom

    v_new = np.empty_like(v)
    wtw = np.empty((rank, rank))
    for a in range(rank):
        for b in range(rank):
            wtw[a, b] = sum(w_new[d, a] * w_new[d, b] for d in range(n_days))
    for r in range(n_roads):
        for k in range(rank):
            numer = sum(matrix[d, r] * w_new[d, k] for d in range(n_days))
            numer += gamma * sum(
                adj[r, r2] * v[r2, k] for r2 in range(n_roads)
            )
            denom = (
                sum(v[r, a] * wtw[a, k] for a in range(rank))
                + gamma * degrees[r] * v[r, k]
                + reg * v[r, k]
                + eps
            )
            v_new[r, k] = v[r, k] * numer / denom
    return w_new, v_new


class TestGNMFStep:
    def test_matches_loop_reference(self, net):
        rng = np.random.default_rng(21)
        n_days, rank = 7, 3
        matrix = rng.uniform(10.0, 50.0, size=(n_days, net.n_roads))
        w = rng.uniform(0.5, 1.5, size=(n_days, rank))
        v = rng.uniform(0.5, 1.5, size=(net.n_roads, rank))
        adjacency = road_adjacency(net)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        gamma, reg = 0.5, 0.05

        got_w, got_v = gnmf_multiplicative_step(
            matrix, w, v, adjacency, degrees, gamma, reg
        )
        ref_w, ref_v = _loop_reference_step(
            matrix, w, v, adjacency, degrees, gamma, reg, eps=1e-9
        )
        np.testing.assert_allclose(got_w, ref_w, rtol=1e-10)
        np.testing.assert_allclose(got_v, ref_v, rtol=1e-10)

    def test_objective_descends(self, net):
        rng = np.random.default_rng(8)
        matrix = rng.uniform(10.0, 50.0, size=(12, net.n_roads))
        rank = 4
        scale = np.sqrt(matrix.mean() / rank)
        w = rng.uniform(0.5, 1.5, size=(12, rank)) * scale
        v = rng.uniform(0.5, 1.5, size=(net.n_roads, rank)) * scale
        adjacency = road_adjacency(net)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        laplacian = graph_laplacian(net).tocsr()
        gamma, reg = 0.5, 0.05

        values = [gnmf_objective(matrix, w, v, laplacian, gamma, reg)]
        for _ in range(30):
            w, v = gnmf_multiplicative_step(
                matrix, w, v, adjacency, degrees, gamma, reg
            )
            values.append(gnmf_objective(matrix, w, v, laplacian, gamma, reg))
        diffs = np.diff(values)
        assert np.all(diffs <= 1e-6 * np.abs(values[0]))
        assert values[-1] < values[0]

    def test_factors_stay_nonnegative(self, net):
        rng = np.random.default_rng(9)
        matrix = rng.uniform(10.0, 50.0, size=(6, net.n_roads))
        w = rng.uniform(0.5, 1.5, size=(6, 3))
        v = rng.uniform(0.5, 1.5, size=(net.n_roads, 3))
        adjacency = road_adjacency(net)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        for _ in range(20):
            w, v = gnmf_multiplicative_step(
                matrix, w, v, adjacency, degrees, 0.5, 0.05
            )
        assert np.all(w >= 0) and np.all(v >= 0)

    def test_adjacency_symmetric_binary(self, net):
        adjacency = road_adjacency(net)
        dense = adjacency.toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert set(np.unique(dense)) <= {0.0, 1.0}
        assert dense.sum() == 2 * len(net.edges)


class TestFit:
    def test_state_shape(self, state, net):
        assert isinstance(state, LSMRNState)
        assert state.road_factors.shape == (net.n_roads, 4)
        assert np.all(state.road_factors >= 0)
        assert sorted(state.slot_weights) == list(
            range(SLOT_OFFSET, SLOT_OFFSET + N_SLOTS)
        )

    def test_reconstruction_beats_global_mean(self, state, history):
        slot = SLOT_OFFSET + 1
        samples = history.slot_samples(slot)
        field = state.road_factors @ state.slot_weights[slot]
        err_model = np.mean((field - samples.mean(axis=0)) ** 2)
        err_global = np.mean((samples.mean() - samples.mean(axis=0)) ** 2)
        assert err_model < err_global

    def test_deterministic(self, backend, history, state):
        again = backend.fit(history)
        np.testing.assert_array_equal(again.road_factors, state.road_factors)

    def test_wrong_width_history_raises(self, backend):
        bad = SpeedHistory(
            np.full((3, 2, 5), 30.0), [f"r{k}" for k in range(5)], SLOT_OFFSET
        )
        with pytest.raises(BackendError, match="roads"):
            backend.fit(bad)


class TestRefresh:
    def test_matches_closed_form_ridge(self, backend, state):
        slot = SLOT_OFFSET + 2
        rng = np.random.default_rng(31)
        day = rng.uniform(20.0, 45.0, size=backend.network.n_roads)
        lr = 0.3

        refreshed = backend.refresh(state, {slot: day}, learning_rate=lr)

        factors = state.road_factors
        rank = factors.shape[1]
        ridge = 1.0  # backend default
        gram = factors.T @ factors + ridge * np.eye(rank)
        prior = state.slot_weights[slot]
        day_weight = np.linalg.solve(gram, factors.T @ day + ridge * prior)
        expected = (1.0 - lr) * prior + lr * day_weight
        np.testing.assert_allclose(
            refreshed.slot_weights[slot], expected, rtol=1e-10
        )

    def test_other_slots_and_factors_untouched(self, backend, state):
        slot = SLOT_OFFSET
        day = np.full(backend.network.n_roads, 33.0)
        refreshed = backend.refresh(state, {slot: day}, learning_rate=0.2)
        assert refreshed is not state
        np.testing.assert_array_equal(
            refreshed.road_factors, state.road_factors
        )
        assert refreshed.factors_digest == state.factors_digest
        for other in state.slot_weights:
            if other == slot:
                continue
            np.testing.assert_array_equal(
                refreshed.slot_weights[other], state.slot_weights[other]
            )

    def test_unknown_slot_is_noop(self, backend, state):
        day = np.full(backend.network.n_roads, 33.0)
        refreshed = backend.refresh(state, {999: day}, learning_rate=0.2)
        assert refreshed is state

    def test_wrong_length_sample_raises(self, backend, state):
        with pytest.raises(BackendError, match="day sample"):
            backend.refresh(
                state, {SLOT_OFFSET: np.full(3, 30.0)}, learning_rate=0.2
            )


class TestEstimate:
    def test_pins_probes_and_matches_ridge_decode(self, backend, state):
        slot = SLOT_OFFSET + 1
        probes = {0: 28.0, 3: 41.0, 7: 36.5}
        estimate = backend.estimate(state, probes, slot)
        assert estimate.backend == "lsmrn"
        for road, speed in probes.items():
            assert estimate.speeds[road] == pytest.approx(speed)

        factors = state.road_factors
        rank = factors.shape[1]
        observed = np.array(sorted(probes))
        values = np.array([probes[int(r)] for r in observed])
        v_obs = factors[observed]
        ridge = 1.0
        weight = np.linalg.solve(
            v_obs.T @ v_obs + ridge * np.eye(rank),
            v_obs.T @ values + ridge * state.slot_weights[slot],
        )
        expected = factors @ weight
        expected[observed] = values
        expected = np.maximum(expected, 0.5)
        np.testing.assert_allclose(estimate.speeds, expected, rtol=1e-10)
        assert estimate.provenance["observed"] == 3
        assert estimate.provenance["rank"] == rank
        assert estimate.provenance["probe_rmse"] >= 0.0

    def test_no_probes_decodes_slot_profile(self, backend, state):
        slot = SLOT_OFFSET
        estimate = backend.estimate(state, {}, slot)
        expected = np.maximum(
            state.road_factors @ state.slot_weights[slot], 0.5
        )
        np.testing.assert_allclose(estimate.speeds, expected, rtol=1e-12)

    def test_unfitted_slot_raises(self, backend, state):
        with pytest.raises(NotFittedError, match="not fitted"):
            backend.estimate(state, {0: 30.0}, 7)

    def test_wrong_state_type_raises(self, backend):
        with pytest.raises(BackendError, match="LSMRNState"):
            backend.estimate(object(), {0: 30.0}, SLOT_OFFSET)


class TestConstructor:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"n_iterations": 0},
            {"gamma": -0.1},
            {"reg": -0.1},
            {"ridge": 0.0},
        ],
    )
    def test_invalid_hyperparameters(self, net, kwargs):
        with pytest.raises(BackendError):
            LSMRNBackend(net, **kwargs)
