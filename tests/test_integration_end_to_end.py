"""End-to-end integration tests across all subsystems.

These walk the full Fig. 1 workflow on freshly built worlds (not the
shared fixtures) and check cross-module contracts: offline fit → OCS →
market probing → GSP → metrics, persistence round-trips of the fitted
artefacts, and the incident-response story the paper motivates.
"""

import numpy as np
import pytest

import repro
from repro.baselines import EstimationContext, GSPEstimator, PeriodicEstimator
from repro.datasets import truth_oracle_for


class TestFullPipelineSemiSyn:
    @pytest.fixture(scope="class")
    def world(self):
        data = repro.build_semisyn(
            repro.SemiSynConfig(
                n_roads=100,
                n_queried=18,
                n_train_days=15,
                n_test_days=5,
                n_slots=8,
                budgets=(15, 30, 45),
                seed=303,
            )
        )
        system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
        return data, system

    def test_quality_improves_with_budget(self, world):
        data, system = world
        mapes = []
        for budget in data.budgets:
            errors = []
            for day in range(data.test_history.n_days):
                market = repro.CrowdMarket(
                    data.network, data.pool, data.cost_model,
                    rng=np.random.default_rng(day),
                )
                truth = truth_oracle_for(data.test_history, day, data.slot)
                result = system.answer_query(
                    data.queried, data.slot, budget=budget, market=market, truth=truth
                )
                truths = np.array([truth(q) for q in data.queried])
                errors.append(
                    repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
                )
            mapes.append(np.mean(errors))
        # More budget should not make things notably worse.
        assert mapes[-1] <= mapes[0] + 0.01

    def test_model_persistence_roundtrip(self, world, tmp_path):
        data, system = world
        path = tmp_path / "rtf.npz"
        system.model.save(path)
        loaded = repro.RTFModel.load(path, data.network)
        table = repro.CorrelationTable.precompute(loaded)
        rebuilt = repro.CrowdRTSE(data.network, loaded, table)
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model, rng=np.random.default_rng(0)
        )
        truth = truth_oracle_for(data.test_history, 0, data.slot)
        a = rebuilt.answer_query(
            data.queried, data.slot, budget=20, market=market, truth=truth
        )
        market2 = repro.CrowdMarket(
            data.network, data.pool, data.cost_model, rng=np.random.default_rng(0)
        )
        b = system.answer_query(
            data.queried, data.slot, budget=20, market=market2, truth=truth
        )
        assert a.selection.selected == b.selection.selected
        assert np.allclose(a.estimates_kmh, b.estimates_kmh)

    def test_selection_subset_of_workers_and_budgeted(self, world):
        data, system = world
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model, rng=np.random.default_rng(1)
        )
        truth = truth_oracle_for(data.test_history, 1, data.slot)
        result = system.answer_query(
            data.queried, data.slot, budget=25, market=market, truth=truth
        )
        assert set(result.selection.selected) <= set(data.worker_roads)
        assert data.cost_model.total(result.selection.selected) <= 25


class TestIncidentResponse:
    """The paper's motivation: crowd probes catch accidental variance."""

    def test_gsp_sees_incident_per_does_not(self):
        network = repro.ring_radial_network(60, n_rings=2, n_radials=6, seed=21)
        profiles = repro.random_profiles(network, seed=22)
        config = repro.SimulationConfig(n_days=21, slot_start=96, n_slots=8, seed=23)
        simulator = repro.TrafficSimulator(network, profiles, config)
        clean = simulator.simulate(incidents=[])
        # Inject a severe incident on the last day around the query slot.
        incident_road = 5
        incident = repro.Incident(
            road_index=incident_road,
            day=20,
            start_slot=1,
            duration_slots=7,
            severity=0.6,
            spread_hops=2,
        )
        shocked = simulator.simulate(incidents=[incident])
        train, _ = clean.split_days(20)
        slot = 100
        system = repro.CrowdRTSE.fit(network, train, slots=[slot])
        truth_day = shocked.slot_samples(slot)[20]

        # Probe the incident road plus a few others.
        probes = {incident_road: float(truth_day[incident_road])}
        context = EstimationContext(
            network, train.slot_samples(slot), probes,
            slot_params=system.model.slot(slot),
        )
        gsp_field = GSPEstimator().estimate(context)
        per_field = PeriodicEstimator().estimate(context)

        affected = [incident_road] + list(network.neighbors(incident_road))
        gsp_err = np.abs(gsp_field[affected] - truth_day[affected]).mean()
        per_err = np.abs(per_field[affected] - truth_day[affected]).mean()
        assert gsp_err < per_err

    def test_incident_propagates_through_gsp(self):
        """A probe far below the mean drags its neighbourhood down."""
        network = repro.grid_network(5, 5)
        profiles = repro.random_profiles(network, seed=31)
        config = repro.SimulationConfig(n_days=15, slot_start=90, n_slots=4, seed=32)
        history = repro.TrafficSimulator(network, profiles, config).simulate()
        slot = 92
        system = repro.CrowdRTSE.fit(network, history, slots=[slot])
        params = system.model.slot(slot)
        centre = 12
        probe_value = float(params.mu[centre] * 0.5)
        result = repro.propagate(network, params, {centre: probe_value})
        for j in network.neighbors(centre):
            assert result.speeds[j] < params.mu[j]


class TestGMissionEndToEnd:
    def test_worker_scarce_instance_answers(self):
        data = repro.build_gmission(
            repro.GMissionConfig(
                n_component_roads=30,
                n_worker_roads=15,
                n_train_days=12,
                n_test_days=3,
                n_slots=6,
                source_network_roads=90,
                budgets=(8, 16),
                seed=44,
            )
        )
        system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model, rng=np.random.default_rng(3)
        )
        truth = truth_oracle_for(data.test_history, 0, data.slot)
        result = system.answer_query(
            data.queried, data.slot, budget=16, market=market, truth=truth
        )
        # Selection restricted to the worker roads (R^w ⊂ R^q).
        assert set(result.selection.selected) <= set(data.worker_roads)
        truths = np.array([truth(q) for q in data.queried])
        assert repro.mean_absolute_percentage_error(result.estimates_kmh, truths) < 0.5


class TestInferenceQualityOnSimulatedWorld:
    def test_fitted_sigma_identifies_volatile_roads(self):
        """Roads simulated as weak-periodicity must get larger fitted σ —
        the property OCS's periodicity weighting relies on."""
        network = repro.grid_network(4, 4)
        profiles = repro.random_profiles(network, seed=55, volatile_fraction=0.5)
        config = repro.SimulationConfig(n_days=40, slot_start=96, n_slots=4, seed=56)
        history = repro.TrafficSimulator(network, profiles, config).simulate()
        slot = 98
        model, _ = repro.fit_rtf(network, history, slots=[slot])
        sigma = model.slot(slot).sigma
        volatile = [
            i for i, p in enumerate(profiles) if p.kind.value == "volatile"
        ]
        stable = [i for i in range(network.n_roads) if i not in volatile]
        assert sigma[volatile].mean() > sigma[stable].mean()

    def test_fitted_rho_higher_for_adjacent_than_random_pairs(self):
        network = repro.ring_radial_network(80, seed=61)
        profiles = repro.random_profiles(network, seed=62)
        config = repro.SimulationConfig(n_days=30, slot_start=96, n_slots=4, seed=63)
        history = repro.TrafficSimulator(network, profiles, config).simulate()
        slot = 98
        model, _ = repro.fit_rtf(network, history, slots=[slot])
        params = model.slot(slot)
        table = repro.CorrelationTable.precompute(model)
        corr = table.matrix(slot)
        rng = np.random.default_rng(64)
        # Average fitted adjacency correlation should exceed the path
        # correlation of random far-apart pairs.
        distant = []
        hops = network.hop_distances([0])
        for _ in range(50):
            i, j = rng.integers(0, network.n_roads, 2)
            if i != j and not network.are_adjacent(int(i), int(j)):
                distant.append(corr[i, j])
        assert params.rho.mean() > np.mean(distant)
