"""Unit tests for repro.core.online_update."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.core.inference import empirical_slot_parameters
from repro.core.online_update import OnlineRTFUpdater, refresh_model
from repro.core.rtf import RTFModel, RTFSlot


def flat_slot(net, mu=50.0, sigma=3.0, rho=0.5, slot=0):
    return RTFSlot(
        slot=slot,
        mu=np.full(net.n_roads, float(mu)),
        sigma=np.full(net.n_roads, float(sigma)),
        rho=np.full(net.n_edges, float(rho)),
    )


class TestValidation:
    def test_bad_learning_rate(self, line_net):
        with pytest.raises(ModelError):
            OnlineRTFUpdater(line_net, flat_slot(line_net), learning_rate=0.0)
        with pytest.raises(ModelError):
            OnlineRTFUpdater(line_net, flat_slot(line_net), learning_rate=1.0)

    def test_sample_shape_checked(self, line_net):
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net))
        with pytest.raises(ModelError):
            updater.update(np.ones(3))

    def test_sample_positivity_checked(self, line_net):
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net))
        bad = np.full(6, 50.0)
        bad[2] = -1
        with pytest.raises(ModelError):
            updater.update(bad)


class TestUpdates:
    def test_mean_moves_towards_sample(self, line_net):
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net, mu=50.0), 0.1)
        params = updater.update(np.full(6, 60.0))
        assert np.allclose(params.mu, 51.0)

    def test_parameters_stay_valid(self, line_net, rng):
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net), 0.2)
        for _ in range(30):
            params = updater.update(rng.uniform(20, 90, 6))
        assert np.all(params.sigma > 0)
        assert np.all((params.rho >= 0) & (params.rho <= 1))

    def test_n_updates_counts(self, line_net):
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net))
        updater.update_many([np.full(6, 50.0)] * 5)
        assert updater.n_updates == 5

    def test_converges_to_stream_statistics(self, line_net):
        """After many days the EW moments track the generating process."""
        rng = np.random.default_rng(3)
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net, mu=40.0), 0.05)
        true_mu = np.linspace(45, 70, 6)
        for _ in range(600):
            shared = rng.normal()
            sample = true_mu + 2.0 * shared + 1.0 * rng.normal(size=6)
            params = updater.update(sample)
        assert np.allclose(params.mu, true_mu, atol=1.5)
        # Total std: sqrt(4 + 1) ~ 2.24.
        assert np.allclose(params.sigma, np.sqrt(5.0), atol=0.8)
        # Shared factor induces rho = 4/5; EW moments with eta = 0.05
        # only remember ~20 effective days, so allow sampling noise.
        assert np.allclose(params.rho, 0.8, atol=0.25)
        assert params.rho.mean() == pytest.approx(0.8, abs=0.1)

    def test_tracks_regime_change(self, line_net):
        """Drift adaptation: the whole point of forgetting."""
        rng = np.random.default_rng(4)
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net, mu=50.0), 0.1)
        for _ in range(100):
            updater.update(30.0 + rng.normal(scale=1.0, size=6))
        params = updater.current()
        assert np.allclose(params.mu, 30.0, atol=2.0)

    def test_current_does_not_mutate(self, line_net):
        updater = OnlineRTFUpdater(line_net, flat_slot(line_net))
        a = updater.current()
        a.mu[0] = -999  # mutate the copy
        assert updater.current().mu[0] == 50.0


class TestRefreshModel:
    def test_refreshes_only_given_slots(self, line_net):
        model = RTFModel(line_net, [flat_slot(line_net, slot=1), flat_slot(line_net, slot=2)])
        refreshed = refresh_model(
            line_net, model, {1: np.full(6, 70.0)}, learning_rate=0.5
        )
        assert refreshed.slot(1).mu[0] == pytest.approx(60.0)
        assert refreshed.slot(2).mu[0] == pytest.approx(50.0)

    def test_consistent_with_updater(self, line_net):
        initial = flat_slot(line_net, slot=3)
        model = RTFModel(line_net, [initial])
        sample = np.full(6, 55.0)
        refreshed = refresh_model(line_net, model, {3: sample}, 0.05)
        updater = OnlineRTFUpdater(line_net, initial, 0.05)
        direct = updater.update(sample)
        assert np.allclose(refreshed.slot(3).mu, direct.mu)
        assert np.allclose(refreshed.slot(3).sigma, direct.sigma)

    def test_online_matches_empirical_in_expectation(self, small_world):
        """Streaming the history through the updater lands near the
        batch empirical fit (both estimate the same moments)."""
        net = small_world["network"]
        history = small_world["history"]
        slot = small_world["slot"]
        samples = history.slot_samples(slot)
        start = empirical_slot_parameters(net, samples[:4], slot)
        updater = OnlineRTFUpdater(net, start, learning_rate=0.1)
        for row in samples[4:]:
            online = updater.update(row)
        batch = empirical_slot_parameters(net, samples, slot)
        rel = np.abs(online.mu - batch.mu) / batch.mu
        assert np.median(rel) < 0.1


class TestUnfittedSlotAccounting:
    """Regression: observations for slots the model never fitted used to
    vanish silently; they must now be counted and warned about once."""

    def test_unfitted_slot_warns_once_and_counts(self, line_net):
        from repro import errors, obs

        errors.reset_deprecation_warnings()
        obs.configure(metrics=True)
        try:
            obs.get_metrics().clear()
            model = RTFModel(line_net, [flat_slot(line_net, slot=1)])
            with pytest.warns(RuntimeWarning, match="fitted slot range"):
                refreshed = refresh_model(
                    line_net,
                    model,
                    {1: np.full(6, 70.0), 9: np.full(6, 70.0)},
                    learning_rate=0.5,
                )
            # The fitted slot still refreshed normally.
            assert refreshed.slot(1).mu[0] == pytest.approx(60.0)
            assert (
                obs.get_metrics()
                .counter("stream.dropped", {"reason": "unfitted_slot"})
                .value
                == 1
            )
            # Once per process: a second occurrence stays silent.
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                refresh_model(
                    line_net, model, {9: np.full(6, 70.0)}, learning_rate=0.5
                )
            assert (
                obs.get_metrics()
                .counter("stream.dropped", {"reason": "unfitted_slot"})
                .value
                == 2
            )
        finally:
            obs.disable_all()
            obs.get_metrics().clear()
            errors.reset_deprecation_warnings()
