"""Tests of the experiment harness: each table/figure runs at QUICK scale
and reproduces the paper's qualitative shapes."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    default_gmission,
    default_semisyn,
    estimator_suite,
    fit_system,
    ocs_instance_for,
)
from repro.experiments import (
    ablations,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table2,
    table3,
)

QUICK = ExperimentScale.QUICK


class TestCommon:
    def test_datasets_memoized(self):
        assert default_semisyn(QUICK) is default_semisyn(QUICK)
        assert default_gmission(QUICK) is default_gmission(QUICK)

    def test_fit_system_memoized(self):
        assert fit_system("semisyn", QUICK) is fit_system("semisyn", QUICK)

    def test_estimator_suite_names(self):
        names = [e.name for e in estimator_suite()]
        assert names == ["GSP", "LASSO", "GRMC", "Per"]

    def test_ocs_instance_for(self):
        data = default_semisyn(QUICK)
        system = fit_system("semisyn", QUICK)
        instance = ocs_instance_for(data, system, budget=20)
        assert instance.budget == 20
        assert instance.theta == data.theta


class TestTable2:
    def test_rows_cover_both_datasets(self):
        rows = table2.run(QUICK)
        assert [r.dataset for r in rows] == ["semisyn", "gmission"]

    def test_gmission_workers_subset(self):
        rows = {r.dataset: r for r in table2.run(QUICK)}
        gm = rows["gmission"]
        assert gm.n_worker_roads < gm.n_queried
        semi = rows["semisyn"]
        assert semi.n_worker_roads == semi.n_roads

    def test_format_table(self):
        text = table2.format_table(table2.run(QUICK))
        assert "semisyn" in text and "gmission" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def points(self):
        return figure2.run(QUICK)

    def test_vo_monotone_in_budget(self, points):
        for cost_range in ("C1", "C2"):
            for algo in ("Ratio", "OBJ", "Hybrid"):
                series = [
                    p.objective
                    for p in sorted(
                        (q for q in points if q.cost_range == cost_range and q.algorithm == algo),
                        key=lambda q: q.budget,
                    )
                ]
                assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))

    def test_hybrid_dominates(self, points):
        by_key = {}
        for p in points:
            by_key.setdefault((p.cost_range, p.budget), {})[p.algorithm] = p.objective
        for algos in by_key.values():
            assert algos["Hybrid"] >= algos["Ratio"] - 1e-9
            assert algos["Hybrid"] >= algos["OBJ"] - 1e-9

    def test_ratios_at_most_one(self, points):
        for _, _, _, ratio in figure2.ratios_to_hybrid(points):
            assert ratio <= 1.0 + 1e-9

    def test_components_converge_at_large_budget(self, points):
        """At the largest K the winner's margin shrinks (paper: Ratio
        reaches Hybrid when budget is large enough)."""
        ratios = figure2.ratios_to_hybrid(points)
        largest = max(r[1] for r in ratios)
        best_at_largest = max(r[3] for r in ratios if r[1] == largest)
        assert best_at_largest >= 0.99


class TestFigure3:
    @pytest.fixture(scope="class")
    def cells(self):
        return figure3.run(
            QUICK, n_trials=3, selectors=("hybrid", "random"), budgets=(15, 45, 75)
        )

    def test_all_cells_present(self, cells):
        keys = {(c.selector, c.budget, c.estimator) for c in cells}
        assert len(keys) == 2 * 3 * 4

    def test_gsp_best_at_smallest_budget(self, cells):
        smallest = min(c.budget for c in cells)
        hybrid_cells = {
            c.estimator: c.summary.mape
            for c in cells
            if c.selector == "hybrid" and c.budget == smallest
        }
        assert hybrid_cells["GSP"] == min(hybrid_cells.values())

    def test_gsp_improves_with_budget(self, cells):
        series = sorted(
            (c for c in cells if c.selector == "hybrid" and c.estimator == "GSP"),
            key=lambda c: c.budget,
        )
        assert series[-1].summary.mape <= series[0].summary.mape + 0.02

    def test_hybrid_selection_beats_random_for_gsp(self, cells):
        smallest = min(c.budget for c in cells)
        by_selector = {
            c.selector: c.summary.mape
            for c in cells
            if c.estimator == "GSP" and c.budget == smallest
        }
        assert by_selector["hybrid"] <= by_selector["random"] + 0.02

    def test_format_helpers(self, cells):
        assert "MAPE" in figure3.format_table(cells)
        assert "selector" in figure3.format_dape(cells, min(c.budget for c in cells))


class TestFigure4:
    def test_ocs_runtime_points(self):
        points = figure4.run_ocs_runtime(QUICK, repeats=1)
        budgets = {p.budget for p in points}
        assert len(budgets) == 5
        for p in points:
            assert p.seconds >= 0
            # Paper scalability claim: Hybrid within one second.
            assert p.seconds < 1.0

    def test_estimator_runtime_relative_order(self):
        points = figure4.run_estimator_runtime(QUICK, repeats=1)
        by_method = {}
        for p in points:
            by_method.setdefault(p.method, []).append(p.seconds)
        # LASSO fastest on average, GRMC slowest (paper Fig. 4b).
        assert np.mean(by_method["LASSO"]) < np.mean(by_method["GRMC"])
        assert np.mean(by_method["GSP"]) < np.mean(by_method["GRMC"])


class TestFigure5:
    def test_iterations_grow_with_size(self):
        points = figure5.run(QUICK, sizes=(20, 60, 100), tol=0.05, max_iters=3000)
        assert [p.n_roads for p in points] == [20, 60, 100]
        assert all(p.converged for p in points)
        assert points[-1].iterations >= points[0].iterations

    def test_format(self):
        points = figure5.run(QUICK, sizes=(20,), tol=0.1, max_iters=500)
        assert "iterations" in figure5.format_table(points)


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3.run(QUICK, random_trials=3)

    def test_all_strategies_and_budgets(self, rows):
        strategies = {r.strategy for r in rows}
        assert strategies == {"OBJ", "Rand", "Hybrid"}

    def test_two_hop_at_least_one_hop(self, rows):
        for r in rows:
            assert r.two_hop >= r.one_hop
            assert r.two_hop <= r.n_queried

    def test_hybrid_covers_most(self, rows):
        by_budget = {}
        for r in rows:
            by_budget.setdefault(r.budget, {})[r.strategy] = r
        for budget, strategies in by_budget.items():
            assert strategies["Hybrid"].two_hop >= strategies["Rand"].two_hop

    def test_coverage_monotone_in_budget(self, rows):
        hybrid = sorted(
            (r for r in rows if r.strategy == "Hybrid"), key=lambda r: r.budget
        )
        twos = [r.two_hop for r in hybrid]
        assert all(a <= b + 1 for a, b in zip(twos, twos[1:]))

    def test_format(self, rows):
        assert "/" in table3.format_table(rows)


class TestFigure6:
    def test_gmission_shapes(self):
        cells = figure6.run(QUICK, n_trials=2)
        assert {c.estimator for c in cells} == {"GSP", "LASSO", "GRMC", "Per"}
        smallest = min(c.budget for c in cells)
        at_smallest = {
            c.estimator: c.summary.mape for c in cells if c.budget == smallest
        }
        # GSP at least beats the correlation-only baselines on the
        # worker-scarce instance.
        assert at_smallest["GSP"] <= at_smallest["LASSO"] + 0.02
        assert at_smallest["GSP"] <= at_smallest["GRMC"] + 0.02


class TestAblations:
    def test_path_weight_rows(self):
        rows = ablations.path_weight_ablation(QUICK)
        values = {r.variant: r.value for r in rows}
        assert values["exact >= paper (should be ~1)"] >= 0.999

    def test_gsp_schedule_rows(self):
        rows = ablations.gsp_schedule_ablation(QUICK)
        schedules = {r.variant for r in rows}
        assert "bfs" in schedules and "random" in schedules

    def test_aggregation_rows(self):
        rows = ablations.aggregation_ablation(QUICK, n_trials=2)
        assert {r.variant for r in rows} == {"mean", "median", "trimmed-mean"}
        for r in rows:
            assert 0 <= r.value < 0.5

    def test_inference_init_rows(self):
        rows = ablations.inference_init_ablation(QUICK)
        iters = {r.variant: r.value for r in rows if r.metric == "iterations"}
        # Random init needs (weakly) more iterations than empirical.
        assert iters["random"] >= iters["empirical"]


class TestDailyRefresh:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments import daily_refresh

        return daily_refresh.run(QUICK)

    def test_one_row_per_test_day(self, rows):
        data = default_semisyn(QUICK)
        assert [r.day for r in rows] == list(range(data.test_history.n_days))

    def test_versions_increment_per_refresh(self, rows):
        assert [r.store_version for r in rows] == list(
            range(2, len(rows) + 2)
        )

    def test_one_correlation_derivation_per_day(self, rows):
        # Cumulative Γ_R derivations grow by exactly one per day: the
        # single refreshed slot, never the whole table.
        assert [r.corr_derivations for r in rows] == list(
            range(1, len(rows) + 1)
        )

    def test_format_table(self, rows):
        from repro.experiments import daily_refresh

        text = daily_refresh.format_table(rows)
        assert "refreshed MAPE" in text
        assert str(rows[-1].store_version) in text
