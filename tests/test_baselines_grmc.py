"""Unit tests for the GRMC baseline."""

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.baselines import EstimationContext, GRMCEstimator
from repro.baselines.grmc import graph_laplacian


class TestGraphLaplacian:
    def test_row_sums_zero(self, grid_net):
        lap = graph_laplacian(grid_net).toarray()
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_diagonal_is_degree(self, grid_net):
        lap = graph_laplacian(grid_net).toarray()
        for i in range(grid_net.n_roads):
            assert lap[i, i] == grid_net.degree(i)

    def test_positive_semidefinite(self, grid_net):
        lap = graph_laplacian(grid_net).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() > -1e-9

    def test_no_edges(self):
        net = repro.TrafficNetwork([repro.Road(road_id="a")], [])
        lap = graph_laplacian(net)
        assert lap.shape == (1, 1)
        assert lap.nnz == 0

    def test_smoothness_quadratic_form(self, line_net):
        lap = graph_laplacian(line_net).toarray()
        smooth = np.linspace(0, 1, 6)
        rough = np.array([0, 1, 0, 1, 0, 1.0])
        assert smooth @ lap @ smooth < rough @ lap @ rough


class TestGRMCEstimator:
    def test_config_validation(self):
        with pytest.raises(ModelError):
            GRMCEstimator(rank=0)
        with pytest.raises(ModelError):
            GRMCEstimator(reg=-1)
        with pytest.raises(ModelError):
            GRMCEstimator(n_iterations=0)

    def test_probes_pass_through(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        probes = {1: 33.0, 8: 71.0}
        context = EstimationContext(net, samples, probes)
        field = GRMCEstimator(n_iterations=5).estimate(context)
        assert field[1] == pytest.approx(33.0)
        assert field[8] == pytest.approx(71.0)

    def test_output_positive_and_finite(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {0: 40.0})
        field = GRMCEstimator(n_iterations=5).estimate(context)
        assert np.all(np.isfinite(field))
        assert np.all(field > 0)

    def test_completes_low_rank_structure(self):
        """On exactly low-rank data GRMC should recover hidden entries."""
        net = repro.grid_network(4, 4)
        rng = np.random.default_rng(3)
        u = rng.normal(size=(30, 2))
        v = rng.normal(size=(net.n_roads, 2))
        matrix = 50 + u @ v.T
        matrix = np.maximum(matrix, 5.0)
        history, current = matrix[:-1], matrix[-1]
        probes = {i: float(current[i]) for i in range(0, net.n_roads, 2)}
        context = EstimationContext(net, history, probes)
        field = GRMCEstimator(rank=4, reg=0.01, gamma=0.0, n_iterations=30).estimate(
            context
        )
        hidden = [i for i in range(net.n_roads) if i not in probes]
        errors = np.abs(field[hidden] - current[hidden]) / current[hidden]
        baseline = np.abs(history.mean(axis=0)[hidden] - current[hidden]) / current[hidden]
        assert errors.mean() < baseline.mean()

    def test_deterministic_given_seed(self, small_world):
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {0: 45.0})
        a = GRMCEstimator(seed=1, n_iterations=4).estimate(context)
        b = GRMCEstimator(seed=1, n_iterations=4).estimate(context)
        assert np.allclose(a, b)

    def test_graph_regularization_smooths(self, small_world):
        """Higher gamma should pull adjacent estimates together."""
        net = small_world["network"]
        samples = small_world["history"].slot_samples(small_world["slot"])
        context = EstimationContext(net, samples, {0: 20.0})
        lap = graph_laplacian(net).toarray()
        rough = GRMCEstimator(gamma=0.0, n_iterations=8, seed=2).estimate(context)
        smooth = GRMCEstimator(gamma=50.0, n_iterations=8, seed=2).estimate(context)
        # Compare the deviation fields (estimates minus history mean).
        mean = samples.mean(axis=0)
        dev_rough = rough - mean
        dev_smooth = smooth - mean
        assert dev_smooth @ lap @ dev_smooth <= dev_rough @ lap @ dev_rough + 1e-6
