"""Integration tests: the instrumented pipeline end to end.

Enables the *global* registry/tracer (the ones the hot paths write to),
runs real queries, and checks the resulting span tree, metric catalog,
export round trips, convergence warnings, and the CLI surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro import errors, obs
from repro.core.gsp import GSPConfig, GSPEngine, GSPKernel, GSPSchedule
from repro.errors import ConvergenceWarning


@pytest.fixture(autouse=True)
def clean_obs():
    """Enable obs for the test, restore the disabled default afterwards."""
    obs.configure(metrics=True, tracing=True)
    obs.get_metrics().clear()
    obs.get_tracer().reset()
    yield
    obs.disable_all()
    obs.get_metrics().clear()
    obs.get_tracer().reset()


@pytest.fixture()
def query_world(tiny_dataset, tiny_system):
    market = repro.CrowdMarket(
        tiny_dataset.network,
        tiny_dataset.pool,
        tiny_dataset.cost_model,
        rng=np.random.default_rng(5),
    )
    truth = repro.truth_oracle_for(tiny_dataset.test_history, 0, tiny_dataset.slot)
    return tiny_dataset, tiny_system, market, truth


def run_query(query_world, **kwargs):
    data, system, market, truth = query_world
    return system.answer_query(
        data.queried, data.slot, budget=20, market=market, truth=truth,
        rng=np.random.default_rng(6), **kwargs,
    )


class TestSpanTree:
    def test_answer_query_produces_nested_tree(self, query_world):
        run_query(query_world)
        records = {r.name: r for r in obs.get_tracer().records()}
        root = records["pipeline.answer_query"]
        assert root.parent_id is None
        for child in ("ocs.select", "crowd.execute", "gsp.propagate"):
            assert records[child].parent_id == root.span_id, child
        assert root.attrs["selector"] == "hybrid"
        assert root.attrs["budget_spent"] == 20
        assert root.attrs["gsp_sweeps"] == records["gsp.propagate"].attrs["sweeps"]

    def test_gsp_span_carries_per_sweep_events(self, query_world):
        result = run_query(query_world)
        records = {r.name: r for r in obs.get_tracer().records()}
        sweeps = [
            e for e in records["gsp.propagate"].events if e["name"] == "gsp.sweep"
        ]
        assert len(sweeps) == result.gsp.sweeps
        deltas = [e["attrs"]["max_delta"] for e in sweeps]
        assert deltas == list(result.gsp.max_delta_history)

    def test_crowd_span_has_one_probe_event_per_road(self, query_world):
        result = run_query(query_world)
        records = {r.name: r for r in obs.get_tracer().records()}
        probes = records["crowd.execute"].events
        assert len(probes) == len(result.selection.selected)
        assert {e["attrs"]["road"] for e in probes} == set(result.selection.selected)

    def test_exports_validate_and_round_trip(self, query_world, tmp_path):
        run_query(query_world)
        tracer = obs.get_tracer()
        spans = obs.validate_trace_jsonl(tracer.to_jsonl())
        assert {s["name"] for s in spans} >= {
            "pipeline.answer_query", "ocs.select", "crowd.execute", "gsp.propagate",
        }
        obs.validate_chrome_trace(tracer.to_chrome_trace())


class TestMetricsCatalog:
    def test_query_populates_the_pipeline_metrics(self, query_world):
        run_query(query_world)
        snap = obs.get_metrics().snapshot()
        counters = {
            (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
            for e in snap["counters"]
        }
        assert counters[("pipeline.queries", (("selector", "hybrid"),))] == 1
        assert counters[("crowd.cost_spent", ())] == 20
        assert counters[("pipeline.budget_spent", ())] == 20
        names = {e["name"] for e in snap["counters"]}
        assert "gsp.propagations" in names
        assert "gsp.clamped_roads" in names
        gauges = {e["name"]: e["value"] for e in snap["gauges"]}
        assert gauges["crowd.budget_total"] == 20
        assert gauges["crowd.budget_remaining"] == 0
        histograms = {e["name"] for e in snap["histograms"]}
        assert "pipeline.latency_seconds" in histograms
        assert "gsp.sweeps" in histograms
        assert "gsp.runtime_seconds" in histograms

    def test_snapshot_round_trips_through_both_exporters(self, query_world):
        run_query(query_world)
        snap = obs.get_metrics().snapshot()
        # JSON-lines is lossless.
        assert obs.metrics_from_jsonl(obs.metrics_to_jsonl(snap)) == snap
        # Prometheus preserves every family and total counter mass.
        families = obs.parse_prometheus_text(obs.to_prometheus_text(snap))
        assert families["pipeline_queries_total"]["kind"] == "counter"
        spent = families["crowd_cost_spent_total"]["samples"]
        assert spent["crowd_cost_spent_total"] == 20.0

    def test_gsp_cache_metrics_replace_adhoc_flags(self, small_world):
        engine = GSPEngine(small_world["network"])
        params = small_world["params"]
        observed = {0: 30.0, 7: 45.0}
        cfg = GSPConfig(schedule=GSPSchedule.BFS_COLORED, kernel=GSPKernel.VECTORIZED)
        engine.propagate(params, observed, cfg)
        engine.propagate(params, observed, cfg)
        snap = obs.get_metrics().snapshot()
        lookups = {
            tuple(sorted(e["labels"].items())): e["value"]
            for e in snap["counters"]
            if e["name"] == "gsp.cache.lookups"
        }
        assert lookups[(("cache", "structure"), ("result", "miss"))] == 1
        assert lookups[(("cache", "structure"), ("result", "hit"))] == 1
        assert lookups[(("cache", "schedule"), ("result", "miss"))] == 1
        assert lookups[(("cache", "schedule"), ("result", "hit"))] == 1


class TestDeprecatedAliases:
    def test_gspresult_cache_flags_warn_but_work(self, small_world):
        engine = GSPEngine(small_world["network"])
        cfg = GSPConfig(schedule=GSPSchedule.BFS_COLORED, kernel=GSPKernel.VECTORIZED)
        first = engine.propagate(small_world["params"], {0: 30.0}, cfg)
        second = engine.propagate(small_world["params"], {0: 30.0}, cfg)
        # The aliases warn once per process; clear the dedup registry so
        # this test is order-independent.
        errors.reset_deprecation_warnings("gsp.result.structure_cache_hit")
        errors.reset_deprecation_warnings("gsp.result.schedule_cache_hit")
        with pytest.warns(DeprecationWarning, match="structure_cache_hit"):
            assert first.structure_cache_hit is False
        with pytest.warns(DeprecationWarning, match="schedule_cache_hit"):
            assert second.schedule_cache_hit is True
        # The replacement surface carries the same information silently.
        assert second.provenance.structure_cache_hit is True
        assert first.provenance.schedule_cache_hit is False


class TestConvergenceWarnings:
    def test_gsp_budget_exhaustion_warns_and_counts(self, small_world):
        engine = GSPEngine(small_world["network"])
        cfg = GSPConfig(epsilon=1e-12, max_sweeps=2)
        with pytest.warns(ConvergenceWarning, match="max_sweeps=2"):
            result = engine.propagate(small_world["params"], {0: 30.0}, cfg)
        assert not result.converged
        failures = [
            e for e in obs.get_metrics().snapshot()["counters"]
            if e["name"] == "gsp.convergence.failures"
        ]
        assert sum(e["value"] for e in failures) == 1

    def test_inference_budget_exhaustion_warns_and_counts(self, line_net, rng):
        samples = 40.0 + rng.normal(size=(6, line_net.n_roads))
        config = repro.RTFInferenceConfig(
            max_iters=2, tol=1e-12, init="random", seed=3
        )
        with pytest.warns(ConvergenceWarning, match="max_iters=2"):
            _, diag = repro.infer_slot_parameters(line_net, samples, 0, config)
        assert not diag.converged
        nonconverged = [
            e for e in obs.get_metrics().snapshot()["counters"]
            if e["name"] == "inference.nonconverged"
        ]
        assert sum(e["value"] for e in nonconverged) == 1


class TestCliSurface:
    def test_stats_subcommand_writes_valid_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        chrome_path = tmp_path / "chrome.json"
        code = main(
            [
                "stats", "--roads", "40", "--queried", "6",
                "--train-days", "6", "--slots", "3", "--budget", "10",
                "--metrics-out", str(metrics_path),
                "--trace", str(trace_path),
                "--chrome-trace", str(chrome_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE pipeline_queries_total counter" in out
        snapshot = obs.read_metrics_json(str(metrics_path))
        assert any(e["name"] == "pipeline.queries" for e in snapshot["counters"])
        spans = obs.validate_trace_jsonl(trace_path.read_text())
        assert {s["name"] for s in spans} >= {"pipeline.answer_query", "ocs.select"}
        obs.validate_chrome_trace(json.loads(chrome_path.read_text()))

    def test_query_with_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "query", "--roads", "40", "--queried", "6",
                "--train-days", "6", "--slots", "3", "--budget", "10",
                "--trace", str(trace_path),
            ]
        )
        assert code == 0
        spans = obs.validate_trace_jsonl(trace_path.read_text())
        assert any(s["name"] == "gsp.propagate" for s in spans)

    def test_run_all_metrics_out(self, tmp_path):
        from repro.experiments.scalability import main as scalability_main

        metrics_path = tmp_path / "scal.json"
        scalability_main(["--scale", "quick", "--metrics-out", str(metrics_path)])
        snapshot = obs.read_metrics_json(str(metrics_path))
        assert any(e["name"] == "gsp.propagations" for e in snapshot["counters"])
