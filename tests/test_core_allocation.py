"""Unit tests for cross-slot budget allocation."""

import numpy as np
import pytest

import repro
from repro.errors import BudgetError
from repro.core.allocation import allocate_budget, slot_need
from repro.core.rtf import RTFModel, RTFSlot


def model_with_sigmas(net, sigmas_by_slot):
    slots = [
        RTFSlot(
            slot,
            np.full(net.n_roads, 50.0),
            np.asarray(sigma, dtype=float),
            np.full(net.n_edges, 0.5),
        )
        for slot, sigma in sigmas_by_slot.items()
    ]
    return RTFModel(net, slots)


class TestSlotNeed:
    def test_sums_queried_sigmas(self, line_net):
        model = model_with_sigmas(
            line_net, {1: [1, 2, 3, 4, 5, 6], 2: [2, 2, 2, 2, 2, 2]}
        )
        need = slot_need(model, [0, 2], [1, 2])
        assert need[1] == pytest.approx(1 + 3)
        assert need[2] == pytest.approx(4)

    def test_validation(self, line_net):
        model = model_with_sigmas(line_net, {1: [1] * 6})
        with pytest.raises(BudgetError):
            slot_need(model, [], [1])
        with pytest.raises(BudgetError):
            slot_need(model, [0], [])


class TestAllocateBudget:
    @pytest.fixture()
    def model(self, line_net):
        return model_with_sigmas(
            line_net,
            {
                1: [1.0] * 6,    # calm slot
                2: [3.0] * 6,    # volatile slot (3x need)
                3: [1.0] * 6,
            },
        )

    def test_sums_to_total(self, model):
        allocation = allocate_budget(model, [0, 1, 2], [1, 2, 3], total_budget=50)
        assert sum(allocation.values()) == 50

    def test_proportional_to_need(self, model):
        allocation = allocate_budget(model, [0, 1, 2], [1, 2, 3], total_budget=100)
        assert allocation[2] > allocation[1]
        assert allocation[2] == pytest.approx(60, abs=1)
        assert allocation[1] == pytest.approx(20, abs=1)

    def test_floor_respected(self, model):
        allocation = allocate_budget(
            model, [0], [1, 2, 3], total_budget=30, floor=5
        )
        assert all(v >= 5 for v in allocation.values())
        assert sum(allocation.values()) == 30

    def test_floor_exceeds_budget(self, model):
        with pytest.raises(BudgetError, match="exceeds"):
            allocate_budget(model, [0], [1, 2, 3], total_budget=10, floor=5)

    def test_equal_need_splits_evenly(self, line_net):
        model = model_with_sigmas(line_net, {1: [2.0] * 6, 2: [2.0] * 6})
        allocation = allocate_budget(model, [0, 1], [1, 2], total_budget=10)
        assert allocation[1] == allocation[2] == 5

    def test_invalid_budget(self, model):
        with pytest.raises(BudgetError):
            allocate_budget(model, [0], [1], total_budget=0)

    def test_end_to_end_with_fitted_model(self, tiny_dataset, tiny_system):
        """Allocation works straight off a fitted model (single slot)."""
        allocation = allocate_budget(
            tiny_system.model,
            tiny_dataset.queried,
            [tiny_dataset.slot],
            total_budget=40,
        )
        assert allocation == {tiny_dataset.slot: 40}
