"""RA007–RA012 rule tests: seeded-bug and clean fixtures per rule.

Each rule gets at least one fixture that plants the exact bug the rule
exists for (proving it fires) and one idiomatic-clean fixture (proving
it stays quiet on the pattern the codebase actually uses).
"""

from __future__ import annotations

from tests.analyze_util import check
from tools.analyze.rules.ra007_snapshot_pinning import RA007SnapshotPinning
from tools.analyze.rules.ra008_deadline_propagation import RA008DeadlinePropagation
from tools.analyze.rules.ra009_precision_escape import RA009PrecisionEscape
from tools.analyze.rules.ra010_mmap_write_safety import RA010MmapWriteSafety
from tools.analyze.rules.ra011_metrics_cardinality import RA011MetricsCardinality
from tools.analyze.rules.ra012_blocking_under_lock import RA012BlockingUnderLock


class TestRA007SnapshotPinning:
    def test_torn_two_snapshot_request_fires(self, tmp_path):
        """The seeded bug: two store reads straddling one request."""
        findings = check(RA007SnapshotPinning(), tmp_path, {
            "src/pipeline.py": """
    def serve_request(store, roads):
        snap_a = store.current()
        speeds = snap_a.speeds(roads)
        snap_b = store.current()
        return speeds, snap_b.version
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA007"
        assert "acquires 2 snapshots" in findings[0].message
        assert "serve_request" in findings[0].message

    def test_single_pin_passed_through_is_clean(self, tmp_path):
        findings = check(RA007SnapshotPinning(), tmp_path, {
            "src/pipeline.py": """
    def serve_request(store, roads):
        snapshot = store.current()
        return handle(snapshot, roads)

    def handle(snapshot, roads):
        return snapshot.speeds(roads)
""",
        })
        assert findings == []

    def test_raw_store_internal_access_fires(self, tmp_path):
        findings = check(RA007SnapshotPinning(), tmp_path, {
            "src/serve/handlers.py": """
    def peek(store):
        return store._slots
""",
        })
        assert len(findings) == 1
        assert "._slots" in findings[0].message
        assert "ModelStore" in findings[0].message

    def test_raw_snapshot_internal_access_fires(self, tmp_path):
        findings = check(RA007SnapshotPinning(), tmp_path, {
            "src/backends/impl.py": """
    def read(snapshot):
        return snapshot._params
""",
        })
        assert len(findings) == 1
        assert "ModelSnapshot" in findings[0].message

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        """The pin contract only binds request-path modules."""
        findings = check(RA007SnapshotPinning(), tmp_path, {
            "src/offline_tools.py": """
    def compare(store):
        before = store.current()
        after = store.current()
        return before, after, store._slots
""",
        })
        assert findings == []

    def test_conditional_refetch_fallback_counts_sites(self, tmp_path):
        """Two lexical acquisition sites fire even under branches —
        the idiomatic fallback acquires at most one at runtime but
        should still route through a single pin site."""
        findings = check(RA007SnapshotPinning(), tmp_path, {
            "src/pipeline.py": """
    def serve(store, snapshot, roads):
        if snapshot is None:
            snapshot = store.current()
        return snapshot.speeds(roads)
""",
        })
        assert findings == []


class TestRA008DeadlinePropagation:
    def test_dropped_deadline_on_blocking_callee_fires(self, tmp_path):
        """The seeded bug: a serve path that forgets the deadline."""
        findings = check(RA008DeadlinePropagation(), tmp_path, {
            "src/serve/app.py": """
    import time

    def blocking_fetch(payload, deadline=None):
        time.sleep(0.1)
        return payload

    def handle(request, deadline):
        return blocking_fetch(request)
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA008"
        assert "never passes its deadline" in findings[0].message
        assert "blocking" in findings[0].message

    def test_explicit_none_fires(self, tmp_path):
        findings = check(RA008DeadlinePropagation(), tmp_path, {
            "src/serve/app.py": """
    import time

    def blocking_fetch(payload, deadline=None):
        time.sleep(0.1)
        return payload

    def handle(request, deadline):
        return blocking_fetch(request, deadline=None)
""",
        })
        assert len(findings) == 1
        assert "binds deadline=None" in findings[0].message

    def test_forwarded_deadline_is_clean(self, tmp_path):
        findings = check(RA008DeadlinePropagation(), tmp_path, {
            "src/serve/app.py": """
    import time

    def blocking_fetch(payload, deadline=None):
        time.sleep(0.1)
        return payload

    def handle(request, deadline):
        return blocking_fetch(request, deadline=deadline)

    def positional(request, deadline):
        return blocking_fetch(request, deadline)
""",
        })
        assert findings == []

    def test_deadline_checking_callee_counts(self, tmp_path):
        """A callee that consults its deadline (even without blocking)
        loses real cancellation when the caller drops it."""
        findings = check(RA008DeadlinePropagation(), tmp_path, {
            "src/serve/app.py": """
    def guarded(work, deadline=None):
        if deadline is not None and deadline.remaining() <= 0:
            raise TimeoutError("late")
        return work

    def handle(request, deadline):
        return guarded(request)
""",
        })
        assert len(findings) == 1
        assert "deadline-checking" in findings[0].message

    def test_non_blocking_callee_is_skipped(self, tmp_path):
        findings = check(RA008DeadlinePropagation(), tmp_path, {
            "src/serve/app.py": """
    def pure(payload, deadline=None):
        return payload * 2

    def handle(request, deadline):
        return pure(request)
""",
        })
        assert findings == []


class TestRA009PrecisionEscape:
    def test_float32_into_query_result_fires(self, tmp_path):
        findings = check(RA009PrecisionEscape(), tmp_path, {
            "src/results.py": """
    import numpy as np

    def publish(speeds):
        compact = speeds.astype(np.float32)
        return QueryResult(speeds=compact)
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA009"
        assert "float32" in findings[0].message
        assert "QueryResult" in findings[0].message

    def test_laundered_float64_is_clean(self, tmp_path):
        findings = check(RA009PrecisionEscape(), tmp_path, {
            "src/results.py": """
    import numpy as np

    def publish(speeds):
        compact = speeds.astype(np.float32)
        out = compact.astype(np.float64)
        return QueryResult(speeds=out)
""",
        })
        assert findings == []

    def test_taint_flows_through_helper_returns(self, tmp_path):
        findings = check(RA009PrecisionEscape(), tmp_path, {
            "src/results.py": """
    import numpy as np

    def kernel(speeds):
        return np.asarray(speeds, dtype=np.float32)

    def publish(speeds):
        estimate = kernel(speeds)
        return BackendEstimate(speeds=estimate)
""",
        })
        assert len(findings) == 1
        assert "BackendEstimate" in findings[0].message

    def test_strong_update_launders_rebinding(self, tmp_path):
        """``x = x.astype(np.float64)`` kills the taint on x itself."""
        findings = check(RA009PrecisionEscape(), tmp_path, {
            "src/results.py": """
    import numpy as np

    def publish(speeds):
        speeds = speeds.astype(np.float32)
        speeds = speeds.astype(np.float64)
        return QueryResult(speeds=speeds)
""",
        })
        assert findings == []

    def test_conditional_cast_keeps_taint(self, tmp_path):
        """A branch-local float32 cast may or may not run; the merged
        state must stay tainted (weak update)."""
        findings = check(RA009PrecisionEscape(), tmp_path, {
            "src/results.py": """
    import numpy as np

    def publish(speeds, compact):
        if compact:
            speeds = speeds.astype(np.float32)
        return QueryResult(speeds=speeds)
""",
        })
        assert len(findings) == 1

    def test_dtype_string_source(self, tmp_path):
        findings = check(RA009PrecisionEscape(), tmp_path, {
            "src/results.py": """
    import numpy as np

    def publish(speeds):
        compact = np.asarray(speeds, dtype="float32")
        return QueryResult(speeds=compact)
""",
        })
        assert len(findings) == 1


class TestRA010MmapWriteSafety:
    def test_inplace_write_to_snapshot_view_fires(self, tmp_path):
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    def corrupt(path, network):
        snap = read_snapshot(path, network)
        view = snap.slot_view(0)
        view[0] = 99.0
        return view
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA010"
        assert "subscript store" in findings[0].message

    def test_copy_before_write_is_clean(self, tmp_path):
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    def patch(path, network):
        snap = read_snapshot(path, network)
        fixed = snap.slot_view(0).copy()
        fixed[0] = 99.0
        return fixed
""",
        })
        assert findings == []

    def test_taint_survives_helper_return(self, tmp_path):
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    def load(path, network):
        snap = read_snapshot(path, network)
        return snap.slot_view(0)

    def corrupt(path, network):
        view = load(path, network)
        view += 1.0
        return view
""",
        })
        assert len(findings) == 1
        assert "augmented assignment" in findings[0].message

    def test_mutating_helper_flagged_at_call_site(self, tmp_path):
        """Interprocedural param sink: passing a view to a function
        that writes its parameter in place."""
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    def scale(arr, factor):
        arr[:] = arr * factor

    def apply(path, network):
        view = read_snapshot(path, network)
        scale(view, 2.0)
""",
        })
        assert len(findings) == 1
        assert "scale" in findings[0].message
        assert "arr" in findings[0].message

    def test_out_kwarg_fires(self, tmp_path):
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    import numpy as np

    def accumulate(path, network, delta):
        view = read_snapshot(path, network)
        np.add(view, delta, out=view)
""",
        })
        assert any("out= argument" in f.message for f in findings)

    def test_setflags_readonly_hardening_is_clean(self, tmp_path):
        """``setflags(write=False)`` protects the view — not a write."""
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    def harden(path, network):
        view = read_snapshot(path, network)
        view.setflags(write=False)
        return view
""",
        })
        assert findings == []

    def test_setflags_enabling_write_fires(self, tmp_path):
        findings = check(RA010MmapWriteSafety(), tmp_path, {
            "src/loader.py": """
    def unprotect(path, network):
        view = read_snapshot(path, network)
        view.setflags(write=True)
        return view
""",
        })
        assert len(findings) == 1
        assert ".setflags()" in findings[0].message


class TestRA011MetricsCardinality:
    def test_fstring_label_fires(self, tmp_path):
        findings = check(RA011MetricsCardinality(), tmp_path, {
            "src/obs_site.py": """
    def record(metrics, road_id):
        metrics.counter("app.requests", {"road": f"road-{road_id}"}).inc()
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA011"
        assert "'road'" in findings[0].message
        assert "unbounded" in findings[0].message

    def test_str_of_variable_fires(self, tmp_path):
        findings = check(RA011MetricsCardinality(), tmp_path, {
            "src/obs_site.py": """
    def record(metrics, version):
        metrics.gauge("app.version", labels={"v": str(version)}).set(1)
""",
        })
        assert len(findings) == 1

    def test_non_string_constant_fires(self, tmp_path):
        findings = check(RA011MetricsCardinality(), tmp_path, {
            "src/obs_site.py": """
    def record(metrics):
        metrics.counter("app.requests", {"slot": 3}).inc()
""",
        })
        assert len(findings) == 1
        assert "non-string constant" in findings[0].message

    def test_dynamic_metric_name_fires(self, tmp_path):
        findings = check(RA011MetricsCardinality(), tmp_path, {
            "src/obs_site.py": """
    def record(metrics, backend):
        metrics.counter(f"app.{backend}.requests").inc()
""",
        })
        assert len(findings) == 1
        assert "metric name" in findings[0].message

    def test_literals_and_bounded_variables_are_clean(self, tmp_path):
        """The codebase's real idioms: literal values and enum-ish
        variables (``{"outcome": outcome}``) stay allowed."""
        findings = check(RA011MetricsCardinality(), tmp_path, {
            "src/obs_site.py": """
    def record(metrics, outcome, backend):
        metrics.counter("app.requests", {"outcome": "ok"}).inc()
        metrics.counter("app.requests", {"outcome": outcome}).inc()
        metrics.histogram(
            "app.latency", [0.1, 1.0], {"backend": backend}
        ).observe(0.5)
""",
        })
        assert findings == []

    def test_dyn_taint_flows_through_assignment(self, tmp_path):
        findings = check(RA011MetricsCardinality(), tmp_path, {
            "src/obs_site.py": """
    def record(metrics, road_id):
        label = f"road-{road_id}"
        metrics.counter("app.requests", {"road": label}).inc()
""",
        })
        assert len(findings) == 1


class TestRA012BlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        findings = check(RA012BlockingUnderLock(), tmp_path, {
            "src/worker.py": """
    import threading
    import time

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()

        def bad(self):
            with self._lock:
                time.sleep(0.1)
""",
        })
        assert len(findings) == 1
        assert findings[0].rule == "RA012"
        assert "sleep" in findings[0].message
        assert "_lock" in findings[0].message

    def test_transitively_blocking_callee_fires(self, tmp_path):
        findings = check(RA012BlockingUnderLock(), tmp_path, {
            "src/worker.py": """
    import threading
    import time

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()

        def _flush(self):
            time.sleep(0.5)

        def indirect(self):
            with self._lock:
                self._flush()
""",
        })
        assert len(findings) == 1
        assert "may block" in findings[0].message
        assert "_flush" in findings[0].message

    def test_io_outside_lock_is_clean(self, tmp_path):
        findings = check(RA012BlockingUnderLock(), tmp_path, {
            "src/worker.py": """
    import threading
    import time

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = {}

        def good(self):
            with self._lock:
                snapshot = dict(self._state)
            time.sleep(0.1)
            return snapshot
""",
        })
        assert findings == []

    def test_condition_wait_on_held_lock_is_exempt(self, tmp_path):
        """``cond.wait()`` releases the lock it wraps — the
        release-and-wait idiom, not blocking under a lock."""
        findings = check(RA012BlockingUnderLock(), tmp_path, {
            "src/worker.py": """
    import threading

    class Mailbox:
        def __init__(self):
            self._lock = threading.Lock()
            self._ready = threading.Condition(self._lock)
            self._items = []

        def take(self):
            with self._ready:
                while not self._items:
                    self._ready.wait()
                return self._items.pop()
""",
        })
        assert findings == []

    def test_file_io_under_lock_fires(self, tmp_path):
        findings = check(RA012BlockingUnderLock(), tmp_path, {
            "src/worker.py": """
    import threading

    class Recorder:
        def __init__(self):
            self._lock = threading.Lock()
            self._events = []

        def dump(self, path):
            with self._lock:
                with open(path, "w") as fh:
                    fh.write(str(self._events))
""",
        })
        assert len(findings) == 1
        assert "file I/O" in findings[0].message
