"""RA002: the cross-module lock acquisition-order graph must be acyclic.

Consumes the shared interprocedural model from
:mod:`tools.analyze.callgraph` (per-function lock summaries, heuristic
call resolution, constructor lock aliasing) and adds only the
lock-order-specific parts:

* an edge ``L -> M`` means some code path acquires ``M`` while holding
  ``L`` (lexically nested ``with``, or a call whose transitive
  may-acquire set contains ``M``);
* a cycle in that graph is a potential deadlock.  Self-edges on
  reentrant locks (RLock) are ignored.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from tools.analyze.callgraph import CallGraph, build_callgraph
from tools.analyze.core import Finding, Project, Rule


class RA002LockOrder(Rule):
    rule_id = "RA002"
    name = "lock-order"
    rationale = (
        "two threads taking the same locks in opposite orders deadlock; "
        "an acyclic acquisition graph rules that out statically"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        kinds = _canonical_kinds(graph)
        edges = _collect_edges(graph)
        return self._report_cycles(graph, kinds, edges)

    def _report_cycles(
        self,
        graph: CallGraph,
        kinds: Dict[str, str],
        edges: Dict[Tuple[str, str], Tuple[str, int, str]],
    ) -> List[Finding]:
        order: Dict[str, Set[str]] = {}
        findings: List[Finding] = []
        for (src, dst), (path, line, via) in sorted(edges.items()):
            if src == dst:
                if kinds.get(src) == "rlock":
                    continue  # reentrant: same-thread reacquisition is fine
                module = graph.project.module(path)
                findings.append(
                    self.finding(
                        module if module is not None else path,
                        line,
                        f"non-reentrant lock {_pretty(src)} may be re-acquired "
                        f"while already held (via {via})",
                    )
                )
                continue
            order.setdefault(src, set()).add(dst)

        for cycle in _find_cycles(order):
            witnesses = []
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                path, line, via = edges[(a, b)]
                witnesses.append(f"{_pretty(a)} -> {_pretty(b)} ({path}:{line}, {via})")
            path, line, _ = edges[(cycle[0], cycle[1 % len(cycle)])]
            module = graph.project.module(path)
            findings.append(
                self.finding(
                    module if module is not None else path,
                    line,
                    "lock-order cycle (potential deadlock): "
                    + "; ".join(witnesses),
                )
            )
        return findings


def _pretty(node_id: str) -> str:
    return node_id.split("::", 1)[-1]


def _canonical_kinds(graph: CallGraph) -> Dict[str, str]:
    """Fold kinds over alias groups without mutating the shared graph.

    A group containing any RLock is reentrant — the merged nodes are
    literally the same object.
    """
    canonical: Dict[str, str] = {}
    for node, kind in sorted(graph.kinds.items()):
        root = graph.aliases.find(node)
        if kind == "rlock":
            canonical[root] = "rlock"
        else:
            canonical.setdefault(root, kind)
    return canonical


def _collect_edges(graph: CallGraph) -> Dict[Tuple[str, str], Tuple[str, int, str]]:
    """Edges (held -> acquired) with one witness (path, line, via) each."""
    find = graph.aliases.find

    # Fixpoint: what locks can each function acquire, transitively?
    may_acquire = graph.fixpoint(
        {key: {find(lock) for lock in func.acquires} for key, func in graph.functions.items()}
    )

    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

    def add_edge(src: str, dst: str, path: str, line: int, via: str) -> None:
        key = (src, dst)
        if key not in edges:
            edges[key] = (path, line, via)

    for func_key, func in sorted(graph.functions.items()):
        relpath = func.module.relpath
        for held, lock, line in func.nested:
            for src in sorted(held):
                add_edge(find(src), find(lock), relpath, line, func_key)
        for site in func.calls:
            if not site.held:
                continue
            for callee in graph.resolve(site.desc):
                for lock in sorted(may_acquire.get(callee, set())):
                    for src in sorted(site.held):
                        add_edge(
                            find(src),
                            find(lock),
                            relpath,
                            site.line,
                            f"{func_key} -> {callee}",
                        )
    return edges


def _find_cycles(order: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles via DFS (one representative per cycle set)."""
    cycles: List[List[str]] = []
    seen_cycles: Set[FrozenSet[str]] = set()
    nodes = sorted(set(order) | {d for dsts in order.values() for d in dsts})

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for nxt in sorted(order.get(node, ())):
            if nxt == start and len(path) > 1:
                key = frozenset(path)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(list(path))
            elif nxt not in visited and nxt > start:
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in nodes:
        dfs(start, start, [start], {start})
    return cycles
