"""RA002: the cross-module lock acquisition-order graph must be acyclic.

Builds a conservative interprocedural model:

* lock objects are module-level ``threading.Lock()`` assignments and
  per-class lock attributes (Conditions alias the lock they wrap;
  parameter-assigned locks are aliased to the lock their constructor
  call sites pass in, e.g. ``Counter(name, key, self._lock)`` inside
  ``MetricsRegistry`` makes ``Counter._lock`` *be* the registry lock);
* every function gets a summary of locks it may acquire (directly or
  via calls, to a fixpoint);
* an edge ``L -> M`` means some code path acquires ``M`` while holding
  ``L``.  A cycle in that graph is a potential deadlock.  Self-edges on
  reentrant locks (RLock) are ignored.

Call resolution is heuristic (self-methods, same-module functions,
unique method names project-wide) — good enough to be sound in practice
for this codebase and cheap enough to run on every commit.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from tools.analyze.core import Finding, Module, Project, Rule, self_attr_path
from tools.analyze.locks import (
    CONTAINER_MUTATORS,
    ClassLockInfo,
    collect_class_locks,
    collect_module_locks,
    module_lock_in_with,
    with_item_lock_attrs,
)

#: Method names too generic to resolve (dict/list/str traffic would wire
#: unrelated classes together).
_UNRESOLVABLE_METHODS = CONTAINER_MUTATORS | {
    "get",
    "items",
    "keys",
    "values",
    "copy",
    "format",
    "join",
    "split",
    "strip",
    "encode",
    "decode",
    "notify",
    "notify_all",
    "wait",
    "acquire",
    "release",
    # threading.Thread lifecycle: a `.start()`/`.join()` receiver is a
    # Thread, and the target runs on a fresh stack holding no locks.
    "start",
    "join",
    "run",
    "is_alive",
}

# Call descriptors: ("self", class_key, name) | ("name", module_relpath, name)
# | ("meth", name) | ("ctor", class_name)
CallDesc = Tuple[str, ...]


@dataclasses.dataclass
class _FuncInfo:
    key: str
    node: ast.AST
    module: Module
    class_info: Optional[ClassLockInfo]
    acquires: Set[str] = dataclasses.field(default_factory=set)
    #: (held-before, acquired, line) — lexically nested acquisitions
    nested: List[Tuple[FrozenSet[str], str, int]] = dataclasses.field(
        default_factory=list
    )
    #: (held, descriptor, line)
    calls: List[Tuple[FrozenSet[str], CallDesc, int]] = dataclasses.field(
        default_factory=list
    )


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        self.add(item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic canonical representative: lexicographic min.
            lo, hi = sorted((ra, rb))
            self.parent[hi] = lo


class RA002LockOrder(Rule):
    rule_id = "RA002"
    name = "lock-order"
    rationale = (
        "two threads taking the same locks in opposite orders deadlock; "
        "an acyclic acquisition graph rules that out statically"
    )

    def check(self, project: Project) -> List[Finding]:
        model = _build_model(project)
        # Fold kinds over alias groups: a group containing any RLock is
        # reentrant (the merged nodes are literally the same object).
        canonical_kinds: Dict[str, str] = {}
        for node, kind in sorted(model.kinds.items()):
            root = model.aliases.find(node)
            if kind == "rlock":
                canonical_kinds[root] = "rlock"
            else:
                canonical_kinds.setdefault(root, kind)
        model.kinds = canonical_kinds
        edges = _collect_edges(model)
        return self._report_cycles(model, edges)

    def _report_cycles(
        self, model: "_Model", edges: Dict[Tuple[str, str], Tuple[str, int, str]]
    ) -> List[Finding]:
        graph: Dict[str, Set[str]] = {}
        findings: List[Finding] = []
        for (src, dst), (path, line, via) in sorted(edges.items()):
            if src == dst:
                if model.kinds.get(src) == "rlock":
                    continue  # reentrant: same-thread reacquisition is fine
                findings.append(
                    self.finding(
                        path,
                        line,
                        f"non-reentrant lock {_pretty(src)} may be re-acquired "
                        f"while already held (via {via})",
                    )
                )
                continue
            graph.setdefault(src, set()).add(dst)

        for cycle in _find_cycles(graph):
            witnesses = []
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                path, line, via = edges[(a, b)]
                witnesses.append(f"{_pretty(a)} -> {_pretty(b)} ({path}:{line}, {via})")
            path, line, _ = edges[(cycle[0], cycle[1 % len(cycle)])]
            findings.append(
                self.finding(
                    path,
                    line,
                    "lock-order cycle (potential deadlock): "
                    + "; ".join(witnesses),
                )
            )
        return findings


def _pretty(node_id: str) -> str:
    return node_id.split("::", 1)[-1]


@dataclasses.dataclass
class _Model:
    functions: Dict[str, _FuncInfo]
    kinds: Dict[str, str]
    aliases: _UnionFind
    #: class name -> list of class keys (module.relpath::Class)
    classes_by_name: Dict[str, List[str]]
    #: method name -> list of function keys
    methods_by_name: Dict[str, List[str]]
    #: function basename -> list of top-level function keys
    functions_by_name: Dict[str, List[str]]


def _lock_node(module: Module, owner: Optional[str], attr: str) -> str:
    if owner is None:
        return f"{module.relpath}::{attr}"
    return f"{module.relpath}::{owner}.{attr}"


def _build_model(project: Project) -> _Model:
    functions: Dict[str, _FuncInfo] = {}
    kinds: Dict[str, str] = {}
    aliases = _UnionFind()
    classes_by_name: Dict[str, List[str]] = {}
    methods_by_name: Dict[str, List[str]] = {}
    functions_by_name: Dict[str, List[str]] = {}
    class_infos: Dict[str, ClassLockInfo] = {}
    module_locks: Dict[str, Dict[str, str]] = {}

    for module in project.modules:
        module_locks[module.relpath] = collect_module_locks(module)
        for name, kind in module_locks[module.relpath].items():
            kinds[_lock_node(module, None, name)] = kind
        for info in collect_class_locks(module):
            class_key = f"{module.relpath}::{info.node.name}"
            class_infos[class_key] = info
            for attr, kind in info.attrs.items():
                canonical = info.canonical_attr(attr)
                node = _lock_node(module, info.node.name, canonical)
                if attr == canonical:
                    kinds.setdefault(node, "lock" if kind == "external" else kind)

    # Index classes/methods/functions and build per-function summaries.
    for module in project.modules:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef):
                class_key = f"{module.relpath}::{stmt.name}"
                classes_by_name.setdefault(stmt.name, []).append(class_key)
                info = class_infos.get(class_key)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        key = f"{class_key}.{item.name}"
                        func = _FuncInfo(key, item, module, info)
                        functions[key] = func
                        methods_by_name.setdefault(item.name, []).append(key)
                        _summarize(func, module_locks[module.relpath])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{module.relpath}::{stmt.name}"
                func = _FuncInfo(key, stmt, module, None)
                functions[key] = func
                functions_by_name.setdefault(stmt.name, []).append(key)
                _summarize(func, module_locks[module.relpath])

    _alias_constructor_locks(project, class_infos, module_locks, aliases)
    return _Model(
        functions, kinds, aliases, classes_by_name, methods_by_name, functions_by_name
    )


def _summarize(func: _FuncInfo, mod_locks: Dict[str, str]) -> None:
    """Fill acquires/nested/calls by walking the function body once."""
    module = func.module
    info = func.class_info

    def lock_targets(item: ast.withitem) -> Set[str]:
        nodes: Set[str] = set()
        if info is not None:
            for attr in with_item_lock_attrs(item, info):
                nodes.add(_lock_node(module, info.node.name, attr))
        name = module_lock_in_with(item, mod_locks)
        if name is not None:
            nodes.add(_lock_node(module, None, name))
        return nodes

    def visit(node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                acquired |= lock_targets(item)
                visit(item.context_expr, held)
            for lock in sorted(acquired):
                func.acquires.add(lock)
                if held:
                    func.nested.append((frozenset(held), lock, node.lineno))
            inner = held + tuple(lock for lock in sorted(acquired) if lock not in held)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            desc = _call_desc(node, func)
            if desc is not None:
                func.calls.append((frozenset(held), desc, node.lineno))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    body = getattr(func.node, "body", [])
    for stmt in body:
        visit(stmt, ())


def _call_desc(node: ast.Call, func: _FuncInfo) -> Optional[CallDesc]:
    callee = node.func
    if isinstance(callee, ast.Name):
        return ("name", func.module.relpath, callee.id)
    if isinstance(callee, ast.Attribute):
        attr_path = self_attr_path(callee)
        if attr_path is not None and "." not in attr_path and func.class_info:
            return ("self", f"{func.module.relpath}::{func.class_info.node.name}", attr_path)
        if callee.attr in _UNRESOLVABLE_METHODS:
            return None
        return ("meth", callee.attr)
    return None


def _alias_constructor_locks(
    project: Project,
    class_infos: Dict[str, ClassLockInfo],
    module_locks: Dict[str, Dict[str, str]],
    aliases: _UnionFind,
) -> None:
    """Union parameter-assigned lock attrs with the locks callers pass."""
    # Map class name -> (class_key, info) for classes with external locks.
    interesting: Dict[str, Tuple[str, ClassLockInfo]] = {}
    for class_key, info in class_infos.items():
        if info.attr_from_param:
            interesting[info.node.name] = (class_key, info)
    if not interesting:
        return

    for module in project.modules:
        enclosing: List[Optional[ClassLockInfo]] = [None]

        def visit(node: ast.AST) -> None:
            is_class = isinstance(node, ast.ClassDef)
            if is_class:
                key = f"{module.relpath}::{node.name}"
                enclosing.append(class_infos.get(key))
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                target = interesting.get(node.func.id)
                if target is not None:
                    _alias_one_call(node, target, module, enclosing[-1], module_locks, aliases)
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_class:
                enclosing.pop()

        visit(module.tree)


def _alias_one_call(
    call: ast.Call,
    target: Tuple[str, ClassLockInfo],
    module: Module,
    caller_info: Optional[ClassLockInfo],
    module_locks: Dict[str, Dict[str, str]],
    aliases: _UnionFind,
) -> None:
    class_key, info = target
    init = next(
        (
            item
            for item in info.node.body
            if isinstance(item, ast.FunctionDef) and item.name == "__init__"
        ),
        None,
    )
    if init is None:
        return
    params = [arg.arg for arg in init.args.args][1:]  # drop self
    bound: Dict[str, ast.AST] = {}
    for param, arg in zip(params, call.args):
        bound[param] = arg
    for keyword in call.keywords:
        if keyword.arg:
            bound[keyword.arg] = keyword.value
    target_module_relpath, target_class = class_key.split("::")
    for attr, param in info.attr_from_param.items():
        arg = bound.get(param)
        if arg is None:
            continue
        attr_node = f"{target_module_relpath}::{target_class}.{attr}"
        caller_attr = self_attr_path(arg)
        if caller_attr and "." not in caller_attr and caller_info is not None:
            if caller_attr in caller_info.attrs:
                canonical = caller_info.canonical_attr(caller_attr)
                caller_node = (
                    f"{caller_info.module.relpath}::"
                    f"{caller_info.node.name}.{canonical}"
                )
                aliases.union(attr_node, caller_node)
        elif isinstance(arg, ast.Name) and arg.id in module_locks.get(module.relpath, {}):
            aliases.union(attr_node, f"{module.relpath}::{arg.id}")


def _resolve(desc: CallDesc, model: _Model) -> List[str]:
    """Function keys a call descriptor may refer to."""
    kind = desc[0]
    if kind == "self":
        _, class_key, name = desc
        key = f"{class_key}.{name}"
        if key in model.functions:
            return [key]
        return _resolve(("meth", name), model)
    if kind == "name":
        _, relpath, name = desc
        key = f"{relpath}::{name}"
        if key in model.functions:
            return [key]
        if name in model.classes_by_name:
            return [
                f"{class_key}.__init__"
                for class_key in model.classes_by_name[name]
                if f"{class_key}.__init__" in model.functions
            ]
        candidates = model.functions_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates
        return []
    if kind == "meth":
        (_, name) = desc
        candidates = model.methods_by_name.get(name, [])
        if 1 <= len(candidates) <= 3:
            return candidates
        return []
    return []


def _collect_edges(model: _Model) -> Dict[Tuple[str, str], Tuple[str, int, str]]:
    """Edges (held -> acquired) with one witness (path, line, via) each."""
    find = model.aliases.find

    # Fixpoint: what locks can each function acquire, transitively?
    may_acquire: Dict[str, Set[str]] = {
        key: {find(lock) for lock in func.acquires}
        for key, func in model.functions.items()
    }
    resolved_calls: Dict[str, List[List[str]]] = {
        key: [_resolve(desc, model) for (_, desc, _) in func.calls]
        for key, func in model.functions.items()
    }
    for _ in range(30):
        changed = False
        for key, func in model.functions.items():
            acc = may_acquire[key]
            before = len(acc)
            for callees in resolved_calls[key]:
                for callee in callees:
                    acc |= may_acquire.get(callee, set())
            if len(acc) != before:
                changed = True
        if not changed:
            break

    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

    def add_edge(src: str, dst: str, path: str, line: int, via: str) -> None:
        key = (src, dst)
        if key not in edges:
            edges[key] = (path, line, via)

    for func_key, func in sorted(model.functions.items()):
        relpath = func.module.relpath
        for held, lock, line in func.nested:
            for src in sorted(held):
                add_edge(find(src), find(lock), relpath, line, func_key)
        for (held, desc, line), callees in zip(func.calls, resolved_calls[func_key]):
            if not held:
                continue
            for callee in callees:
                for lock in sorted(may_acquire.get(callee, set())):
                    for src in sorted(held):
                        add_edge(
                            find(src),
                            find(lock),
                            relpath,
                            line,
                            f"{func_key} -> {callee}",
                        )
    return edges


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles via DFS (one representative per cycle set)."""
    cycles: List[List[str]] = []
    seen_cycles: Set[FrozenSet[str]] = set()
    nodes = sorted(set(graph) | {d for dsts in graph.values() for d in dsts})

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) > 1:
                key = frozenset(path)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(list(path))
            elif nxt not in visited and nxt > start:
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in nodes:
        dfs(start, start, [start], {start})
    return cycles
