"""RA011: metric label values must stay finite.

The registry enforces ``max_series_per_metric`` at runtime — a
high-cardinality label (a road id, a snapshot version, a request id)
does not leak memory, it **raises** once the cap trips, turning a
telemetry bug into a serving outage.  This rule moves the check to
analysis time: at every ``registry.counter/gauge/histogram`` call site,
label values must be string literals or plain variables drawn from a
finite set — never dynamically formatted strings.

Taint: ``dyn`` marks f-strings with interpolated fields, ``str(x)`` of
a non-constant, ``.format(...)``, ``repr(...)`` — any value minted per
request.  Flagged at the sink:

* a ``dyn``-tagged label value (or metric *name* — a formatted metric
  name is the same bomb one level up);
* a non-string constant label value (the registry stringifies, hiding
  the unbounded domain of e.g. integer versions).

Bare names, attributes, and parameters are allowed: enum members and
bounded mode strings arrive that way, and the runtime cap still backs
the rule up.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.analyze.callgraph import FunctionInfo, build_callgraph
from tools.analyze.core import Finding, Project, Rule
from tools.analyze.dataflow import FunctionFlow, TaintSpec, run_taint

TAG_DYN = "dyn"

_SINK_METHODS = {"counter", "gauge", "histogram"}
_FORMATTERS = {"format", "join", "replace", "lower", "upper", "strip"}
# labels may arrive positionally: counter(name, labels) / gauge(name,
# labels) / histogram(name, buckets, labels).
_LABEL_POSITION = {"counter": 1, "gauge": 1, "histogram": 2}


class _CardinalitySpec(TaintSpec):
    def fstring_tags(
        self, func: FunctionInfo, node: ast.JoinedStr, parts: frozenset
    ) -> Optional[Set[str]]:
        if any(isinstance(v, ast.FormattedValue) for v in node.values):
            return {TAG_DYN} | set(parts)
        return None

    def call_tags(self, func: FunctionInfo, node: ast.Call, ctx) -> Optional[Set[str]]:
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in ("str", "repr", "format"):
            if node.args and not isinstance(node.args[0], ast.Constant):
                return {TAG_DYN}
            return set()
        if isinstance(callee, ast.Attribute) and callee.attr in _FORMATTERS:
            # "road-{}".format(rid) and friends mint a fresh string; a
            # constant template with dynamic pieces is still dynamic.
            if callee.attr == "format" and (node.args or node.keywords):
                return {TAG_DYN}
            return None
        return None


class RA011MetricsCardinality(Rule):
    rule_id = "RA011"
    name = "metrics-label-cardinality"
    rationale = (
        "a per-request label value (road id, version, request id) trips "
        "the registry's series cap and turns telemetry into an outage; "
        "label domains must be finite"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        flows = run_taint(graph, _CardinalitySpec())
        findings: List[Finding] = []
        for key in sorted(flows):
            flow = flows[key]
            func = flow.func
            for site in func.calls:
                callee = site.node.func
                if (
                    not isinstance(callee, ast.Attribute)
                    or callee.attr not in _SINK_METHODS
                ):
                    continue
                findings.extend(self._check_site(func, flow, site.node, callee.attr))
        return findings

    def _check_site(
        self, func: FunctionInfo, flow: FunctionFlow, call: ast.Call, method: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        name_arg = call.args[0] if call.args else None
        if name_arg is not None and TAG_DYN in flow.tags_of(name_arg):
            findings.append(
                self.finding(
                    func.module,
                    call.lineno,
                    f"{func.qualname}: metric name passed to .{method}() is "
                    "dynamically formatted; metric names must be literals",
                )
            )
        labels = self._labels_arg(call, method)
        if isinstance(labels, ast.Dict):
            for label_key, value in zip(labels.keys, labels.values):
                label = (
                    repr(label_key.value)
                    if isinstance(label_key, ast.Constant)
                    else "<label>"
                )
                if TAG_DYN in flow.tags_of(value):
                    findings.append(
                        self.finding(
                            func.module,
                            value.lineno,
                            f"{func.qualname}: label {label} in .{method}() is "
                            "a dynamically formatted string — an unbounded "
                            "label domain; use a finite set of literals",
                        )
                    )
                elif isinstance(value, ast.Constant) and not isinstance(
                    value.value, str
                ):
                    findings.append(
                        self.finding(
                            func.module,
                            value.lineno,
                            f"{func.qualname}: label {label} in .{method}() is "
                            f"a non-string constant ({value.value!r}); label "
                            "values must be string literals",
                        )
                    )
        elif labels is not None and TAG_DYN in flow.tags_of(labels):
            findings.append(
                self.finding(
                    func.module,
                    call.lineno,
                    f"{func.qualname}: labels mapping passed to .{method}() "
                    "is built from dynamically formatted values",
                )
            )
        return findings

    @staticmethod
    def _labels_arg(call: ast.Call, method: str) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "labels":
                return kw.value
        position = _LABEL_POSITION[method]
        if len(call.args) > position:
            return call.args[position]
        return None
