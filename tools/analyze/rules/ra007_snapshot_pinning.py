"""RA007: one pinned ModelSnapshot per request path, no store internals.

The COW store contract (PR 3/4): a request pins **one**
:class:`ModelSnapshot` up front and passes it through selection,
propagation, and backend estimation.  Two independent
``store.current()`` reads in one request path can observe *different*
versions across a concurrent publish — a torn request mixing slot
parameters from two models, exactly the inconsistency the paper's
one-field-per-query argument forbids.  Reaching around the snapshot API
into ``store._whatever`` bypasses the pin entirely.

Dataflow: values are tagged ``store`` (``self._store``, ``store``
params, ``ModelStore(...)``) and ``snapshot`` (``.current()`` /
``.pinned()`` results, ``snapshot``/``snap`` params).  In request-path
modules (``pipeline``/``serve``/``backends``) the rule flags

* private (``_``-prefixed) attribute access on a store- or
  snapshot-tagged value, and
* a function body acquiring two or more snapshots (multiple
  ``.current()``/``.pinned()`` call sites) — the torn-request shape.

The tearing check is intra-procedural by design: conditional
re-acquisition behind ``if snapshot is None`` fallbacks is the
idiomatic single-pin pattern and must not count twice.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.analyze.callgraph import FunctionInfo, build_callgraph
from tools.analyze.core import Finding, Project, Rule
from tools.analyze.dataflow import FunctionFlow, TaintSpec, run_taint

_SCOPE_PARTS = {"serve", "backends"}
_SCOPE_STEMS = {"pipeline"}
_STORE_ATTRS = {"store", "_store"}
_SNAPSHOT_PARAMS = {"snapshot", "snap"}
_ACQUIRERS = {"current", "pinned"}

TAG_STORE = "store"
TAG_SNAPSHOT = "snapshot"


def in_scope(relpath: str) -> bool:
    parts = relpath.split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    return bool(_SCOPE_PARTS & set(parts[:-1])) or stem in _SCOPE_STEMS


class _SnapshotSpec(TaintSpec):
    def param_tags(self, func: FunctionInfo, name: str) -> Set[str]:
        if name == "store":
            return {TAG_STORE}
        if name in _SNAPSHOT_PARAMS:
            return {TAG_SNAPSHOT}
        return set()

    def attribute_tags(
        self, func: FunctionInfo, node: ast.Attribute, base: frozenset
    ) -> Optional[Set[str]]:
        if node.attr in _STORE_ATTRS:
            return {TAG_STORE}
        if node.attr in _SNAPSHOT_PARAMS:
            return {TAG_SNAPSHOT}
        if TAG_STORE in base:
            # Attributes of a store are not themselves the store.
            return set(base - {TAG_STORE})
        return None

    def call_tags(self, func: FunctionInfo, node: ast.Call, ctx) -> Optional[Set[str]]:
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id == "ModelStore":
            return {TAG_STORE}
        if isinstance(callee, ast.Attribute) and callee.attr in _ACQUIRERS:
            if TAG_STORE in ctx.evaluate(callee.value):
                return {TAG_SNAPSHOT}
        # Any other call is a laundering boundary for these tags: passing
        # a store into a constructor does not make the result a store
        # (``cls(network, store=...)`` builds a system, not a store).
        # Real store/snapshot returns still flow via callee summaries.
        summary = ctx.callee_summary_tags(node)
        passthrough = (ctx.receiver_tags(node) | ctx.arg_tags(node)) - {
            TAG_STORE,
            TAG_SNAPSHOT,
        }
        return set(summary) | passthrough


class RA007SnapshotPinning(Rule):
    rule_id = "RA007"
    name = "snapshot-pinning"
    rationale = (
        "two store reads in one request can straddle a publish and mix "
        "model versions; a request pins one snapshot and passes it through"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        spec = _SnapshotSpec()
        flows = run_taint(graph, spec)
        findings: List[Finding] = []
        for key in sorted(flows):
            flow = flows[key]
            func = flow.func
            if not in_scope(func.module.relpath):
                continue
            findings.extend(self._check_privacy(func, flow))
            findings.extend(self._check_tearing(func, flow))
        return findings

    def _check_privacy(
        self, func: FunctionInfo, flow: FunctionFlow
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base_tags = flow.tags_of(node.value)
            if TAG_STORE in base_tags:
                what = "ModelStore"
            elif TAG_SNAPSHOT in base_tags:
                what = "ModelSnapshot"
            else:
                continue
            findings.append(
                self.finding(
                    func.module,
                    node.lineno,
                    f"{func.qualname}: raw access to {what} internal "
                    f"'.{attr}' bypasses the snapshot-pinning API; use the "
                    "public snapshot surface",
                )
            )
        return findings

    def _check_tearing(
        self, func: FunctionInfo, flow: FunctionFlow
    ) -> List[Finding]:
        acquisitions: List[int] = []
        for site in func.calls:
            callee = site.node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _ACQUIRERS
                and TAG_STORE in flow.tags_of(callee.value)
            ):
                acquisitions.append(site.line)
        if len(acquisitions) < 2:
            return []
        lines = ", ".join(str(line) for line in sorted(acquisitions))
        return [
            self.finding(
                func.module,
                sorted(acquisitions)[1],
                f"{func.qualname} acquires {len(acquisitions)} snapshots in "
                f"one request path (lines {lines}); a concurrent publish "
                "tears the request across model versions — pin one snapshot "
                "and pass it through",
            )
        ]
