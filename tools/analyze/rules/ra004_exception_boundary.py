"""RA004: public entry points raise only ``ReproError`` subclasses.

The v1 contract (docs/API.md) promises callers of the pipeline facade,
the serving layer, and the CLI that every failure surfaces as a
``ReproError`` — internal slips are converted by ``wrap_internal``.
This rule walks every ``raise`` in those modules and flags raises of
builtin (non-``ReproError``) exceptions outside a lexical
``with wrap_internal(...)`` region.

The ``ReproError`` hierarchy is read from the analyzed ``errors.py``
module itself, so the rule follows the tree as it grows.
"""

from __future__ import annotations

import ast
import builtins
from typing import List, Optional, Set

from tools.analyze.core import Finding, Module, Project, Rule

_BUILTIN_EXCEPTIONS = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}

#: Modules covered by the boundary contract (relpath suffix match).
_SCOPE_SUFFIXES = ("pipeline.py", "cli.py")
_SCOPE_FRAGMENTS = ("/serve/", "/stream/", "/backends/")

_ROOT_CLASS = "ReproError"


class RA004ExceptionBoundary(Rule):
    rule_id = "RA004"
    name = "exception-boundary"
    rationale = (
        "a stray ValueError through the serving layer bypasses the "
        "documented error contract and the CLI's exit-code mapping"
    )

    def check(self, project: Project) -> List[Finding]:
        hierarchy = _repro_error_names(project)
        findings: List[Finding] = []
        for module in project.modules:
            if not _in_scope(module):
                continue
            findings.extend(self._check_module(module, hierarchy))
        return findings

    def _check_module(self, module: Module, hierarchy: Set[str]) -> List[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, shielded: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = shielded or any(
                    _is_wrap_internal(item.context_expr) for item in node.items
                )
                for item in node.items:
                    visit(item.context_expr, shielded)
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Raise) and not shielded:
                name = _raised_name(node)
                if (
                    name is not None
                    and name in _BUILTIN_EXCEPTIONS
                    and name not in hierarchy
                ):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"raises builtin {name} across the public "
                            "boundary; raise a ReproError subclass (or wrap "
                            "the region in wrap_internal)",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, shielded)

        visit(module.tree, shielded=False)
        return findings


def _in_scope(module: Module) -> bool:
    relpath = module.relpath
    return relpath.endswith(_SCOPE_SUFFIXES) or any(
        fragment in relpath for fragment in _SCOPE_FRAGMENTS
    )


def _is_wrap_internal(expr: ast.AST) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
    return name == "wrap_internal"


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise keeps the original contract
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _repro_error_names(project: Project) -> Set[str]:
    """Transitive subclasses of ``ReproError`` declared in ``errors.py``."""
    errors_module = project.find_module("errors.py")
    hierarchy: Set[str] = {_ROOT_CLASS}
    if errors_module is None:
        return hierarchy
    classes = {}
    for node in ast.walk(errors_module.tree):
        if isinstance(node, ast.ClassDef):
            bases = {
                base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
                for base in node.bases
            }
            classes[node.name] = bases
    changed = True
    while changed:
        changed = False
        for name, bases in classes.items():
            if name not in hierarchy and bases & hierarchy:
                hierarchy.add(name)
                changed = True
    return hierarchy
