"""RA003: metric/span literals and docs/OBSERVABILITY.md must not drift.

Extracts every ``.counter("...")``/``.gauge("...")``/``.histogram("...")``
registration, ``.span("...")`` and ``.event("...")`` name literal from
the analyzed tree and diffs against the catalog:

* a metric emitted in code but absent from the catalog tables fails at
  the call site;
* a catalog row whose metric is never emitted fails at the doc line;
* a kind mismatch (counter registered, gauge documented) fails both ways;
* span/event names must at least appear in the doc's trace schema.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Tuple

from tools.analyze.core import Finding, Project, Rule, const_str

_METRIC_KINDS = {"counter", "gauge", "histogram"}
_NAME_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_.]+)+)`")
_DOC_NAME = "OBSERVABILITY.md"


class RA003ObservabilityCatalog(Rule):
    rule_id = "RA003"
    name = "observability-catalog"
    rationale = (
        "dashboards and alerts are built from the catalog; an undocumented "
        "metric is invisible and a documented-but-dead one lies"
    )

    def check(self, project: Project) -> List[Finding]:
        doc_text = project.doc_text(_DOC_NAME)
        doc_relpath = f"docs/{_DOC_NAME}"
        code_metrics, code_spans = _extract_from_code(project)
        if doc_text is None:
            # Only demand a catalog from trees that emit telemetry.
            if not code_metrics and not code_spans:
                return []
            return [
                self.finding(
                    doc_relpath, 0, "missing catalog file docs/" + _DOC_NAME
                )
            ]
        doc_metrics = _parse_catalog_tables(doc_text)

        findings: List[Finding] = []
        for name, (kind, relpath, lineno) in sorted(code_metrics.items()):
            where = project.module(relpath) or relpath
            if name not in doc_metrics:
                findings.append(
                    self.finding(
                        where,
                        lineno,
                        f"metric '{name}' ({kind}) is emitted here but has no "
                        f"row in docs/{_DOC_NAME}",
                    )
                )
            elif doc_metrics[name][0] != kind:
                findings.append(
                    self.finding(
                        where,
                        lineno,
                        f"metric '{name}' is registered as a {kind} but "
                        f"documented as a {doc_metrics[name][0]} "
                        f"(docs/{_DOC_NAME}:{doc_metrics[name][1]})",
                    )
                )
        for name, (kind, doc_line) in sorted(doc_metrics.items()):
            if name not in code_metrics:
                findings.append(
                    self.finding(
                        doc_relpath,
                        doc_line,
                        f"catalog row '{name}' ({kind}) matches no metric "
                        "registration in the analyzed sources",
                    )
                )
        for name, (relpath, lineno, what) in sorted(code_spans.items()):
            if name not in doc_text:
                findings.append(
                    self.finding(
                        project.module(relpath) or relpath,
                        lineno,
                        f"{what} name '{name}' does not appear in the trace "
                        f"schema of docs/{_DOC_NAME}",
                    )
                )
        return findings


def _extract_from_code(
    project: Project,
) -> Tuple[Dict[str, Tuple[str, str, int]], Dict[str, Tuple[str, int, str]]]:
    """Metric name -> (kind, path, line); span/event name -> (path, line, what)."""
    metrics: Dict[str, Tuple[str, str, int]] = {}
    spans: Dict[str, Tuple[str, int, str]] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            name = const_str(node.args[0]) if node.args else None
            if name is None:
                continue
            if attr in _METRIC_KINDS:
                metrics.setdefault(name, (attr, module.relpath, node.lineno))
            elif attr == "span":
                spans.setdefault(name, (module.relpath, node.lineno, "span"))
            elif attr == "event":
                spans.setdefault(name, (module.relpath, node.lineno, "event"))
    return metrics, spans


def _parse_catalog_tables(doc_text: str) -> Dict[str, Tuple[str, int]]:
    """Backticked dotted names from table rows whose kind cell is a metric kind.

    Handles combined rows (```a` / `b` / `c` | gauge | ...``): every
    backticked dotted name in the first cell shares the row's kind.
    """
    out: Dict[str, Tuple[str, int]] = {}
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if len(cells) < 2:
            continue
        kind = cells[1].lower()
        if kind not in _METRIC_KINDS:
            continue
        for name in _NAME_RE.findall(cells[0]):
            out.setdefault(name, (kind, lineno))
    return out
