"""RA006: no global RNG or wall-clock reads outside whitelisted modules.

Reproducibility discipline: every random draw flows through an
explicitly seeded ``np.random.Generator`` and every duration through the
monotonic clock.  Flags, inside the analyzed tree:

* ``import random`` / ``from random import ...`` (the stdlib global RNG);
* any ``np.random.<fn>(...)`` except ``default_rng`` (module-level
  global state: ``seed``, ``rand``, ``shuffle``, ...);
* ``np.random.default_rng()`` with no arguments (unseeded);
* wall-clock reads: ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``date.today``
  (``time.monotonic``/``perf_counter`` stay legal — durations are fine).

``repro/obs/tracing.py`` is whitelisted: span records deliberately carry
a wall-clock epoch for cross-process alignment.  So is
``repro/obs/health/recorder.py``: the flight-recorder black box stamps
``dumped_at_unix`` with wall-clock time so operators can line it up
against external logs (the health *sampler* is not whitelisted — its
interval arithmetic must stay on ``time.monotonic``).  Deliberate
unseeded fallbacks carry a ``# repro: noqa[RA006]`` at the call site.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from tools.analyze.core import Finding, Module, Project, Rule, dotted_name

#: relpath suffixes exempt from the rule (documented in STATIC_ANALYSIS.md).
WHITELIST = ("repro/obs/tracing.py", "repro/obs/health/recorder.py")

_WALLCLOCK_RE = re.compile(
    r"(^|\.)time\.(time|time_ns)$"
    r"|(^|\.)datetime\.(now|utcnow|today)$"
    r"|(^|\.)date\.today$"
)


class RA006Determinism(Rule):
    rule_id = "RA006"
    name = "rng-time-determinism"
    rationale = (
        "global RNG and wall-clock reads make runs unreproducible and "
        "experiments unpublishable; seeded Generators and monotonic "
        "clocks do not"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            if module.relpath.endswith(WHITELIST):
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                "imports the stdlib 'random' module (global "
                                "RNG); use a seeded np.random.Generator",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "imports from the stdlib 'random' module (global "
                            "RNG); use a seeded np.random.Generator",
                        )
                    )
            elif isinstance(node, ast.Call):
                message = self._call_message(node)
                if message is not None:
                    findings.append(self.finding(module, node.lineno, message))
        return findings

    def _call_message(self, node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        rng_fn = _np_random_function(dotted)
        if rng_fn is not None:
            if rng_fn == "default_rng":
                if not node.args and not node.keywords:
                    return (
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; pass an explicit seed (or suppress "
                        "deliberately)"
                    )
                return None
            return (
                f"np.random.{rng_fn}(...) uses numpy's global RNG state; "
                "use a seeded np.random.Generator"
            )
        if _WALLCLOCK_RE.search(dotted):
            return (
                f"wall-clock call {dotted}(...); use time.monotonic()/"
                "perf_counter() for durations or take timestamps as inputs"
            )
        return None


def _np_random_function(dotted: str) -> Optional[str]:
    """``shuffle`` for ``np.random.shuffle`` / ``numpy.random.shuffle``."""
    parts = dotted.split(".")
    if len(parts) == 3 and parts[0] in {"np", "numpy"} and parts[1] == "random":
        return parts[2]
    return None
