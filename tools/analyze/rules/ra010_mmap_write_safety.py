"""RA010: memmap-backed snapshot views must never be written in place.

``snapshot_io.read_snapshot`` (PR 9) maps the RPSNAP01 artifact and
hands out **read-only views** of the underlying buffer; every consumer
that wants to mutate must copy first (``.astype(...).copy()`` in the
stream refresher is the canonical laundering).  An in-place write to a
view either crashes (``WRITEABLE`` is false) or — if someone flips the
flag — corrupts the on-disk artifact *and* every other snapshot sharing
the mapping.

Taint: values flowing from ``read_snapshot``/``load_model``/
``load_store``/``np.memmap``/``SnapshotFile`` (and helper returns, via
call-graph summaries) are tagged ``mmap``; copies
(``np.array``, ``.copy()``, ``.astype(...)``) kill the tag.  Sinks are
in-place mutation: subscript/attribute stores, augmented assignment,
``out=`` keywords, ``np.copyto``, in-place ndarray methods
(``fill``/``sort``/``resize``/``partition``/``setflags``).  A tainted
value passed to a function that mutates the bound parameter
(transitively) is reported at the call site.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from tools.analyze.callgraph import FunctionInfo, bind_call_args, build_callgraph
from tools.analyze.core import Finding, Project, Rule, dotted_name
from tools.analyze.dataflow import FunctionFlow, TaintSpec, run_taint

TAG_MMAP = "mmap"
_PARAM_PREFIX = "param:"

_SOURCE_CALLS = {"read_snapshot", "load_model", "load_store", "SnapshotFile", "memmap", "open_memmap"}
_COPYING_CALLS = {"copy", "astype", "array", "ascontiguousarray", "tolist", "item"}
# Fresh allocations and scalar reductions: the result does not alias the
# receiver/arguments, so provenance must not flow through them
# (otherwise ``total += view.sum()`` reads as mutating the view).
_FRESH_CALLS = {
    "zeros", "ones", "empty", "full", "arange", "linspace",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "sum", "mean", "std", "var", "min", "max", "argmin", "argmax",
    "len", "float", "int", "bool", "str",
}
_INPLACE_METHODS = {"fill", "sort", "resize", "partition", "itemset", "setflags", "byteswap"}


class _MmapSpec(TaintSpec):
    def param_tags(self, func: FunctionInfo, name: str) -> Set[str]:
        # Every parameter carries its own provenance tag so in-place
        # mutation of a parameter shows up in the function's summary.
        return {_PARAM_PREFIX + name}

    def call_tags(self, func: FunctionInfo, node: ast.Call, ctx) -> Optional[Set[str]]:
        callee = node.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else getattr(callee, "attr", None)
        )
        if name in _SOURCE_CALLS:
            return {TAG_MMAP} | set(ctx.arg_tags(node))
        if name in _COPYING_CALLS:
            if name == "astype":
                for kw in node.keywords:
                    if (
                        kw.arg == "copy"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        return None  # astype(..., copy=False) may alias
            # The result is fresh memory; drop mmap/param provenance but
            # keep nothing else (copies launder everything here).
            return set()
        if name in _FRESH_CALLS:
            return set()
        return None


class RA010MmapWriteSafety(Rule):
    rule_id = "RA010"
    name = "mmap-write-safety"
    rationale = (
        "snapshot arrays are read-only memmap views shared by every "
        "pinned snapshot; an in-place write crashes or corrupts the "
        "artifact — copy first"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        flows = run_taint(graph, _MmapSpec())

        # Which (function, param) pairs reach an in-place mutation,
        # directly or through further calls?  Seeded only by mutations of
        # the *bare parameter name itself* (a sink on a value merely
        # derived from the parameter mutates the derivative, not the
        # caller's array), then propagated over call sites to a fixpoint.
        mutates: Set[Tuple[str, str]] = set()
        for key, flow in flows.items():
            for param in _param_sinks(flow):
                mutates.add((key, param))
        for _ in range(10):
            grew = False
            for key, flow in flows.items():
                for callee_key, param, arg, _line in _bound_args(graph, flow):
                    if (callee_key, param) not in mutates:
                        continue
                    if not isinstance(arg, ast.Name):
                        continue
                    if _PARAM_PREFIX + arg.id in flow.tags_of(arg):
                        pair = (key, arg.id)
                        if pair not in mutates:
                            mutates.add(pair)
                            grew = True
            if not grew:
                break

        findings: List[Finding] = []
        for key in sorted(flows):
            flow = flows[key]
            func = flow.func
            for tags, line, what in _direct_sinks(flow):
                if TAG_MMAP in tags:
                    findings.append(
                        self.finding(
                            func.module,
                            line,
                            f"{func.qualname}: {what} on a memmap-backed "
                            "snapshot view; copy before mutating "
                            "(.astype(...).copy())",
                        )
                    )
            for callee_key, param, arg, line in _bound_args(graph, flow):
                if (callee_key, param) in mutates and TAG_MMAP in flow.tags_of(arg):
                    callee = graph.functions[callee_key]
                    findings.append(
                        self.finding(
                            func.module,
                            line,
                            f"{func.qualname}: passes a memmap-backed snapshot "
                            f"view to {callee.qualname}({param}=...), which "
                            "mutates it in place; copy before the call",
                        )
                    )
        return findings


def _setflags_enables_write(call: ast.Call) -> bool:
    """``setflags(write=True)`` mutates; ``setflags(write=False)`` hardens."""
    for kw in call.keywords:
        if kw.arg == "write":
            return not (isinstance(kw.value, ast.Constant) and kw.value.value is False)
    if call.args:
        first = call.args[0]
        return not (isinstance(first, ast.Constant) and not first.value)
    return False


def _mutation_sites(flow: FunctionFlow):
    """(base_expr, line, description) for each in-place mutation site."""
    func = flow.func
    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    yield target.value, node.lineno, "subscript store"
        elif isinstance(node, ast.AugAssign):
            base = node.target
            if isinstance(base, ast.Subscript):
                yield base.value, node.lineno, "augmented store"
            elif isinstance(base, ast.Name):
                yield base, node.lineno, "augmented assignment"
        elif isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Attribute) and callee.attr in _INPLACE_METHODS:
                if callee.attr != "setflags" or _setflags_enables_write(node):
                    yield callee.value, node.lineno, f"in-place .{callee.attr}()"
            if (dotted_name(callee) or "").endswith("copyto") and node.args:
                yield node.args[0], node.lineno, "np.copyto"
            for kw in node.keywords:
                if kw.arg == "out":
                    yield kw.value, node.lineno, "out= argument"


def _direct_sinks(flow: FunctionFlow):
    """(tags, line, description) for each in-place mutation site."""
    for base, line, what in _mutation_sites(flow):
        yield flow.tags_of(base), line, what


def _param_sinks(flow: FunctionFlow):
    """Parameter names this function mutates in place (bare-name only)."""
    for base, _line, what in _mutation_sites(flow):
        if what == "augmented assignment":
            # ``name += x`` rebinds immutable values; too ambiguous to
            # claim the *caller's* array is mutated through it.
            continue
        if isinstance(base, ast.Name) and _PARAM_PREFIX + base.id in flow.tags_of(base):
            yield base.id


def _bound_args(graph, flow: FunctionFlow):
    """(callee_key, param, arg_expr, line) for resolvable call sites."""
    for site in flow.func.calls:
        for callee_key in graph.resolve(site.desc):
            callee = graph.functions[callee_key]
            for param, arg in bind_call_args(site.node, callee).items():
                yield callee_key, param, arg, site.line
