"""RA001: attributes mutated both inside and outside the class lock.

For every class that declares a lock (``self._lock = threading.Lock()``
or friends), collect each first-level ``self`` attribute's mutation
sites and whether each site runs under a ``with self.<lock>`` block.
An attribute mutated on *both* sides is a race: the locked sites prove
the author considered it shared, so every unlocked site (outside
``__init__``) is flagged.

Condition variables alias the lock they wrap, and methods returning a
class lock (``with self._maybe_probe_lock():``) count as acquisitions.
Nested functions and lambdas are skipped — they execute later, on some
other call stack, and their lock context cannot be read off lexically.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from tools.analyze.core import Finding, Module, Project, Rule
from tools.analyze.locks import (
    CONSTRUCTION_METHODS,
    ClassLockInfo,
    collect_class_locks,
    mutations_at,
    with_item_lock_attrs,
)


class RA001LockDiscipline(Rule):
    rule_id = "RA001"
    name = "lock-discipline"
    rationale = (
        "an attribute written both under and outside the class lock is a "
        "data race: one side tears the other's read-modify-write"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            for info in collect_class_locks(module):
                findings.extend(self._check_class(module, info))
        return findings

    def _check_class(self, module: Module, info: ClassLockInfo) -> List[Finding]:
        locked_sites: Dict[str, List[int]] = {}
        unlocked_sites: Dict[str, List[int]] = {}

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # nested callable: runs on another stack
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: Set[str] = set()
                for item in node.items:
                    acquired |= with_item_lock_attrs(item, info)
                    visit(item.context_expr, locked)
                body_locked = locked or bool(acquired)
                for stmt in node.body:
                    visit(stmt, body_locked)
                return
            for attr, lineno in mutations_at(node):
                if attr in info.attrs:
                    continue  # reassigning the lock itself is not guarded data
                bucket = locked_sites if locked else unlocked_sites
                bucket.setdefault(attr, []).append(lineno)
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        for item in info.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in CONSTRUCTION_METHODS:
                continue
            for stmt in item.body:
                visit(stmt, locked=False)

        lock_names = ", ".join(
            f"self.{attr}"
            for attr, kind in sorted(info.attrs.items())
            if kind != "condition"
        )
        findings: List[Finding] = []
        for attr in sorted(set(locked_sites) & set(unlocked_sites)):
            locked_at = min(locked_sites[attr])
            for lineno in sorted(set(unlocked_sites[attr])):
                findings.append(
                    self.finding(
                        module,
                        lineno,
                        f"class {info.node.name}: 'self.{attr}' is mutated "
                        f"without holding {lock_names or 'the class lock'} "
                        f"(also mutated under the lock, e.g. line {locked_at})",
                    )
                )
        return findings
