"""Rule registry: every shipped rule, ordered by id."""

from tools.analyze.rules.ra001_lock_discipline import RA001LockDiscipline
from tools.analyze.rules.ra002_lock_order import RA002LockOrder
from tools.analyze.rules.ra003_observability import RA003ObservabilityCatalog
from tools.analyze.rules.ra004_exception_boundary import RA004ExceptionBoundary
from tools.analyze.rules.ra005_deprecation import RA005DeprecationHorizon
from tools.analyze.rules.ra006_determinism import RA006Determinism
from tools.analyze.rules.ra007_snapshot_pinning import RA007SnapshotPinning
from tools.analyze.rules.ra008_deadline_propagation import RA008DeadlinePropagation
from tools.analyze.rules.ra009_precision_escape import RA009PrecisionEscape
from tools.analyze.rules.ra010_mmap_write_safety import RA010MmapWriteSafety
from tools.analyze.rules.ra011_metrics_cardinality import RA011MetricsCardinality
from tools.analyze.rules.ra012_blocking_under_lock import RA012BlockingUnderLock

ALL_RULES = [
    RA001LockDiscipline,
    RA002LockOrder,
    RA003ObservabilityCatalog,
    RA004ExceptionBoundary,
    RA005DeprecationHorizon,
    RA006Determinism,
    RA007SnapshotPinning,
    RA008DeadlinePropagation,
    RA009PrecisionEscape,
    RA010MmapWriteSafety,
    RA011MetricsCardinality,
    RA012BlockingUnderLock,
]

__all__ = [
    "ALL_RULES",
    "RA001LockDiscipline",
    "RA002LockOrder",
    "RA003ObservabilityCatalog",
    "RA004ExceptionBoundary",
    "RA005DeprecationHorizon",
    "RA006Determinism",
    "RA007SnapshotPinning",
    "RA008DeadlinePropagation",
    "RA009PrecisionEscape",
    "RA010MmapWriteSafety",
    "RA011MetricsCardinality",
    "RA012BlockingUnderLock",
]
