"""Rule registry: every shipped rule, ordered by id."""

from tools.analyze.rules.ra001_lock_discipline import RA001LockDiscipline
from tools.analyze.rules.ra002_lock_order import RA002LockOrder
from tools.analyze.rules.ra003_observability import RA003ObservabilityCatalog
from tools.analyze.rules.ra004_exception_boundary import RA004ExceptionBoundary
from tools.analyze.rules.ra005_deprecation import RA005DeprecationHorizon
from tools.analyze.rules.ra006_determinism import RA006Determinism

ALL_RULES = [
    RA001LockDiscipline,
    RA002LockOrder,
    RA003ObservabilityCatalog,
    RA004ExceptionBoundary,
    RA005DeprecationHorizon,
    RA006Determinism,
]

__all__ = [
    "ALL_RULES",
    "RA001LockDiscipline",
    "RA002LockOrder",
    "RA003ObservabilityCatalog",
    "RA004ExceptionBoundary",
    "RA005DeprecationHorizon",
    "RA006Determinism",
]
