"""RA005: every deprecation names a removal version documented in API.md.

``warn_deprecated_once(key, message)`` call sites must

* carry an explicit removal version (``v2.0`` style) in the warning
  message, and
* use a key listed in the *Warn key* column of the deprecation table in
  ``docs/API.md``.

The reverse direction holds too: a documented warn key with no call
site means the deprecation was removed without updating the policy
table.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from tools.analyze.core import Finding, Project, Rule, const_str

_VERSION_RE = re.compile(r"\bv\d+(\.\d+)?\b")
_KEY_RE = re.compile(r"`([A-Za-z_][\w.]*)`")
_DOC_NAME = "API.md"


class RA005DeprecationHorizon(Rule):
    rule_id = "RA005"
    name = "deprecation-horizon"
    rationale = (
        "a deprecation without a documented removal version can never be "
        "acted on; one without a call site is already stale"
    )

    def check(self, project: Project) -> List[Finding]:
        doc_text = project.doc_text(_DOC_NAME)
        doc_relpath = f"docs/{_DOC_NAME}"
        doc_keys = _documented_keys(doc_text or "")

        findings: List[Finding] = []
        seen_keys: Dict[str, Tuple[str, int]] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                call = _deprecation_call(node)
                if call is None:
                    continue
                key, message = call
                seen_keys.setdefault(key, (module.relpath, node.lineno))
                if not _VERSION_RE.search(message):
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"warn_deprecated_once('{key}') message names no "
                            "removal version (expected e.g. 'v2.0')",
                        )
                    )
                if doc_text is not None and key not in doc_keys:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            f"deprecation key '{key}' is not listed in the "
                            f"docs/{_DOC_NAME} deprecation table",
                        )
                    )
        if doc_text is not None:
            for key, doc_line in sorted(doc_keys.items()):
                if key not in seen_keys:
                    findings.append(
                        self.finding(
                            doc_relpath,
                            doc_line,
                            f"documented warn key '{key}' has no "
                            "warn_deprecated_once call site",
                        )
                    )
        return findings


def _deprecation_call(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(key, message-text) when node is a warn_deprecated_once call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
    if name != "warn_deprecated_once" or not node.args:
        return None
    key = const_str(node.args[0])
    if key is None:
        return None
    message_node = node.args[1] if len(node.args) > 1 else None
    for keyword in node.keywords:
        if keyword.arg == "message":
            message_node = keyword.value
    return key, _literal_text(message_node)


def _literal_text(node: Optional[ast.AST]) -> str:
    """Concatenated constant fragments of a str/f-string expression."""
    if node is None:
        return ""
    parts: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            parts.append(sub.value)
    return " ".join(parts)


def _documented_keys(doc_text: str) -> Dict[str, int]:
    """Warn keys from the API.md deprecation table (key -> doc line).

    Finds the markdown table whose header row has a "Warn key" column
    and reads backticked keys from that column.
    """
    out: Dict[str, int] = {}
    lines = doc_text.splitlines()
    column: Optional[int] = None
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            column = None
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if column is None:
            for index, cell in enumerate(cells):
                if "warn key" in cell.lower():
                    column = index
                    break
            continue
        if all(set(cell) <= {"-", ":", " "} for cell in cells):
            continue  # separator row
        if column < len(cells):
            for key in _KEY_RE.findall(cells[column]):
                out.setdefault(key, lineno)
    return out
