"""RA008: a function holding a Deadline must hand it to slow callees.

The latency contract (PR 4/9) threads one :class:`Deadline` from
admission through selection, probing, propagation, and backend
estimation, so every stage can stop early instead of burning the
client's budget.  A call that *drops* the deadline re-creates the
unbounded tail the contract exists to kill — silently, because the
callee simply never checks.

Concretely: for every function with a ``deadline`` parameter, every
call to a resolved callee that **also accepts** a ``deadline``
parameter and is *transitively blocking or deadline-checking* must bind
that parameter to an expression mentioning the caller's deadline
(``deadline``, ``leader.deadline``, ...).  Passing nothing — or an
explicit ``None`` — is a dropped deadline; the finding names the
blocking path.  Callees that accept a deadline but neither block nor
check it are skipped (nothing is lost by not telling them).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from tools.analyze.blocking import may_block
from tools.analyze.callgraph import CallGraph, bind_call_args, build_callgraph
from tools.analyze.core import Finding, Project, Rule

_PARAM = "deadline"


def _mentions_deadline(node: ast.AST) -> bool:
    """Does an argument expression reference a deadline value?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _PARAM in sub.id:
            return True
        if isinstance(sub, ast.Attribute) and _PARAM in sub.attr:
            return True
    return False


def _checks_deadline(graph: CallGraph) -> Dict[str, Set[str]]:
    """Functions that (transitively) consult their deadline.

    Seeded by direct ``deadline.check(...)`` / ``deadline.remaining()``
    / ``deadline.expired()`` uses; propagated caller-absorbs-callee so a
    wrapper around a checking helper counts.
    """
    seeds: Dict[str, Set[str]] = {}
    for key, func in graph.functions.items():
        for site in func.calls:
            callee = site.node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("check", "remaining", "expired")
                and _mentions_deadline(callee.value)
            ):
                seeds.setdefault(key, set()).add("deadline-checking")
    return graph.fixpoint(seeds)


class RA008DeadlinePropagation(Rule):
    rule_id = "RA008"
    name = "deadline-propagation"
    rationale = (
        "a dropped deadline silently re-creates the unbounded latency "
        "tail the Deadline contract exists to kill; every blocking stage "
        "must be able to stop early"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        blocking = may_block(graph)
        checking = _checks_deadline(graph)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            func = graph.functions[key]
            if _PARAM not in func.all_param_names():
                continue
            for site in func.calls:
                for callee_key in graph.resolve(site.desc):
                    callee = graph.functions[callee_key]
                    if callee_key == key or _PARAM not in callee.all_param_names():
                        continue
                    reasons = sorted(
                        blocking.get(callee_key, set())
                        | checking.get(callee_key, set())
                    )
                    if not reasons:
                        continue
                    bound = bind_call_args(site.node, callee)
                    arg = bound.get(_PARAM)
                    if arg is not None and _mentions_deadline(arg):
                        continue
                    if arg is None:
                        how = "never passes its deadline"
                    elif isinstance(arg, ast.Constant) and arg.value is None:
                        how = "binds deadline=None"
                    else:
                        how = "binds deadline to an unrelated value"
                    findings.append(
                        self.finding(
                            func.module,
                            site.line,
                            f"{func.qualname} {how} to {callee.qualname}, "
                            f"which is {'/'.join(reasons)}; forward the "
                            "caller's deadline",
                        )
                    )
        return findings
