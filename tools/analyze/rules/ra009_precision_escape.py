"""RA009: float32 kernel values must not cross the public result boundary.

The float64 result contract (PR 9): ``QueryResult`` and
``BackendEstimate`` always carry float64 fields, whatever
:class:`PrecisionPolicy` the sweep ran under — float32 is an internal
kernel optimization, laundered back up with ``.astype(np.float64)``
before anything escapes.  A float32 array that leaks into a public
result silently halves every downstream consumer's precision (and
breaks the documented dtype).

Taint: values become ``f32`` at literal float32 casts
(``.astype(np.float32)``, ``dtype=np.float32``, ``np.float32(...)``,
``"float32"`` dtype strings, ``PrecisionPolicy.FLOAT32.dtype()``), flow
through arithmetic, helper returns (call-graph summaries), and
containers, and are killed by float64 casts (``.astype(np.float64)``,
``dtype=float``/``np.float64``, ``float(...)``).  Sinks are the
``QueryResult(...)`` / ``BackendEstimate(...)`` constructor arguments.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.analyze.callgraph import FunctionInfo, build_callgraph
from tools.analyze.core import Finding, Project, Rule, dotted_name
from tools.analyze.dataflow import TaintSpec, run_taint

TAG_F32 = "f32"
_SINKS = {"QueryResult", "BackendEstimate"}
_F64_NAMES = {"float64", "float", "double"}
_F32_NAMES = {"float32", "single", "half", "float16"}


def _dtype_class(node: Optional[ast.AST]) -> Optional[str]:
    """'f32' / 'f64' / None for a dtype-position expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _F32_NAMES:
            return "f32"
        if node.value in _F64_NAMES:
            return "f64"
        return None
    dotted = dotted_name(node) or ""
    tail = dotted.rsplit(".", 1)[-1]
    if tail in _F32_NAMES or "FLOAT32" in dotted:
        return "f32"
    if tail in _F64_NAMES or "FLOAT64" in dotted:
        return "f64"
    return None


def _dtype_keyword(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


class _PrecisionSpec(TaintSpec):
    def call_tags(self, func: FunctionInfo, node: ast.Call, ctx) -> Optional[Set[str]]:
        callee = node.func
        # float(x) and int(x) return scalars outside the array contract.
        if isinstance(callee, ast.Name) and callee.id in ("float", "int", "len"):
            return set()
        dotted = dotted_name(callee) or ""
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _F32_NAMES:
            return {TAG_F32}
        if tail in _F64_NAMES:
            return set()
        if isinstance(callee, ast.Attribute) and callee.attr == "astype":
            target = node.args[0] if node.args else _dtype_keyword(node)
            klass = _dtype_class(target)
            if klass == "f32":
                return {TAG_F32}
            if klass == "f64":
                return set()
            # astype(dtype) with a variable: tainted iff the dtype
            # expression itself flows from a float32 source.
            if target is not None and TAG_F32 in ctx.evaluate(target):
                return {TAG_F32}
            return None
        dtype_arg = _dtype_keyword(node)
        if dtype_arg is not None:
            klass = _dtype_class(dtype_arg)
            if klass == "f32":
                return {TAG_F32}
            if klass == "f64":
                return set()
            if TAG_F32 in ctx.evaluate(dtype_arg):
                return {TAG_F32}
        if isinstance(callee, ast.Attribute) and callee.attr == "dtype":
            # PrecisionPolicy.FLOAT32.dtype()
            if "FLOAT32" in (dotted_name(callee.value) or ""):
                return {TAG_F32}
        return None

    def attribute_tags(
        self, func: FunctionInfo, node: ast.Attribute, base: frozenset
    ) -> Optional[Set[str]]:
        if node.attr in _F32_NAMES:
            return {TAG_F32}
        return None


class RA009PrecisionEscape(Rule):
    rule_id = "RA009"
    name = "precision-escape"
    rationale = (
        "QueryResult/BackendEstimate document float64 fields; a float32 "
        "kernel array escaping the boundary silently halves downstream "
        "precision"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        flows = run_taint(graph, _PrecisionSpec())
        findings: List[Finding] = []
        for key in sorted(flows):
            flow = flows[key]
            func = flow.func
            for site in func.calls:
                callee = site.node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else getattr(callee, "attr", None)
                )
                if name not in _SINKS:
                    continue
                for label, arg in _constructor_args(site.node):
                    if TAG_F32 in flow.tags_of(arg):
                        findings.append(
                            self.finding(
                                func.module,
                                site.line,
                                f"{func.qualname}: {name}({label}=...) receives "
                                "a float32-tainted value; launder with "
                                ".astype(np.float64) before the public result "
                                "boundary",
                            )
                        )
        return findings


def _constructor_args(call: ast.Call):
    for index, arg in enumerate(call.args):
        yield f"arg{index}", arg
    for kw in call.keywords:
        if kw.arg:
            yield kw.arg, kw.value
