"""RA012: no blocking call while a lock region is live.

Sleeps, thread joins, foreign condition/event waits, queue handoffs,
and file/socket I/O under a held lock serialize every other thread
behind one slow operation — and once snapshot publishes move to
``multiprocessing.shared_memory``, a blocked publisher lock stalls
whole worker processes, not just threads.

Two layers, both over the shared call graph:

* a blocking atom executed lexically inside a ``with <lock>:`` region
  (``Condition.wait`` on the held lock itself is exempt — that is the
  release-and-wait idiom);
* a call under a lock to a function whose transitive may-block summary
  is non-empty (the blocking path is reported).

Lock *acquisition* under a lock is deliberately out of scope: that is
RA002's lock-order graph.
"""

from __future__ import annotations

from typing import List

from tools.analyze.blocking import blocking_atom, may_block, wait_releases_held_lock
from tools.analyze.callgraph import build_callgraph
from tools.analyze.core import Finding, Project, Rule


def _pretty(lock_id: str) -> str:
    return lock_id.split("::", 1)[-1]


class RA012BlockingUnderLock(Rule):
    rule_id = "RA012"
    name = "blocking-under-lock"
    rationale = (
        "a sleep/join/wait/IO call under a held lock serializes every "
        "other thread behind one slow operation; keep lock regions "
        "compute-only"
    )

    def check(self, project: Project) -> List[Finding]:
        graph = build_callgraph(project)
        summaries = may_block(graph)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            func = graph.functions[key]
            for site in func.calls:
                if not site.held:
                    continue
                held_names = ", ".join(sorted(_pretty(h) for h in site.held))
                atom = blocking_atom(site.node)
                if atom is not None:
                    if atom == "wait" and wait_releases_held_lock(
                        site.node, func, site.held
                    ):
                        continue
                    findings.append(
                        self.finding(
                            func.module,
                            site.line,
                            f"{func.qualname}: blocking call ({atom}) while "
                            f"holding {held_names}",
                        )
                    )
                    continue
                for callee in graph.resolve(site.desc):
                    reasons = summaries.get(callee, set())
                    if not reasons:
                        continue
                    callee_func = graph.functions[callee]
                    # A callee whose only blocking atom is a wait on a
                    # condition over the very lock we hold re-enters the
                    # release-and-wait idiom through a helper.
                    if reasons == {"wait"} and any(
                        wait_releases_held_lock(s.node, callee_func, site.held)
                        for s in callee_func.calls
                        if blocking_atom(s.node) == "wait"
                    ):
                        continue
                    findings.append(
                        self.finding(
                            func.module,
                            site.line,
                            f"{func.qualname}: call to {callee_func.qualname} "
                            f"may block ({', '.join(sorted(reasons))}) while "
                            f"holding {held_names}",
                        )
                    )
                    break
        return findings
