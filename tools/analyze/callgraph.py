"""Project-wide call graph shared by the interprocedural rules.

This is the call-resolution machinery RA002 grew for the lock-order
graph, factored out so every rule reasons over **one** model of the
project:

* every top-level function and method gets a :class:`FunctionInfo`
  summary: the locks it acquires, lexically nested acquisitions, and
  every call site annotated with the locks held at that point;
* call sites carry a :class:`CallDesc` descriptor that
  :meth:`CallGraph.resolve` maps to candidate function keys with the
  same deliberately-conservative heuristics RA002 shipped with
  (exact self-method, same-module function, class ``__init__``,
  unique-ish method names project-wide);
* constructor-passed locks are aliased with a union-find
  (``Counter(name, key, self._lock)`` makes ``Counter._lock`` *be* the
  registry lock), and :meth:`CallGraph.fixpoint` generalizes RA002's
  may-acquire propagation to any caller-absorbs-callee property
  (may-block for RA012, blocking-path reachability for RA008, ...).

The graph is built once per :class:`~tools.analyze.core.Project` and
cached, so a 12-rule run parses and summarizes each function exactly
once.
"""

from __future__ import annotations

import ast
import dataclasses
import weakref
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from tools.analyze.core import Module, Project, self_attr_path
from tools.analyze.locks import (
    CONTAINER_MUTATORS,
    ClassLockInfo,
    collect_class_locks,
    collect_module_locks,
    module_lock_in_with,
    with_item_lock_attrs,
)

#: Method names too generic to resolve (dict/list/str traffic would wire
#: unrelated classes together).
UNRESOLVABLE_METHODS = CONTAINER_MUTATORS | {
    "get",
    "items",
    "keys",
    "values",
    "copy",
    "format",
    "join",
    "split",
    "strip",
    "encode",
    "decode",
    "notify",
    "notify_all",
    "wait",
    "acquire",
    "release",
    # threading.Thread lifecycle: a `.start()`/`.join()` receiver is a
    # Thread, and the target runs on a fresh stack holding no locks.
    "start",
    "join",
    "run",
    "is_alive",
    # numpy surface: `np.array(...)` must not resolve to a project
    # method that happens to be called `array` (SnapshotFile.array).
    "array",
    "asarray",
    "astype",
    "reshape",
}

# Call descriptors: ("self", class_key, name) | ("name", module_relpath, name)
# | ("meth", name) | ("ctor", class_name)
CallDesc = Tuple[str, ...]


class UnionFind:
    """Path-compressed union-find with a deterministic canonical rep."""

    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        self.add(item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic canonical representative: lexicographic min.
            lo, hi = sorted((ra, rb))
            self.parent[hi] = lo


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body.

    ``desc`` is None for calls the resolver deliberately refuses to
    follow (container/str traffic, Thread lifecycle); the raw ``node``
    stays available so rules can still pattern-match the callee.
    """

    node: ast.Call
    desc: Optional[CallDesc]
    line: int
    held: FrozenSet[str]


@dataclasses.dataclass
class FunctionInfo:
    """Summary of one function/method."""

    key: str
    node: ast.AST
    module: Module
    class_info: Optional[ClassLockInfo]
    #: class key (``relpath::Class``) when this is a method, else None
    owner_class: Optional[str] = None
    #: lock node ids this body acquires lexically
    acquires: Set[str] = dataclasses.field(default_factory=set)
    #: (held-before, acquired, line) — lexically nested acquisitions
    nested: List[Tuple[FrozenSet[str], str, int]] = dataclasses.field(
        default_factory=list
    )
    calls: List[CallSite] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return getattr(self.node, "name", "<lambda>")

    @property
    def qualname(self) -> str:
        """``Class.method`` or bare function name."""
        return self.key.split("::", 1)[-1]

    @property
    def is_method(self) -> bool:
        return self.owner_class is not None

    def arg_names(self) -> List[str]:
        """Positional parameter names, ``self`` dropped for methods."""
        args = getattr(self.node, "args", None)
        if args is None:
            return []
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def kwonly_names(self) -> List[str]:
        args = getattr(self.node, "args", None)
        if args is None:
            return []
        return [a.arg for a in args.kwonlyargs]

    def all_param_names(self) -> List[str]:
        return self.arg_names() + self.kwonly_names()


@dataclasses.dataclass
class CallGraph:
    """The shared interprocedural model of a project."""

    project: Project
    functions: Dict[str, FunctionInfo]
    #: raw lock node id -> kind ("lock" | "rlock" | "condition" | "external")
    kinds: Dict[str, str]
    aliases: UnionFind
    #: class name -> list of class keys (module.relpath::Class)
    classes_by_name: Dict[str, List[str]]
    #: method name -> list of function keys
    methods_by_name: Dict[str, List[str]]
    #: function basename -> list of top-level function keys
    functions_by_name: Dict[str, List[str]]
    #: class key -> lock info (only classes that declare lock attrs)
    class_infos: Dict[str, ClassLockInfo]
    #: module relpath -> module-level lock name -> kind
    module_locks: Dict[str, Dict[str, str]]
    #: id(ast function node) -> function key, for rules walking modules
    key_of_node: Dict[int, str]

    def resolve(self, desc: Optional[CallDesc]) -> List[str]:
        """Function keys a call descriptor may refer to."""
        if desc is None:
            return []
        kind = desc[0]
        if kind == "self":
            _, class_key, name = desc
            key = f"{class_key}.{name}"
            if key in self.functions:
                return [key]
            return self.resolve(("meth", name))
        if kind == "name":
            _, relpath, name = desc
            key = f"{relpath}::{name}"
            if key in self.functions:
                return [key]
            if name in self.classes_by_name:
                return [
                    f"{class_key}.__init__"
                    for class_key in self.classes_by_name[name]
                    if f"{class_key}.__init__" in self.functions
                ]
            candidates = self.functions_by_name.get(name, [])
            if len(candidates) == 1:
                return candidates
            return []
        if kind == "meth":
            (_, name) = desc
            candidates = self.methods_by_name.get(name, [])
            if 1 <= len(candidates) <= 3:
                return candidates
            return []
        return []

    def fixpoint(
        self,
        init: Dict[str, Set[str]],
        *,
        max_iterations: int = 30,
        extra: Optional[Callable[[FunctionInfo, CallSite, Set[str]], Iterable[str]]] = None,
    ) -> Dict[str, Set[str]]:
        """Propagate a caller-absorbs-callee set property to a fixpoint.

        ``init`` seeds per-function sets (missing keys start empty); each
        iteration unions every resolved callee's set into its caller's.
        ``extra`` may contribute additional items per call site given the
        callee union so far (e.g. tagging the call that introduced a
        property).  Generalizes RA002's may-acquire propagation.
        """
        acc: Dict[str, Set[str]] = {key: set(init.get(key, ())) for key in self.functions}
        resolved: Dict[str, List[Tuple[CallSite, List[str]]]] = {
            key: [(site, self.resolve(site.desc)) for site in func.calls]
            for key, func in self.functions.items()
        }
        for _ in range(max_iterations):
            changed = False
            for key, func in self.functions.items():
                out = acc[key]
                before = len(out)
                for site, callees in resolved[key]:
                    callee_union: Set[str] = set()
                    for callee in callees:
                        callee_union |= acc.get(callee, set())
                    out |= callee_union
                    if extra is not None:
                        out |= set(extra(func, site, callee_union))
                if len(out) != before:
                    changed = True
            if not changed:
                break
        return acc


def lock_node(module: Module, owner: Optional[str], attr: str) -> str:
    """Stable node id for a lock: ``relpath::attr`` or ``relpath::Class.attr``."""
    if owner is None:
        return f"{module.relpath}::{attr}"
    return f"{module.relpath}::{owner}.{attr}"


_CACHE: "weakref.WeakKeyDictionary[Project, CallGraph]" = weakref.WeakKeyDictionary()


def build_callgraph(project: Project) -> CallGraph:
    """Build (or fetch the cached) call graph for a project."""
    cached = _CACHE.get(project)
    if cached is not None:
        return cached

    functions: Dict[str, FunctionInfo] = {}
    kinds: Dict[str, str] = {}
    aliases = UnionFind()
    classes_by_name: Dict[str, List[str]] = {}
    methods_by_name: Dict[str, List[str]] = {}
    functions_by_name: Dict[str, List[str]] = {}
    class_infos: Dict[str, ClassLockInfo] = {}
    module_locks: Dict[str, Dict[str, str]] = {}
    key_of_node: Dict[int, str] = {}

    for module in project.modules:
        module_locks[module.relpath] = collect_module_locks(module)
        for name, kind in module_locks[module.relpath].items():
            kinds[lock_node(module, None, name)] = kind
        for info in collect_class_locks(module):
            class_key = f"{module.relpath}::{info.node.name}"
            class_infos[class_key] = info
            for attr, kind in info.attrs.items():
                canonical = info.canonical_attr(attr)
                node = lock_node(module, info.node.name, canonical)
                if attr == canonical:
                    kinds.setdefault(node, "lock" if kind == "external" else kind)

    # Index classes/methods/functions and build per-function summaries.
    for module in project.modules:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef):
                class_key = f"{module.relpath}::{stmt.name}"
                classes_by_name.setdefault(stmt.name, []).append(class_key)
                info = class_infos.get(class_key)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        key = f"{class_key}.{item.name}"
                        func = FunctionInfo(key, item, module, info, owner_class=class_key)
                        functions[key] = func
                        key_of_node[id(item)] = key
                        methods_by_name.setdefault(item.name, []).append(key)
                        _summarize(func, module_locks[module.relpath])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{module.relpath}::{stmt.name}"
                func = FunctionInfo(key, stmt, module, None)
                functions[key] = func
                key_of_node[id(stmt)] = key
                functions_by_name.setdefault(stmt.name, []).append(key)
                _summarize(func, module_locks[module.relpath])

    _alias_constructor_locks(project, class_infos, module_locks, aliases)
    graph = CallGraph(
        project=project,
        functions=functions,
        kinds=kinds,
        aliases=aliases,
        classes_by_name=classes_by_name,
        methods_by_name=methods_by_name,
        functions_by_name=functions_by_name,
        class_infos=class_infos,
        module_locks=module_locks,
        key_of_node=key_of_node,
    )
    _CACHE[project] = graph
    return graph


def _summarize(func: FunctionInfo, mod_locks: Dict[str, str]) -> None:
    """Fill acquires/nested/calls by walking the function body once."""
    module = func.module
    info = func.class_info

    def lock_targets(item: ast.withitem) -> Set[str]:
        nodes: Set[str] = set()
        if info is not None:
            for attr in with_item_lock_attrs(item, info):
                nodes.add(lock_node(module, info.node.name, attr))
        name = module_lock_in_with(item, mod_locks)
        if name is not None:
            nodes.add(lock_node(module, None, name))
        return nodes

    def visit(node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                acquired |= lock_targets(item)
                visit(item.context_expr, held)
            for lock in sorted(acquired):
                func.acquires.add(lock)
                if held:
                    func.nested.append((frozenset(held), lock, node.lineno))
            inner = held + tuple(lock for lock in sorted(acquired) if lock not in held)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            desc = call_desc(node, func)
            func.calls.append(
                CallSite(node=node, desc=desc, line=node.lineno, held=frozenset(held))
            )
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    body = getattr(func.node, "body", [])
    for stmt in body:
        visit(stmt, ())


def call_desc(node: ast.Call, func: FunctionInfo) -> Optional[CallDesc]:
    """Descriptor for a call expression, or None when unresolvable."""
    callee = node.func
    if isinstance(callee, ast.Name):
        return ("name", func.module.relpath, callee.id)
    if isinstance(callee, ast.Attribute):
        attr_path = self_attr_path(callee)
        if attr_path is not None and "." not in attr_path and func.class_info:
            return ("self", f"{func.module.relpath}::{func.class_info.node.name}", attr_path)
        if callee.attr in UNRESOLVABLE_METHODS:
            return None
        return ("meth", callee.attr)
    return None


def _alias_constructor_locks(
    project: Project,
    class_infos: Dict[str, ClassLockInfo],
    module_locks: Dict[str, Dict[str, str]],
    aliases: UnionFind,
) -> None:
    """Union parameter-assigned lock attrs with the locks callers pass."""
    # Map class name -> (class_key, info) for classes with external locks.
    interesting: Dict[str, Tuple[str, ClassLockInfo]] = {}
    for class_key, info in class_infos.items():
        if info.attr_from_param:
            interesting[info.node.name] = (class_key, info)
    if not interesting:
        return

    for module in project.modules:
        enclosing: List[Optional[ClassLockInfo]] = [None]

        def visit(node: ast.AST) -> None:
            is_class = isinstance(node, ast.ClassDef)
            if is_class:
                key = f"{module.relpath}::{node.name}"
                enclosing.append(class_infos.get(key))
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                target = interesting.get(node.func.id)
                if target is not None:
                    _alias_one_call(node, target, module, enclosing[-1], module_locks, aliases)
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_class:
                enclosing.pop()

        visit(module.tree)


def _alias_one_call(
    call: ast.Call,
    target: Tuple[str, ClassLockInfo],
    module: Module,
    caller_info: Optional[ClassLockInfo],
    module_locks: Dict[str, Dict[str, str]],
    aliases: UnionFind,
) -> None:
    class_key, info = target
    init = next(
        (
            item
            for item in info.node.body
            if isinstance(item, ast.FunctionDef) and item.name == "__init__"
        ),
        None,
    )
    if init is None:
        return
    params = [arg.arg for arg in init.args.args][1:]  # drop self
    bound: Dict[str, ast.AST] = {}
    for param, arg in zip(params, call.args):
        bound[param] = arg
    for keyword in call.keywords:
        if keyword.arg:
            bound[keyword.arg] = keyword.value
    target_module_relpath, target_class = class_key.split("::")
    for attr, param in info.attr_from_param.items():
        arg = bound.get(param)
        if arg is None:
            continue
        attr_node = f"{target_module_relpath}::{target_class}.{attr}"
        caller_attr = self_attr_path(arg)
        if caller_attr and "." not in caller_attr and caller_info is not None:
            if caller_attr in caller_info.attrs:
                canonical = caller_info.canonical_attr(caller_attr)
                caller_node = (
                    f"{caller_info.module.relpath}::"
                    f"{caller_info.node.name}.{canonical}"
                )
                aliases.union(attr_node, caller_node)
        elif isinstance(arg, ast.Name) and arg.id in module_locks.get(module.relpath, {}):
            aliases.union(attr_node, f"{module.relpath}::{arg.id}")


def bind_call_args(
    call: ast.Call, callee: FunctionInfo
) -> Dict[str, ast.AST]:
    """Map a call's argument expressions onto the callee's parameter names.

    Positional args bind in order (``self`` already dropped for
    methods); keywords bind by name.  ``*args``/``**kwargs`` at the call
    site are ignored — the binding is best-effort for heuristic rules.
    """
    bound: Dict[str, ast.AST] = {}
    names = callee.arg_names()
    positional = [a for a in call.args if not isinstance(a, ast.Starred)]
    for name, arg in zip(names, positional):
        bound[name] = arg
    for keyword in call.keywords:
        if keyword.arg:
            bound[keyword.arg] = keyword.value
    return bound
