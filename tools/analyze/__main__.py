"""``python -m tools.analyze`` — run the repro-analyze rule suite.

Exit codes follow the repo convention: 0 clean, 2 findings or usage
error, 70 internal analyzer failure.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import Optional, Sequence

from tools.analyze.core import (
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    Project,
    load_baseline,
    run_rules,
    select_rules,
    write_baseline,
)
from tools.analyze.reporters import human_report, json_report

_REPO_ROOT = Path(__file__).resolve().parents[2]
_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Project-specific static analysis for the CrowdRTSE repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=str(_REPO_ROOT),
        help="repo root for relative paths and docs/ lookups",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=str(_DEFAULT_BASELINE),
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage error, 0 on --help: keep both.
        return int(exc.code or 0)

    try:
        rules = select_rules(args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.rationale}")
        return EXIT_OK

    try:
        project = Project.load(Path(args.root), [Path(p) for p in args.paths])
        old_baseline = load_baseline(Path(args.baseline))

        if args.write_baseline:
            # Regenerate from an unfiltered run, keeping any justification
            # already written for a finding that is still present.
            result = run_rules(project, rules, baseline=None)
            write_baseline(
                Path(args.baseline), result.findings, previous=old_baseline
            )
            print(
                f"wrote {len(result.findings)} finding(s) to {args.baseline}",
                file=sys.stderr,
            )
            return EXIT_OK

        baseline = {} if args.no_baseline else old_baseline
        result = run_rules(project, rules, baseline)
        report = (
            json_report(result, len(rules), len(project.modules))
            if args.format == "json"
            else human_report(result, len(rules), len(project.modules))
        )
        print(report)
        failed = bool(result.findings) or bool(result.stale_baseline)
        return EXIT_FINDINGS if failed else EXIT_OK
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS
    except Exception:  # pragma: no cover - analyzer bug
        traceback.print_exc()
        return EXIT_INTERNAL_ERROR


if __name__ == "__main__":
    sys.exit(main())
