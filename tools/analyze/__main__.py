"""``python -m tools.analyze`` — run the repro-analyze rule suite.

Exit codes follow the repo convention: 0 clean, 2 findings or usage
error, 70 internal analyzer failure.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import Optional, Sequence

from tools.analyze.core import (
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    Project,
    load_baseline,
    run_rules,
    select_rules,
    write_baseline,
)
from tools.analyze.reporters import human_report, json_report, sarif_report

_REPO_ROOT = Path(__file__).resolve().parents[2]
_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _changed_python_files(root: Path, raw_paths: Sequence[str]) -> set:
    """Root-relative ``.py`` paths from a changed-file list.

    Deleted files and non-Python files are silently dropped, so the
    output of ``git diff --name-only`` can be passed verbatim.
    """
    out = set()
    for raw in raw_paths:
        path = Path(raw)
        absolute = path if path.is_absolute() else root / path
        if path.suffix == ".py" and absolute.is_file():
            try:
                rel = absolute.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = absolute.as_posix()
            out.add(rel)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Project-specific static analysis for the CrowdRTSE repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=str(_REPO_ROOT),
        help="repo root for relative paths and docs/ lookups",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "treat the positional paths as a changed-file list (e.g. from "
            "`git diff --name-only`): analyze the full default tree for "
            "cross-module context but report only findings in those files; "
            "skips the stale-baseline check (subset view)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=str(_DEFAULT_BASELINE),
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage error, 0 on --help: keep both.
        return int(exc.code or 0)

    try:
        rules = select_rules(args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.rationale}")
        return EXIT_OK

    try:
        root = Path(args.root)
        if args.changed_only:
            changed = _changed_python_files(root, args.paths)
            if not changed:
                print("0 finding(s): no analyzable files in the changed set")
                return EXIT_OK
            tree = Path("src/repro") if (root / "src/repro").is_dir() else Path("src")
            project = Project.load(root, [tree])
        else:
            project = Project.load(root, [Path(p) for p in args.paths])
        old_baseline = load_baseline(Path(args.baseline))

        if args.write_baseline:
            # Regenerate from an unfiltered run, keeping any justification
            # already written for a finding that is still present.
            result = run_rules(project, rules, baseline=None)
            write_baseline(
                Path(args.baseline), result.findings, previous=old_baseline
            )
            print(
                f"wrote {len(result.findings)} finding(s) to {args.baseline}",
                file=sys.stderr,
            )
            return EXIT_OK

        baseline = {} if args.no_baseline else old_baseline
        result = run_rules(project, rules, baseline)
        if args.changed_only:
            # Findings outside the changed files (and stale-baseline noise
            # from the subset view) are the full run's business.
            result.findings = [f for f in result.findings if f.path in changed]
            result.stale_suppressions = [
                f for f in result.stale_suppressions if f.path in changed
            ]
            result.stale_baseline = []
        if args.format == "json":
            report = json_report(result, len(rules), len(project.modules))
        elif args.format == "sarif":
            report = sarif_report(result, rules)
        else:
            report = human_report(result, len(rules), len(project.modules))
        print(report)
        return EXIT_FINDINGS if result.failed else EXIT_OK
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS
    except Exception:  # pragma: no cover - analyzer bug
        traceback.print_exc()
        return EXIT_INTERNAL_ERROR


if __name__ == "__main__":
    sys.exit(main())
