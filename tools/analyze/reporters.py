"""Human-readable and JSON reporters for analysis runs."""

from __future__ import annotations

import json
from typing import List

from tools.analyze.core import RunResult


def human_report(result: RunResult, rule_count: int, module_count: int) -> str:
    """One ``path:line: RULE message`` line per finding plus a summary."""
    lines: List[str] = []
    for finding in result.findings:
        location = f"{finding.path}:{finding.line}" if finding.line else finding.path
        lines.append(f"{location}: {finding.rule} {finding.message}")
    for entry in result.stale_baseline:
        lines.append(
            "baseline: stale entry "
            f"{entry['rule']} {entry['path']}: {entry['message']} "
            "(no longer found; remove it)"
        )
    summary = (
        f"{len(result.findings)} finding(s) from {rule_count} rule(s) "
        f"over {module_count} module(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if result.stale_baseline:
        extras.append(f"{len(result.stale_baseline)} stale baseline entr(y/ies)")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def json_report(result: RunResult, rule_count: int, module_count: int) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in result.findings
        ],
        "stale_baseline": result.stale_baseline,
        "summary": {
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "rules": rule_count,
            "modules": module_count,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
