"""Human-readable, JSON, and SARIF reporters for analysis runs."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from tools.analyze.core import Rule, RunResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def human_report(result: RunResult, rule_count: int, module_count: int) -> str:
    """One ``path:line: RULE message`` line per finding plus a summary."""
    lines: List[str] = []
    for finding in result.findings:
        location = f"{finding.path}:{finding.line}" if finding.line else finding.path
        lines.append(f"{location}: {finding.rule} {finding.message}")
    for finding in result.stale_suppressions:
        lines.append(f"{finding.path}:{finding.line}: {finding.rule} {finding.message}")
    for entry in result.stale_baseline:
        what = entry.get("message") or entry.get("snippet") or entry.get("symbol", "")
        lines.append(
            "baseline: stale entry "
            f"{entry['rule']} {entry['path']}: {what} "
            "(no longer found; remove it)"
        )
    summary = (
        f"{len(result.findings)} finding(s) from {rule_count} rule(s) "
        f"over {module_count} module(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if result.stale_suppressions:
        extras.append(f"{len(result.stale_suppressions)} stale suppression(s)")
    if result.stale_baseline:
        extras.append(f"{len(result.stale_baseline)} stale baseline entr(y/ies)")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def json_report(result: RunResult, rule_count: int, module_count: int) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "symbol": f.symbol,
                "fingerprint": f.fingerprint,
            }
            for f in result.findings
        ],
        "stale_baseline": result.stale_baseline,
        "stale_suppressions": [
            {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
            for f in result.stale_suppressions
        ],
        "summary": {
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_suppressions": len(result.stale_suppressions),
            "rules": rule_count,
            "modules": module_count,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def sarif_report(result: RunResult, rules: Sequence[Rule]) -> str:
    """SARIF 2.1.0 output for GitHub code scanning.

    Every selected rule gets a driver entry (so the UI can show its
    rationale even with zero results); findings and stale suppressions
    become result objects with physical locations.
    """
    driver_rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    driver_rules.append(
        {
            "id": "NOQA",
            "name": "stale-suppression",
            "shortDescription": {"text": "stale-suppression"},
            "fullDescription": {
                "text": "a '# repro: noqa' comment that suppresses nothing"
            },
            "defaultConfiguration": {"level": "warning"},
        }
    )
    index = {entry["id"]: i for i, entry in enumerate(driver_rules)}

    results = []
    for finding in list(result.findings) + list(result.stale_suppressions):
        region: Dict[str, int] = {"startLine": finding.line if finding.line else 1}
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": index.get(finding.rule, 0),
                "level": "warning" if finding.rule == "NOQA" else "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": region,
                        }
                    }
                ],
                "partialFingerprints": {"reproAnalyze/v2": finding.fingerprint},
            }
        )

    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": (
                            "https://example.invalid/docs/STATIC_ANALYSIS.md"
                        ),
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


def validate_sarif(payload: dict) -> Optional[str]:
    """Structural check against the SARIF 2.1.0 shape; None when valid.

    Not a full JSON-schema validation (no network, no extra deps) but
    covers every constraint GitHub's upload endpoint enforces: version
    string, runs array, tool.driver.name, rule/result shapes, and that
    every result's ruleId and ruleIndex agree with the driver rules.
    """
    if not isinstance(payload, dict):
        return "payload must be an object"
    if payload.get("version") != SARIF_VERSION:
        return f"version must be {SARIF_VERSION!r}"
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        return "runs must be a non-empty array"
    for run in runs:
        driver = run.get("tool", {}).get("driver") if isinstance(run, dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            return "every run needs tool.driver.name"
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            return "tool.driver.rules must be an array"
        ids = []
        for rule in rules:
            if not isinstance(rule, dict) or not isinstance(rule.get("id"), str):
                return "every driver rule needs a string id"
            ids.append(rule["id"])
        results = run.get("results", [])
        if not isinstance(results, list):
            return "run.results must be an array"
        for res in results:
            if not isinstance(res, dict):
                return "every result must be an object"
            if not isinstance(res.get("message", {}).get("text"), str):
                return "every result needs message.text"
            rule_id = res.get("ruleId")
            if rule_id is not None and ids and rule_id not in ids:
                return f"result ruleId {rule_id!r} not among driver rules"
            rule_index = res.get("ruleIndex")
            if rule_index is not None and not (
                isinstance(rule_index, int) and 0 <= rule_index < max(len(ids), 1)
            ):
                return f"result ruleIndex {rule_index!r} out of range"
            for loc in res.get("locations", []):
                phys = loc.get("physicalLocation", {}) if isinstance(loc, dict) else {}
                art = phys.get("artifactLocation", {})
                if not isinstance(art.get("uri"), str):
                    return "every location needs artifactLocation.uri"
                region = phys.get("region", {})
                start = region.get("startLine")
                if start is not None and (not isinstance(start, int) or start < 1):
                    return "region.startLine must be a positive integer"
    return None
