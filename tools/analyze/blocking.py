"""Classification of blocking primitives, shared by RA008/RA012.

A *blocking atom* is a call that can stall the calling thread for an
unbounded (or externally-controlled) time: sleeps, thread joins,
condition/event waits, queue handoffs, socket traffic, file I/O,
subprocess spawns.  Lock acquisition is deliberately **not** an atom —
nested acquisition is RA002's domain (lock-order cycles), and treating
every ``with lock:`` as blocking would double-report it.

:func:`may_block` lifts the atom classification to a transitive
per-function summary over the shared call graph, so "calls a helper
that sleeps" counts the same as sleeping inline.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Set

from tools.analyze.callgraph import CallGraph, FunctionInfo, lock_node
from tools.analyze.core import dotted_name, self_attr_path

#: Dotted-name prefixes that mean wall-clock blocking wherever they appear.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep",
    "os.system": "subprocess",
    "socket.create_connection": "socket I/O",
}

_BLOCKING_MODULE_PREFIXES = {
    "subprocess.": "subprocess",
    "requests.": "network I/O",
    "urllib.": "network I/O",
}

#: Attribute calls that block regardless of receiver.
_BLOCKING_ATTRS = {
    "read_text": "file I/O",
    "write_text": "file I/O",
    "read_bytes": "file I/O",
    "write_bytes": "file I/O",
    "recv": "socket I/O",
    "recv_into": "socket I/O",
    "sendall": "socket I/O",
    "connect": "socket I/O",
    "accept": "socket I/O",
}

_QUEUEISH = ("queue", "jobs", "inbox", "outbox", "mailbox")


def blocking_atom(call: ast.Call) -> Optional[str]:
    """Short reason string when this call is a blocking primitive."""
    dotted = dotted_name(call.func)
    if dotted is not None:
        if dotted in _BLOCKING_DOTTED:
            return _BLOCKING_DOTTED[dotted]
        for prefix, reason in _BLOCKING_MODULE_PREFIXES.items():
            if dotted.startswith(prefix):
                return reason
    if isinstance(call.func, ast.Name):
        if call.func.id == "open":
            return "file I/O"
        if call.func.id == "input":
            return "stdin read"
        return None
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    if attr in _BLOCKING_ATTRS:
        return _BLOCKING_ATTRS[attr]
    if attr == "sleep":
        return "time.sleep"
    if attr == "wait":
        # Condition/Event/Future wait.  ``Condition.wait`` on a lock the
        # caller holds is the legitimate release-and-wait idiom; rules
        # exempt that case via :func:`wait_releases_held_lock`.
        return "wait"
    if attr == "join":
        # Distinguish Thread.join from str.join: a string join always
        # passes the iterable positionally; Thread.join takes at most a
        # timeout (usually by keyword or not at all).
        receiver_is_str = isinstance(call.func.value, ast.Constant) and isinstance(
            call.func.value.value, str
        )
        if receiver_is_str or len(call.args) > 1:
            return None
        if len(call.args) == 1 and not isinstance(
            call.args[0], (ast.Constant, ast.Name)
        ):
            return None
        if len(call.args) == 1 and isinstance(call.args[0], ast.Name):
            # ``sep.join(parts)`` — one positional non-literal arg is
            # almost always an iterable, not a timeout.
            return None
        return "thread join"
    if attr in ("get", "put", "get_nowait", "put_nowait"):
        receiver = dotted_name(call.func.value) or ""
        base = receiver.lower()
        if any(marker in base for marker in _QUEUEISH):
            if attr.endswith("_nowait"):
                return None
            return f"queue.{attr}"
    return None


def wait_releases_held_lock(
    call: ast.Call, func: FunctionInfo, held: FrozenSet[str]
) -> bool:
    """True for ``cond.wait()`` where ``cond`` wraps a held lock.

    ``Condition.wait`` atomically releases the wrapped lock while
    sleeping, so waiting on a condition over the *only* held lock is the
    correct backpressure idiom, not a blocking-under-lock bug.
    """
    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "wait"):
        return False
    info = func.class_info
    if info is None:
        return False
    attr = self_attr_path(call.func.value)
    if attr is None or "." in attr:
        return False
    canonical = info.canonical_attr(attr)
    node = lock_node(func.module, info.node.name, canonical)
    return held <= {node} and node in held


def function_atoms(func: FunctionInfo) -> Set[str]:
    """Blocking atoms appearing directly in one function body."""
    atoms: Set[str] = set()
    for site in func.calls:
        reason = blocking_atom(site.node)
        if reason is None:
            continue
        if reason == "wait" and wait_releases_held_lock(site.node, func, site.held):
            # Only exempt from the *summary* when the wait can never
            # block a caller-held lock: Condition.wait still blocks any
            # other lock the caller holds, so keep it in the summary.
            atoms.add("wait")
            continue
        atoms.add(reason)
    return atoms


def may_block(graph: CallGraph) -> Dict[str, Set[str]]:
    """Transitive blocking reasons per function key (fixpoint)."""
    return graph.fixpoint(
        {key: function_atoms(func) for key, func in graph.functions.items()}
    )
