"""Rule engine: findings, suppressions, baseline, and the runner.

Design notes
------------

* A :class:`Project` is a parsed view of a set of ``.py`` files plus the
  repo root (so doc-aware rules can find ``docs/OBSERVABILITY.md`` and
  ``docs/API.md`` relative to it).  Rules never touch the filesystem
  directly; tests build throwaway projects under ``tmp_path``.
* Suppression is per-line: ``# repro: noqa[RA001]`` (comma-separable) or
  a bare ``# repro: noqa`` on the flagged line silences the finding.
  A suppression that suppresses nothing is itself reported (stale-noqa,
  like ruff's), provided every rule it names actually ran.
* The baseline is a JSON list of grandfathered findings keyed by a
  line-number-free fingerprint over (rule, path, enclosing symbol,
  normalized source snippet), so neither line moves nor message rewords
  invalidate it.  Version-1 entries (keyed on the message) still match
  through :attr:`Finding.legacy_fingerprint` and are rewritten to the
  new scheme by ``--write-baseline``.  Every entry must carry a
  justification.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

EXIT_OK = 0
EXIT_FINDINGS = 2
EXIT_INTERNAL_ERROR = 70

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a location.

    ``path`` is repo-root-relative (posix separators) so fingerprints are
    machine-independent; ``line`` is 1-based (0 for whole-file findings).
    ``symbol`` is the enclosing ``Class.method`` (or ``<module>``) and
    ``snippet`` the whitespace-normalized source line — together they key
    the baseline fingerprint, so entries survive line moves, message
    rewords, and edits to neighboring lines.
    """

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable id used by the baseline (deliberately line-free)."""
        if self.symbol or self.snippet:
            key = f"{self.rule}::{self.path}::{self.symbol}::{self.snippet}"
        else:
            key = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    @property
    def legacy_fingerprint(self) -> str:
        """The version-1 (message-keyed) fingerprint, for baseline migration."""
        digest = hashlib.sha256(
            f"{self.rule}::{self.path}::{self.message}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule + self.message)


class Module:
    """One parsed source file."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self._suppressions = self._parse_suppressions()
        self._symbol_spans: Optional[List[Tuple[int, int, str]]] = None

    @property
    def name(self) -> str:
        """Dotted-ish short name: final path component without ``.py``."""
        return Path(self.relpath).stem

    def line_text(self, line: int) -> str:
        """Source text of a 1-based line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def snippet_at(self, line: int) -> str:
        """Whitespace-normalized source line, used for fingerprints."""
        return " ".join(self.line_text(line).split())

    def symbol_at(self, line: int) -> str:
        """Qualified enclosing symbol (``Class.method``) for a line.

        ``<module>`` for module-level code or line 0 (whole-file
        findings).
        """
        if self._symbol_spans is None:
            spans: List[Tuple[int, int, str]] = []

            def collect(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        qual = f"{prefix}{child.name}"
                        end = getattr(child, "end_lineno", child.lineno) or child.lineno
                        spans.append((child.lineno, end, qual))
                        collect(child, f"{qual}.")
                    else:
                        collect(child, prefix)

            collect(self.tree, "")
            self._symbol_spans = sorted(spans)
        best = "<module>"
        best_size = -1
        for start, end, qual in self._symbol_spans:
            if start <= line <= end and (best_size < 0 or end - start <= best_size):
                best, best_size = qual, end - start
        return best

    def _parse_suppressions(self) -> Dict[int, Optional[Set[str]]]:
        """Map line number -> suppressed rule ids (None = all rules).

        Only genuine comment tokens count — a ``# repro: noqa`` spelled
        inside a docstring or string literal is prose, not a
        suppression (and must not trip the stale-noqa check).
        """
        out: Dict[int, Optional[Set[str]]] = {}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return out
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            raw = match.group("rules")
            lineno = token.start[0]
            if raw is None:
                out[lineno] = None
            else:
                out[lineno] = {
                    part.strip().upper() for part in raw.split(",") if part.strip()
                }
        return out

    def is_suppressed(self, rule: str, line: int) -> bool:
        if line not in self._suppressions:
            return False
        rules = self._suppressions[line]
        return rules is None or rule.upper() in rules


class Project:
    """A set of parsed modules under one repo root."""

    def __init__(self, root: Path, modules: Sequence[Module]) -> None:
        self.root = Path(root)
        self.modules = sorted(modules, key=lambda m: m.relpath)
        self._by_relpath = {m.relpath: m for m in self.modules}

    @classmethod
    def load(cls, root: Path, paths: Sequence[Path]) -> "Project":
        """Parse every ``.py`` file under the given files/directories."""
        root = Path(root).resolve()
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            path = path.resolve()
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
            else:
                raise FileNotFoundError(f"not a python file or directory: {raw}")
        modules = []
        seen: Set[Path] = set()
        for path in files:
            if path in seen:
                continue
            seen.add(path)
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            modules.append(Module(path, rel, path.read_text(encoding="utf-8")))
        return cls(root, modules)

    def module(self, relpath: str) -> Optional[Module]:
        return self._by_relpath.get(relpath)

    def find_module(self, suffix: str) -> Optional[Module]:
        """First module whose relpath ends with ``suffix`` (posix)."""
        for mod in self.modules:
            if mod.relpath.endswith(suffix):
                return mod
        return None

    def doc_path(self, name: str) -> Path:
        return self.root / "docs" / name

    def doc_text(self, name: str) -> Optional[str]:
        path = self.doc_path(name)
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id``/``name``/``rationale`` and implement
    :meth:`check`.  Findings should be emitted in deterministic order;
    the runner sorts globally anyway.
    """

    rule_id: str = "RA000"
    name: str = "abstract rule"
    rationale: str = ""

    def check(self, project: Project) -> List[Finding]:
        raise NotImplementedError

    def finding(self, module_or_path, line: int, message: str) -> Finding:
        if isinstance(module_or_path, Module):
            return Finding(
                rule=self.rule_id,
                path=module_or_path.relpath,
                line=line,
                message=message,
                symbol=module_or_path.symbol_at(line) if line else "<module>",
                snippet=module_or_path.snippet_at(line),
            )
        return Finding(
            rule=self.rule_id, path=str(module_or_path), line=line, message=message
        )


# -- baseline ---------------------------------------------------------------


def load_baseline(path: Path) -> Dict[str, dict]:
    """Load baseline entries keyed by fingerprint.

    Missing file -> empty baseline.  Malformed content raises
    ``ValueError`` (the runner maps that to the internal-error exit).
    Version-2 entries carry ``symbol``/``snippet`` and key on them;
    version-1 entries (``message`` only) key on the legacy
    message-based fingerprint so old baselines keep matching until
    rewritten by ``--write-baseline``.
    """
    path = Path(path)
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", []) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} must hold a list of findings")
    out: Dict[str, dict] = {}
    for entry in entries:
        if not isinstance(entry, dict) or not {"rule", "path"} <= set(entry):
            raise ValueError(f"malformed baseline entry in {path}: {entry!r}")
        if not ({"symbol", "snippet"} & set(entry) or "message" in entry):
            raise ValueError(f"malformed baseline entry in {path}: {entry!r}")
        finding = Finding(
            rule=entry["rule"],
            path=entry["path"],
            line=0,
            message=entry.get("message", ""),
            symbol=entry.get("symbol", ""),
            snippet=entry.get("snippet", ""),
        )
        out[finding.fingerprint] = entry
    return out


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    previous: Optional[Dict[str, dict]] = None,
) -> None:
    """Write the findings as a fresh version-2 baseline.

    Justifications default to a TODO marker; entries matching
    ``previous`` (by the new or the legacy fingerprint, so version-1
    baselines migrate in place) keep their written justification.
    """
    previous = previous or {}
    entries = []
    for f in sorted(findings, key=Finding.sort_key):
        kept = previous.get(f.fingerprint) or previous.get(f.legacy_fingerprint) or {}
        entries.append(
            {
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "snippet": f.snippet,
                "message": f.message,
                "justification": kept.get("justification", "TODO: justify or fix"),
            }
        )
    payload = {"version": 2, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@dataclasses.dataclass
class RunResult:
    findings: List[Finding]
    suppressed: int
    baselined: int
    stale_baseline: List[dict]
    #: ``# repro: noqa`` comments that suppressed nothing (rule "NOQA")
    stale_suppressions: List[Finding] = dataclasses.field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.findings or self.stale_baseline or self.stale_suppressions)


#: Pseudo rule id for stale-suppression findings (not selectable, not
#: suppressible, not baselineable — remove the comment instead).
NOQA_RULE = "NOQA"


def _stale_suppressions(
    project: Project,
    rules: Sequence[Rule],
    used: Set[Tuple[str, int]],
) -> List[Finding]:
    """Suppression comments that matched no finding of any rule they name.

    A suppression is only judged when every rule it names actually ran
    (bare ``noqa`` requires the full registry), so ``--select`` subsets
    never produce false stale reports.
    """
    ran = {rule.rule_id for rule in rules}
    all_ids = {rule_cls.rule_id for rule_cls in _registered_rule_classes()}
    out: List[Finding] = []
    for module in project.modules:
        for line, named in sorted(module._suppressions.items()):
            required = all_ids if named is None else named
            if not required <= ran:
                continue
            if (module.relpath, line) in used:
                continue
            label = "" if named is None else f"[{', '.join(sorted(named))}]"
            out.append(
                Finding(
                    rule=NOQA_RULE,
                    path=module.relpath,
                    line=line,
                    message=(
                        f"suppression '# repro: noqa{label}' matches no "
                        "finding; remove it"
                    ),
                    symbol=module.symbol_at(line),
                    snippet=module.snippet_at(line),
                )
            )
    return out


def _registered_rule_classes() -> List[type]:
    from tools.analyze.rules import ALL_RULES

    return list(ALL_RULES)


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    baseline: Optional[Dict[str, dict]] = None,
) -> RunResult:
    """Run every rule, then drop suppressed and baselined findings.

    Suppression comments that suppressed nothing are reported as
    :data:`NOQA_RULE` findings in ``stale_suppressions``.
    """
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project))
    raw.sort(key=Finding.sort_key)

    suppressed = 0
    used_suppressions: Set[Tuple[str, int]] = set()
    unsuppressed: List[Finding] = []
    for finding in raw:
        module = project.module(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed += 1
            used_suppressions.add((finding.path, finding.line))
        else:
            unsuppressed.append(finding)

    baseline = baseline or {}
    seen_fingerprints: Set[str] = set()
    kept: List[Finding] = []
    baselined = 0
    for finding in unsuppressed:
        fingerprint = finding.fingerprint
        if fingerprint not in baseline and finding.legacy_fingerprint in baseline:
            fingerprint = finding.legacy_fingerprint
        seen_fingerprints.add(fingerprint)
        if fingerprint in baseline:
            baselined += 1
        else:
            kept.append(finding)
    stale = [
        entry
        for fingerprint, entry in sorted(baseline.items())
        if fingerprint not in seen_fingerprints
    ]
    return RunResult(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        stale_suppressions=_stale_suppressions(project, rules, used_suppressions),
    )


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    from tools.analyze.rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def select_rules(spec: Optional[str]) -> List[Rule]:
    """Instantiate the rules named in a comma-separated ``--select`` spec."""
    rules = default_rules()
    if not spec:
        return rules
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    known = {rule.rule_id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rule for rule in rules if rule.rule_id in wanted]


# -- shared AST helpers ------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr_path(node: ast.AST) -> Optional[str]:
    """``a.b`` for ``self.a.b``; None when not rooted at ``self``."""
    dotted = dotted_name(node)
    if dotted is None or not dotted.startswith("self."):
        return None
    return dotted[len("self.") :]


def const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
