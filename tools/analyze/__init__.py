"""repro-analyze: project-specific static analysis for the CrowdRTSE repo.

A small pluggable AST-based rule engine (stdlib only) that machine-checks
the invariants the concurrent serving stack depends on:

* RA001 — lock discipline (no shared attribute mutated both inside and
  outside ``with self._lock`` in a lock-declaring class);
* RA002 — lock acquisition-order graph must be acyclic (deadlock check);
* RA003 — metric/span names in ``src/repro`` and the catalog tables in
  ``docs/OBSERVABILITY.md`` must match in both directions;
* RA004 — public entry points raise only ``ReproError`` subclasses
  outside ``wrap_internal`` regions;
* RA005 — every ``warn_deprecated_once`` call names a removal version
  documented in ``docs/API.md`` (and vice versa);
* RA006 — no global RNG or wall-clock calls outside whitelisted modules.

Run ``python -m tools.analyze`` from the repo root; the rule catalog and
suppression/baseline workflow are documented in docs/STATIC_ANALYSIS.md.
"""

from tools.analyze.core import (
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    Finding,
    Module,
    Project,
    Rule,
    load_baseline,
    run_rules,
    write_baseline,
)

__all__ = [
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
    "EXIT_OK",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "load_baseline",
    "run_rules",
    "write_baseline",
]
