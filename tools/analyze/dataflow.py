"""Forward dataflow with a taint-style value-provenance lattice.

The engine the RA007–RA011 rules share.  Values are abstracted as sets
of string *tags* (the lattice is the powerset under union); a
:class:`TaintSpec` defines where tags are born (sources), where they
die (sanitizers), and how calls combine them.  For each function the
engine walks the body once in program order, maintaining an
environment ``name -> tags``, and records the tags of **every
expression node** it evaluates, so rules can afterwards walk the AST
themselves and ask :meth:`FunctionFlow.tags_of` at their sinks.

Precision choices (deliberately simple, biased to avoid false
positives on idiomatic code):

* straight-line assignments are strong updates — ``x =
  x.astype(np.float64)`` launders ``x``;
* assignments inside ``if``/``while``/``for``/``try`` bodies are weak
  updates (the new tags union with the old, since the branch may not
  run); loop bodies are walked twice so tags born late in the body
  reach uses at the top;
* calls to resolved project functions use per-function *return-tag
  summaries* computed to a fixpoint over the shared call graph;
  unresolved calls propagate the union of receiver and argument tags
  unless the spec says otherwise.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from tools.analyze.callgraph import CallGraph, FunctionInfo

EMPTY: FrozenSet[str] = frozenset()


class TaintSpec:
    """Override points for one taint analysis.

    Every hook returning ``None`` means "no opinion, use the default
    propagation"; returning a set (possibly empty) is authoritative.
    """

    def functions(self, graph: CallGraph) -> Iterable[FunctionInfo]:
        """Which functions to analyze (default: the whole project)."""
        return graph.functions.values()

    def param_tags(self, func: FunctionInfo, name: str) -> Set[str]:
        """Tags a parameter starts with (e.g. ``snapshot`` params)."""
        return set()

    def name_tags(self, func: FunctionInfo, node: ast.Name) -> Set[str]:
        """Extra tags for a bare name read (e.g. module constants)."""
        return set()

    def constant_tags(self, node: ast.Constant) -> Set[str]:
        return set()

    def attribute_tags(
        self, func: FunctionInfo, node: ast.Attribute, base: FrozenSet[str]
    ) -> Optional[Set[str]]:
        """Tags of ``base.attr``.  Default: inherit the base's tags."""
        return None

    def call_tags(
        self, func: FunctionInfo, node: ast.Call, ctx: "EvalContext"
    ) -> Optional[Set[str]]:
        """Tags of a call result; ``None`` falls through to summaries +
        receiver/argument propagation."""
        return None

    def fstring_tags(
        self, func: FunctionInfo, node: ast.JoinedStr, parts: FrozenSet[str]
    ) -> Optional[Set[str]]:
        return None


@dataclasses.dataclass
class EvalContext:
    """What a spec hook may consult while classifying a call."""

    graph: CallGraph
    func: FunctionInfo
    summaries: Dict[str, FrozenSet[str]]
    evaluate: "Evaluator"

    def arg_tags(self, node: ast.Call) -> FrozenSet[str]:
        out: Set[str] = set()
        for arg in node.args:
            out |= self.evaluate(arg)
        for kw in node.keywords:
            out |= self.evaluate(kw.value)
        return frozenset(out)

    def receiver_tags(self, node: ast.Call) -> FrozenSet[str]:
        if isinstance(node.func, ast.Attribute):
            return self.evaluate(node.func.value)
        return EMPTY

    def callee_summary_tags(self, node: ast.Call) -> FrozenSet[str]:
        from tools.analyze.callgraph import call_desc

        out: Set[str] = set()
        for key in self.graph.resolve(call_desc(node, self.func)):
            out |= self.summaries.get(key, EMPTY)
        return frozenset(out)


class Evaluator:
    """Callable: ``evaluate(expr) -> FrozenSet[str]`` against one env."""

    def __init__(self, flow: "FunctionFlow") -> None:
        self._flow = flow

    def __call__(self, node: ast.AST) -> FrozenSet[str]:
        return self._flow._eval(node)


@dataclasses.dataclass
class FunctionFlow:
    """The result of analyzing one function body."""

    func: FunctionInfo
    spec: TaintSpec
    graph: CallGraph
    summaries: Dict[str, FrozenSet[str]]
    env: Dict[str, FrozenSet[str]] = dataclasses.field(default_factory=dict)
    #: id(expr node) -> tags at evaluation time
    node_tags: Dict[int, FrozenSet[str]] = dataclasses.field(default_factory=dict)
    returns: FrozenSet[str] = EMPTY
    _branch_depth: int = 0

    def tags_of(self, node: ast.AST) -> FrozenSet[str]:
        """Tags recorded for an expression during the walk."""
        return self.node_tags.get(id(node), EMPTY)

    # -- expression evaluation ---------------------------------------------

    def _eval(self, node: ast.AST) -> FrozenSet[str]:
        tags = self._eval_inner(node)
        self.node_tags[id(node)] = tags
        return tags

    def _eval_inner(self, node: ast.AST) -> FrozenSet[str]:
        spec, func = self.spec, self.func
        if isinstance(node, ast.Name):
            return frozenset(self.env.get(node.id, EMPTY) | spec.name_tags(func, node))
        if isinstance(node, ast.Constant):
            return frozenset(spec.constant_tags(node))
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            custom = spec.attribute_tags(func, node, base)
            return frozenset(custom) if custom is not None else base
        if isinstance(node, ast.Subscript):
            tags = self._eval(node.value)
            self._eval(node.slice)
            return tags
        if isinstance(node, ast.Call):
            ctx = EvalContext(self.graph, func, self.summaries, Evaluator(self))
            # Evaluate operands first so their node_tags are recorded.
            recv = ctx.receiver_tags(node)
            args = ctx.arg_tags(node)
            custom = spec.call_tags(func, node, ctx)
            if custom is not None:
                return frozenset(custom)
            return frozenset(ctx.callee_summary_tags(node) | recv | args)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self._eval(value)
            return frozenset(out)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self._eval(elt)
            return frozenset(out)
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return frozenset(out)
        if isinstance(node, ast.JoinedStr):
            parts: Set[str] = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    parts |= self._eval(value.value)
            custom = self.spec.fstring_tags(func, node, frozenset(parts))
            return frozenset(custom) if custom is not None else frozenset(parts)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tags = self._eval(node.value)
            self._bind(node.target, tags)
            return tags
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node.generators, [node.key, node.value])
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return EMPTY
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        return EMPTY

    def _eval_comprehension(
        self, generators: List[ast.comprehension], elements: List[ast.expr]
    ) -> FrozenSet[str]:
        saved = dict(self.env)
        for gen in generators:
            iter_tags = self._eval(gen.iter)
            self._bind(gen.target, iter_tags)
            for cond in gen.ifs:
                self._eval(cond)
        out: Set[str] = set()
        for element in elements:
            out |= self._eval(element)
        self.env = saved
        return frozenset(out)

    # -- statement walk -----------------------------------------------------

    def _bind(self, target: ast.AST, tags: FrozenSet[str]) -> None:
        if isinstance(target, ast.Name):
            if self._branch_depth > 0:
                tags = tags | self.env.get(target.id, EMPTY)
            self.env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tags)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Stores through attributes/subscripts don't retag the base,
            # but the base expression still gets evaluated (sink rules
            # look its tags up).
            self._eval(target.value)
            if isinstance(target, ast.Subscript):
                self._eval(target.slice)

    def _walk_body(self, body: List[ast.stmt], *, branched: bool) -> None:
        if branched:
            self._branch_depth += 1
        for stmt in body:
            self._walk_stmt(stmt)
        if branched:
            self._branch_depth -= 1

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, tags)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = tags | self.env.get(stmt.target.id, EMPTY)
                self.node_tags[id(stmt.target)] = self.env.get(stmt.target.id, EMPTY)
                self.env[stmt.target.id] = merged
            else:
                self._bind(stmt.target, tags)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = self.returns | self._eval(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._walk_body(stmt.body, branched=True)
            self._walk_body(stmt.orelse, branched=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self._eval(stmt.iter)
            self._bind(stmt.target, iter_tags)
            # Two passes so tags born late in the body reach early uses.
            self._walk_body(stmt.body, branched=True)
            self._walk_body(stmt.body, branched=True)
            self._walk_body(stmt.orelse, branched=True)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._walk_body(stmt.body, branched=True)
            self._walk_body(stmt.body, branched=True)
            self._walk_body(stmt.orelse, branched=True)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tags)
            self._walk_body(stmt.body, branched=False)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, branched=True)
            for handler in stmt.handlers:
                self._walk_body(handler.body, branched=True)
            self._walk_body(stmt.orelse, branched=True)
            self._walk_body(stmt.finalbody, branched=True)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing flows.


def analyze_function(
    graph: CallGraph,
    spec: TaintSpec,
    func: FunctionInfo,
    summaries: Dict[str, FrozenSet[str]],
) -> FunctionFlow:
    """One forward pass over a function body."""
    flow = FunctionFlow(func=func, spec=spec, graph=graph, summaries=summaries)
    for name in func.all_param_names():
        tags = spec.param_tags(func, name)
        if tags:
            flow.env[name] = frozenset(tags)
    body = getattr(func.node, "body", [])
    flow._walk_body(body, branched=False)
    return flow


def run_taint(
    graph: CallGraph, spec: TaintSpec, *, max_iterations: int = 5
) -> Dict[str, FunctionFlow]:
    """Analyze every spec-selected function with return-tag summaries.

    Iterates to a summary fixpoint: each round re-analyzes functions
    whose callees' return tags grew, so helper-returns-tainted flows
    through call chains.
    """
    targets = {func.key: func for func in spec.functions(graph)}
    summaries: Dict[str, FrozenSet[str]] = {}
    flows: Dict[str, FunctionFlow] = {}
    for _ in range(max_iterations):
        changed = False
        for key, func in targets.items():
            flow = analyze_function(graph, spec, func, summaries)
            flows[key] = flow
            if flow.returns != summaries.get(key, EMPTY):
                summaries[key] = flow.returns
                changed = True
        if not changed:
            break
    return flows
