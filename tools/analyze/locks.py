"""Shared lock modelling for the RA001/RA002 rules.

Identifies, per module:

* module-level locks (``_ENGINES_LOCK = threading.Lock()``),
* per-class lock attributes (``self._lock = threading.RLock()``), with
  ``threading.Condition(self._lock)`` treated as an alias of the wrapped
  lock and parameter-assigned attributes (``self._lock = lock``) marked
  ``external`` so instances can later be aliased to the lock their
  constructor receives,
* lock-returning helper methods (``return self._probe_lock``), so
  ``with self._maybe_probe_lock():`` counts as an acquisition.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from tools.analyze.core import Module, dotted_name, self_attr_path

LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
#: Attribute names that look like locks even when assigned from a parameter.
_LOCKISH_SUFFIXES = ("lock", "mutex")

#: Methods exempt from the both-sides rule: construction happens before
#: the object is shared, so unlocked writes there are not races.
CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__new__"}


def lock_factory_of(node: ast.AST) -> Optional[str]:
    """``Lock``/``RLock``/``Condition`` when node is a threading factory call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in LOCK_FACTORIES
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    ):
        return func.attr
    if isinstance(func, ast.Name) and func.id in LOCK_FACTORIES:
        return func.id
    return None


def looks_like_lock_name(attr: str) -> bool:
    return attr.lstrip("_").lower().endswith(_LOCKISH_SUFFIXES)


@dataclasses.dataclass
class ClassLockInfo:
    """Lock attributes declared by one class."""

    module: Module
    node: ast.ClassDef
    #: attr -> kind ("lock" | "rlock" | "condition" | "external")
    attrs: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: condition attr -> the lock attr it wraps (same class)
    condition_wraps: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: method name -> lock attrs it may return (``_maybe_probe_lock`` style)
    lock_returners: Dict[str, Set[str]] = dataclasses.field(default_factory=dict)
    #: external lock attr -> __init__ parameter name it was assigned from
    attr_from_param: Dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module.relpath}::{self.node.name}"

    def canonical_attr(self, attr: str) -> str:
        """Resolve a condition attr to the lock it wraps (if known)."""
        return self.condition_wraps.get(attr, attr)


def collect_class_locks(module: Module) -> List[ClassLockInfo]:
    """Lock declarations for every class in a module (top-level classes)."""
    out: List[ClassLockInfo] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassLockInfo(module=module, node=node)
        methods = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            param_names = {arg.arg for arg in method.args.args}
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    attr = self_attr_path(target)
                    if attr is None or "." in attr:
                        continue
                    factory = lock_factory_of(stmt.value)
                    if factory == "Condition":
                        info.attrs[attr] = "condition"
                        call = stmt.value
                        if isinstance(call, ast.Call) and call.args:
                            wrapped = self_attr_path(call.args[0])
                            if wrapped and "." not in wrapped:
                                info.condition_wraps[attr] = wrapped
                    elif factory == "RLock":
                        info.attrs[attr] = "rlock"
                    elif factory == "Lock":
                        info.attrs[attr] = "lock"
                    elif (
                        looks_like_lock_name(attr)
                        and isinstance(stmt.value, ast.Name)
                        and method.name in CONSTRUCTION_METHODS
                    ):
                        info.attrs.setdefault(attr, "external")
                        if stmt.value.id in param_names:
                            info.attr_from_param[attr] = stmt.value.id
        # Helper methods whose return value is one of the class locks.
        for method in methods:
            returned: Set[str] = set()
            for stmt in ast.walk(method):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    attr = self_attr_path(stmt.value)
                    if attr and "." not in attr and attr in info.attrs:
                        returned.add(attr)
            if returned:
                info.lock_returners[method.name] = returned
        if info.attrs:
            out.append(info)
    return out


def collect_module_locks(module: Module) -> Dict[str, str]:
    """Module-level ``NAME = threading.Lock()`` declarations: name -> kind."""
    out: Dict[str, str] = {}
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        factory = lock_factory_of(stmt.value)
        if factory is None:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out[target.id] = factory.lower()
    return out


def with_item_lock_attrs(
    item: ast.withitem, info: ClassLockInfo
) -> Set[str]:
    """Canonical lock attrs acquired by one ``with`` item of a method.

    Handles ``with self._lock:``, Condition aliases, and lock-returning
    helper calls (``with self._maybe_probe_lock():``).
    """
    expr = item.context_expr
    attr = self_attr_path(expr)
    if attr and "." not in attr and attr in info.attrs:
        return {info.canonical_attr(attr)}
    if isinstance(expr, ast.Call):
        callee = self_attr_path(expr.func)
        if callee and "." not in callee and callee in info.lock_returners:
            return {info.canonical_attr(a) for a in info.lock_returners[callee]}
    return set()


def module_lock_in_with(
    item: ast.withitem, module_locks: Dict[str, str]
) -> Optional[str]:
    """Module-level lock name acquired by a ``with`` item, if any."""
    expr = item.context_expr
    if isinstance(expr, ast.Name) and expr.id in module_locks:
        return expr.id
    dotted = dotted_name(expr)
    if dotted:
        tail = dotted.rsplit(".", 1)[-1]
        if tail in module_locks and dotted.count(".") <= 1:
            return tail
    return None


#: Container methods that mutate their receiver in place.
CONTAINER_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "add",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "sort",
    "reverse",
}


def mutations_at(node: ast.AST) -> List[Tuple[str, int]]:
    """First-level ``self`` attributes mutated by exactly this node.

    Covers assignment/augmented-assignment/annotated-assignment targets,
    ``del self.x[...]``, subscript stores, and calls of known container
    mutator methods (``self._queue.append(...)``).  The caller is
    responsible for traversal (and for skipping nested callables).
    """
    found: List[Tuple[str, int]] = []

    def record_target(target: ast.AST, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record_target(element, lineno)
            return
        if isinstance(target, ast.Starred):
            record_target(target.value, lineno)
            return
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        attr = self_attr_path(base)
        if attr:
            found.append((attr.split(".")[0], lineno))

    if isinstance(node, ast.Assign):
        for target in node.targets:
            record_target(target, node.lineno)
    elif isinstance(node, ast.AugAssign):
        record_target(node.target, node.lineno)
    elif isinstance(node, ast.AnnAssign):
        if node.value is not None:
            record_target(node.target, node.lineno)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            record_target(target, node.lineno)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in CONTAINER_MUTATORS:
            attr = self_attr_path(func.value)
            if attr:
                found.append((attr.split(".")[0], node.lineno))
    return found
