#!/usr/bin/env python
"""Dump the frozen v1 public API surface of :mod:`repro`.

Emits one line per public name in ``repro.__all__``::

    repro.CrowdRTSE class
    repro.CrowdRTSE.answer_query method (self, queried, slot, budget, *, market=?, ...)
    repro.propagate function (network, slot_params, correlations, probes, *, config=?)

The output is the *contract*: ``docs/api_surface_v1.txt`` holds the
golden copy and CI diffs a fresh dump against it, so any accidental
rename, removal, or signature change fails loudly while additions are
an explicit, reviewed edit to the golden file.

Deliberately version-stable:

* parameter *names* and kinds only — defaults are collapsed to ``=?``
  (repr of a default can differ across numpy/python versions);
* no annotations (evaluated annotations render differently across
  Python minors);
* class members sorted, dunder members skipped, inherited members
  skipped (only what the class itself declares is its surface).

Usage::

    PYTHONPATH=src python tools/dump_api.py             # print to stdout
    PYTHONPATH=src python tools/dump_api.py --check     # diff vs golden
    PYTHONPATH=src python tools/dump_api.py --update    # rewrite golden
"""

from __future__ import annotations

import argparse
import difflib
import enum
import inspect
import sys
from pathlib import Path

GOLDEN = Path(__file__).resolve().parent.parent / "docs" / "api_surface_v1.txt"


def _format_params(obj) -> str:
    """Render a signature as stable parameter names, defaults as ``=?``."""
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return "(...)"
    parts = []
    seen_star = False
    for param in signature.parameters.values():
        name = param.name
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            name = "*" + name
            seen_star = True
        elif param.kind is inspect.Parameter.VAR_KEYWORD:
            name = "**" + name
        elif param.default is not inspect.Parameter.empty:
            name = name + "=?"
        if param.kind is inspect.Parameter.KEYWORD_ONLY and not seen_star:
            parts.append("*")
            seen_star = True
        parts.append(name)
    return "(" + ", ".join(parts) + ")"


def _class_members(cls, qualname: str):
    """Yield surface lines for a class's own public members."""
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        entry = f"{qualname}.{name}"
        if isinstance(member, staticmethod):
            yield f"{entry} staticmethod {_format_params(member.__func__)}"
        elif isinstance(member, classmethod):
            yield f"{entry} classmethod {_format_params(member.__func__)}"
        elif isinstance(member, property):
            yield f"{entry} property"
        elif inspect.isfunction(member):
            yield f"{entry} method {_format_params(member)}"
        elif isinstance(member, type):
            yield f"{entry} class"
        # plain class attributes (dataclass fields show via __init__) are
        # covered by the class line's __init__ signature below.


def dump_surface() -> list:
    """The full surface as sorted lines."""
    import repro

    lines = []
    for name in sorted(set(repro.__all__)):
        obj = getattr(repro, name)
        qualname = f"repro.{name}"
        if name == "__version__":
            lines.append(f"{qualname} str")
        elif isinstance(obj, type):
            if issubclass(obj, BaseException):
                bases = ",".join(
                    b.__name__ for b in obj.__bases__ if b is not object
                )
                lines.append(f"{qualname} exception({bases})")
                lines.extend(_class_members(obj, qualname))
            elif issubclass(obj, enum.Enum):
                # EnumMeta's call signature varies across Python minors;
                # the member names are the stable surface.
                members = ",".join(m.name for m in obj)
                lines.append(f"{qualname} enum({members})")
            else:
                lines.append(f"{qualname} class {_format_params(obj)}")
                lines.extend(_class_members(obj, qualname))
        elif callable(obj):
            lines.append(f"{qualname} function {_format_params(obj)}")
        else:
            lines.append(f"{qualname} constant")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help=f"diff the live surface against {GOLDEN.name}; exit 1 on drift",
    )
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite {GOLDEN.name} from the live surface",
    )
    args = parser.parse_args(argv)

    lines = dump_surface()
    text = "\n".join(lines) + "\n"

    if args.update:
        GOLDEN.write_text(text)
        print(f"wrote {len(lines)} surface entries to {GOLDEN}")
        return 0
    if args.check:
        if not GOLDEN.exists():
            print(f"golden file {GOLDEN} missing — run with --update", file=sys.stderr)
            return 1
        golden = GOLDEN.read_text().splitlines()
        if golden == lines:
            print(f"API surface matches {GOLDEN.name} ({len(lines)} entries)")
            return 0
        diff = difflib.unified_diff(
            golden, lines, fromfile=str(GOLDEN), tofile="live API", lineterm=""
        )
        print("\n".join(diff), file=sys.stderr)
        print(
            "\nAPI surface drift detected. If intentional, regenerate with:\n"
            "  PYTHONPATH=src python tools/dump_api.py --update",
            file=sys.stderr,
        )
        return 1
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
