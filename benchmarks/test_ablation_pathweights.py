"""Ablation bench: exact -log(rho) path weights vs the paper's 1/rho.

DESIGN.md §4 item 1.  Benchmarks both all-pairs table builds and
quantifies how far the paper's reciprocal heuristic falls from the true
product-maximizing correlations.
"""

import numpy as np
import pytest

from repro.core.correlation import PathWeightMode, road_road_correlation_matrix
from repro.experiments import ablations
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


@pytest.mark.parametrize("mode", [PathWeightMode.LOG, PathWeightMode.RECIPROCAL])
def test_ablation_table_build_cost(benchmark, mode, semisyn, semisyn_system):
    """Benchmark the offline Γ_R build under each transform."""
    rho = semisyn_system.model.slot(semisyn.slot).rho
    corr = benchmark(road_road_correlation_matrix, semisyn.network, rho, mode)
    assert corr.shape == (semisyn.n_roads, semisyn.n_roads)
    assert np.allclose(np.diag(corr), 1.0)


def test_ablation_pathweights_gap(benchmark):
    """The exact transform dominates; the measured gap is the ablation."""
    rows = benchmark.pedantic(
        ablations.path_weight_ablation, args=(QUICK,), rounds=1, iterations=1
    )
    values = {r.variant: r.value for r in rows}
    assert values["exact >= paper (should be ~1)"] >= 0.999
    assert values["max |Δcorr|"] >= 0.0
    assert values["mean |Δcorr|"] <= 0.2
