"""Perf gate: coalesced concurrent serving vs a sequential query loop.

Acceptance bar for the serving layer (ISSUE 4): on a duplicate-heavy
mixed-slot workload — many users asking about the same roads in the
same slot, the shape request coalescing is built for — a
:class:`QueryService` must finish the whole workload at least 2× faster
than a naive sequential ``answer_query`` loop, while returning the same
numbers for every request.

The speedup comes from work elimination, not parallelism tricks:
identical requests share one pipeline execution and distinct same-slot
requests share one batched GSP call, so the service executes ~1/D of
the sequential pipeline runs (D = duplication factor).

Runs in two modes:

* full (default) — 120-road network, 96 requests, duplication 4;
* quick (``SERVE_PERF_QUICK=1``) — 60-road network, 32 requests, used
  by the CI smoke job so the harness itself cannot rot.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro
from repro.serve import EstimationRequest, QueryService, ServeConfig

QUICK = os.environ.get("SERVE_PERF_QUICK", "") == "1"
N_ROADS = 60 if QUICK else 120
N_REQUESTS = 32 if QUICK else 96
DUPLICATION = 4
N_SLOTS = 3
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def serve_perf_world():
    config = repro.SemiSynConfig(
        n_roads=N_ROADS,
        n_queried=16,
        n_train_days=10,
        n_test_days=2,
        n_slots=6,
        seed=99,
    )
    data = repro.build_semisyn(config)
    slots = [
        s
        for s in range(data.slot, data.slot + N_SLOTS)
        if s in data.train_history.global_slots
    ][:N_SLOTS]
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=slots)
    truths = {s: repro.truth_oracle_for(data.test_history, 0, s) for s in slots}

    # Duplicate-heavy mixed-slot workload: N_REQUESTS arrivals over
    # N_REQUESTS/DUPLICATION unique (slot, queried, market) requests,
    # interleaved across slots.
    rng = np.random.default_rng(5)
    n_unique = N_REQUESTS // DUPLICATION
    uniques = []
    for k in range(n_unique):
        slot = slots[k % len(slots)]
        queried = tuple(
            int(q)
            for q in rng.choice(data.queried, size=8, replace=False)
        )
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(1000 + k),
        )
        uniques.append(
            (
                k,
                EstimationRequest(
                    queried=queried,
                    slot=slot,
                    budget=12,
                    market=market,
                    truth=truths[slot],
                    warm_start=False,
                ),
            )
        )
    arrivals = [uniques[i % n_unique] for i in range(N_REQUESTS)]
    order = rng.permutation(N_REQUESTS)
    arrivals = [arrivals[i] for i in order]
    return {"data": data, "system": system, "arrivals": arrivals}


def test_coalesced_serving_beats_sequential_loop(serve_perf_world):
    data = serve_perf_world["data"]
    system = serve_perf_world["system"]
    arrivals = serve_perf_world["arrivals"]

    # Sequential baseline: a naive serving loop executes the pipeline
    # once per arrival.  Fresh identically-seeded markets are built
    # outside the timed region (the service got its markets up front
    # too), so the comparison times pipeline work only.
    sequential_markets = [
        repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(1000 + unique_id),
        )
        for unique_id, _ in arrivals
    ]
    start = time.perf_counter()
    sequential = [
        system.answer_query(
            EstimationRequest(
                queried=request.queried,
                slot=request.slot,
                budget=request.budget,
                warm_start=False,
            ),
            market=market,
            truth=request.truth,
        )
        for (_, request), market in zip(arrivals, sequential_markets)
    ]
    sequential_s = time.perf_counter() - start

    # max_coalesce covers the whole backlog so each slot drains into one
    # batch and every unique request executes exactly once; a shared
    # stateful market probed twice would (correctly) draw fresh answers,
    # which would break the exact-equality check below.
    service = QueryService(
        system,
        config=ServeConfig(
            num_workers=2,
            max_queue_depth=2 * N_REQUESTS,
            max_coalesce=N_REQUESTS,
        ),
        autostart=False,
    )
    tickets = [service.submit(request) for _, request in arrivals]
    start = time.perf_counter()
    service.start()
    served = [ticket.result(timeout=600) for ticket in tickets]
    concurrent_s = time.perf_counter() - start
    service.close()

    # Same numbers, request for request: duplicates share an execution
    # but each sequential duplicate re-ran an identically-seeded market,
    # so the answers must agree everywhere.
    for result, oracle in zip(served, sequential):
        assert not result.degraded
        np.testing.assert_allclose(
            result.estimates_kmh, oracle.estimates_kmh, rtol=1e-10
        )

    n_coalesced = sum(r.coalesced for r in served)
    assert n_coalesced > 0, "workload never coalesced — the gate is vacuous"

    speedup = sequential_s / concurrent_s
    print(
        f"\n[serve-perf] {N_REQUESTS} requests ({DUPLICATION}x duplication, "
        f"{N_SLOTS} slots, {N_ROADS} roads): sequential {sequential_s:.3f}s, "
        f"coalesced {concurrent_s:.3f}s, speedup {speedup:.1f}x, "
        f"{n_coalesced} coalesced"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"coalesced serving only {speedup:.2f}x faster than the sequential "
        f"loop (need ≥{MIN_SPEEDUP}x)"
    )


def test_steady_state_serving_reuses_warm_starts(serve_perf_world):
    """Round two of an identical workload is served off warm seeds.

    Warm-started requests (the canonical default) populate the
    per-``(digest, R^c)`` seed cache on the first drain; replaying the
    same workload must then consume those seeds (``gsp.warm_start``
    outcome ``used``) and still return fields ε-equivalent to round one.
    """
    import dataclasses

    from repro import obs

    data = serve_perf_world["data"]
    system = serve_perf_world["system"]
    arrivals = serve_perf_world["arrivals"]

    def warm_arrivals_round():
        # Markets are stateful; each round rebuilds identically-seeded
        # ones so both rounds probe identical speeds and the only
        # difference is the warm seed.
        markets = {}
        out = []
        for uid, request in arrivals:
            if uid not in markets:
                markets[uid] = repro.CrowdMarket(
                    data.network, data.pool, data.cost_model,
                    rng=np.random.default_rng(1000 + uid),
                )
            out.append(
                (
                    uid,
                    dataclasses.replace(
                        request, warm_start=True, market=markets[uid]
                    ),
                )
            )
        return out

    obs.configure(metrics=True, tracing=False)
    obs.get_metrics().clear()
    try:
        rounds = []
        for _ in range(2):
            warm_arrivals = warm_arrivals_round()
            service = QueryService(
                system,
                config=ServeConfig(
                    num_workers=2,
                    max_queue_depth=2 * N_REQUESTS,
                    max_coalesce=N_REQUESTS,
                ),
                autostart=False,
            )
            tickets = [service.submit(request) for _, request in warm_arrivals]
            service.start()
            rounds.append([ticket.result(timeout=600) for ticket in tickets])
            service.close()
        outcomes = {
            e["labels"]["outcome"]: e["value"]
            for e in obs.get_metrics().snapshot()["counters"]
            if e["name"] == "gsp.warm_start"
        }
    finally:
        obs.get_metrics().clear()
        obs.configure(metrics=False, tracing=False)

    assert outcomes.get("used", 0) > 0, (
        f"steady-state replay never consumed a warm seed: {outcomes}"
    )
    for first, second in zip(rounds[0], rounds[1]):
        np.testing.assert_allclose(
            first.estimates_kmh, second.estimates_kmh, rtol=0, atol=1e-2
        )
    print(f"\n[serve-perf] warm-start outcomes over two rounds: {outcomes}")
