"""Table III bench: 1-hop / 2-hop coverage of the queried roads.

Regenerates the coverage table and asserts its shapes: Hybrid covers at
least as much as Random everywhere, coverage grows with budget, and
2-hop coverage dominates 1-hop coverage.
"""

from repro.experiments import table3
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


def test_table3_coverage_shapes(benchmark):
    rows = benchmark.pedantic(
        table3.run, args=(QUICK,), kwargs={"random_trials": 3}, rounds=1, iterations=1
    )
    by_budget = {}
    for r in rows:
        assert 0 <= r.one_hop <= r.two_hop <= r.n_queried
        by_budget.setdefault(r.budget, {})[r.strategy] = r

    for strategies in by_budget.values():
        assert strategies["Hybrid"].two_hop >= strategies["Rand"].two_hop
        assert strategies["Hybrid"].one_hop >= strategies["Rand"].one_hop

    hybrid = sorted(
        (r.budget, r.two_hop) for r in rows if r.strategy == "Hybrid"
    )
    values = [v for _, v in hybrid]
    assert values[-1] >= values[0]
