"""Table II bench: dataset construction and statistics.

Regenerates the dataset-statistics table and benchmarks the
semi-synthesized dataset build (the offline data substrate).
"""

import repro
from repro.experiments import table2
from repro.experiments.common import ExperimentScale


def test_table2_rows_and_build_cost(benchmark):
    """Build the semisyn world end-to-end; assert Table II's shape."""

    def build():
        return repro.build_semisyn(
            repro.SemiSynConfig(
                n_roads=120,
                n_queried=20,
                n_train_days=12,
                n_test_days=4,
                n_slots=8,
                seed=1,
            )
        )

    data = benchmark(build)
    assert data.n_roads == 120
    assert len(data.worker_roads) == data.n_roads  # R^w = R

    rows = table2.run(ExperimentScale.QUICK)
    by_name = {r.dataset: r for r in rows}
    # Table II shape: gMission is worker-scarce, semisyn fully covered.
    assert by_name["semisyn"].n_worker_roads == by_name["semisyn"].n_roads
    assert by_name["gmission"].n_worker_roads < by_name["gmission"].n_queried
    assert by_name["semisyn"].theta == 0.92
