"""Ablation bench: GSP iterative propagation vs the exact sparse solve.

GSP's fixed point equals the GMRF conditional mean (verified here with a
tolerance assertion); the bench compares the wall-clock of Alg. 5
against one direct sparse linear solve — the trade the paper implicitly
makes by choosing propagation.
"""

import numpy as np
import pytest

from repro.core.exact_inference import exact_conditional_mean, gsp_optimality_gap
from repro.core.gsp import GSPConfig, propagate
from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.experiments.common import market_for


@pytest.fixture(scope="module")
def probes(semisyn, semisyn_system):
    market = market_for(semisyn, seed=13)
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    result = semisyn_system.answer_query(
        EstimationRequest(
            queried=semisyn.queried,
            slot=semisyn.slot,
            budget=semisyn.budgets[1],
            warm_start=False,
        ),
        market=market,
        truth=truth,
    )
    return result.probes


def test_gsp_propagation_speed(benchmark, semisyn, semisyn_system, probes):
    params = semisyn_system.model.slot(semisyn.slot)
    config = GSPConfig(epsilon=1e-6, max_sweeps=3000)
    result = benchmark(propagate, semisyn.network, params, probes, config)
    assert result.converged
    gap = gsp_optimality_gap(semisyn.network, params, probes, result.speeds)
    assert gap < 1e-3  # GSP lands on the exact optimum


def test_exact_sparse_solve_speed(benchmark, semisyn, semisyn_system, probes):
    params = semisyn_system.model.slot(semisyn.slot)
    speeds = benchmark(
        exact_conditional_mean, semisyn.network, params, probes
    )
    assert np.all(np.isfinite(speeds))
    for road, value in probes.items():
        assert speeds[road] == value
