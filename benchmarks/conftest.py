"""Shared fixtures for the benchmark suite.

All benchmarks run at ``ExperimentScale.QUICK`` — a scaled-down world
with the same structure as the paper's Table II datasets — so the whole
suite finishes in minutes.  The paper-scale numbers reported in
EXPERIMENTS.md come from running the ``repro.experiments`` CLI modules
at ``--scale paper``.
"""

from __future__ import annotations

import pytest

import repro
from repro.datasets import truth_oracle_for
from repro.experiments.common import (
    ExperimentScale,
    default_gmission,
    default_semisyn,
    fit_system,
    market_for,
)

QUICK = ExperimentScale.QUICK


@pytest.fixture(scope="session")
def semisyn():
    """The QUICK semi-synthesized dataset."""
    return default_semisyn(QUICK)


@pytest.fixture(scope="session")
def gmission():
    """The QUICK gMission-like dataset."""
    return default_gmission(QUICK)


@pytest.fixture(scope="session")
def semisyn_system(semisyn):
    """CrowdRTSE fitted on the semisyn dataset."""
    return fit_system("semisyn", QUICK)


@pytest.fixture(scope="session")
def gmission_system(gmission):
    """CrowdRTSE fitted on the gMission dataset."""
    return fit_system("gmission", QUICK)


@pytest.fixture()
def semisyn_probe(semisyn, semisyn_system):
    """One realized probe set (Hybrid selection, mid budget) on semisyn."""
    budget = semisyn.budgets[len(semisyn.budgets) // 2]
    market = market_for(semisyn, seed=0)
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    result = semisyn_system.answer_query(
        repro.EstimationRequest(
            queried=semisyn.queried,
            slot=semisyn.slot,
            budget=budget,
            warm_start=False,
        ),
        market=market,
        truth=truth,
    )
    return result, truth
