"""Figure 4(b) bench: estimator running time versus budget.

Asserts the paper's ordering — LASSO fastest, GRMC slowest, GSP nearly
budget-independent and fast.
"""

import numpy as np

from repro.experiments import figure4
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


def test_fig4b_estimator_runtime_order(benchmark):
    points = benchmark.pedantic(
        figure4.run_estimator_runtime,
        args=(QUICK,),
        kwargs={"repeats": 2},
        rounds=1,
        iterations=1,
    )
    by_method = {}
    for p in points:
        by_method.setdefault(p.method, []).append((p.budget, p.seconds))

    mean = {m: float(np.mean([s for _, s in v])) for m, v in by_method.items()}
    # Paper ordering: LASSO < GRMC, GSP < GRMC.
    assert mean["LASSO"] < mean["GRMC"]
    assert mean["GSP"] < mean["GRMC"]

    # GSP nearly independent of budget: max/min ratio bounded.
    gsp = sorted(by_method["GSP"])
    gsp_times = [s for _, s in gsp]
    assert max(gsp_times) < 10 * max(min(gsp_times), 1e-4)

    # Paper: GSP always returns within half a second.
    assert max(gsp_times) < 0.5
