"""Figure 5 bench: RTF offline-training convergence versus network size.

Benchmarks one random-init training run and regenerates the series,
asserting the paper's finding that iterations-to-convergence grow with
the network size but stay tolerable.
"""

import numpy as np

from repro.core.inference import RTFInferenceConfig, infer_slot_parameters
from repro.experiments import figure5
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


def test_fig5_single_training_run(benchmark, semisyn):
    """Benchmark RTF training (random init) on a 60-road subcomponent."""
    subnetwork = semisyn.network.connected_subcomponent(60)
    history = semisyn.train_history.restrict_roads(subnetwork)
    samples = history.slot_samples(semisyn.slot)
    config = RTFInferenceConfig(
        step=0.1, max_iters=3000, tol=0.05, init="random", seed=13
    )

    params, diag = benchmark(
        infer_slot_parameters, subnetwork, samples, semisyn.slot, config
    )
    assert diag.converged
    assert np.all(params.sigma > 0)


def test_fig5_iterations_grow_with_size(benchmark):
    sizes = (20, 50, 80, 110)
    points = benchmark.pedantic(
        figure5.run,
        kwargs=dict(scale=QUICK, sizes=sizes, tol=0.05, max_iters=4000),
        rounds=1,
        iterations=1,
    )
    assert all(p.converged for p in points)
    iterations = [p.iterations for p in points]
    # Paper: roughly linear growth — the largest network needs at least
    # as many iterations as the smallest, and none explodes.
    assert iterations[-1] >= iterations[0]
    assert max(iterations) < 4000
