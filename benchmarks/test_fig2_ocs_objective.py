"""Figure 2 bench: OCS objective value versus budget.

Benchmarks Hybrid-Greedy at the mid budget and regenerates the VO
series, asserting the paper's qualitative shapes: monotone VO, Hybrid
dominance, component convergence at large K, and a wider gap under the
wide cost range C1 than under C2.
"""

import numpy as np

from repro.core.ocs import hybrid_greedy
from repro.experiments import figure2
from repro.experiments.common import ExperimentScale, alt_cost_model, ocs_instance_for

QUICK = ExperimentScale.QUICK


def test_fig2_hybrid_solve(benchmark, semisyn, semisyn_system):
    """Benchmark one Hybrid-Greedy solve (the paper's default selector)."""
    budget = semisyn.budgets[len(semisyn.budgets) // 2]
    cost_model = alt_cost_model(semisyn, 1, 10)
    instance = ocs_instance_for(
        semisyn, semisyn_system, budget, cost_model=cost_model
    )
    result = benchmark(hybrid_greedy, instance)
    assert result.objective > 0
    assert instance.is_feasible(result.selected)


def test_fig2_series_shapes(benchmark):
    """Regenerate the full Figure 2 sweep and check its shapes."""
    points = benchmark.pedantic(figure2.run, args=(QUICK,), rounds=1, iterations=1)

    series = {}
    for p in points:
        series.setdefault((p.cost_range, p.algorithm), []).append((p.budget, p.objective))
    for key, pairs in series.items():
        pairs.sort()
        values = [v for _, v in pairs]
        # Shape 1: VO monotone in K.
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), key

    # Shape 2: Hybrid dominates at every (cost range, K).
    by_budget = {}
    for p in points:
        by_budget.setdefault((p.cost_range, p.budget), {})[p.algorithm] = p.objective
    for algos in by_budget.values():
        assert algos["Hybrid"] >= max(algos["Ratio"], algos["OBJ"]) - 1e-9

    # Shape 3: the lagging component converges to Hybrid at the largest K.
    ratios = figure2.ratios_to_hybrid(points)
    largest = max(r[1] for r in ratios)
    assert max(r[3] for r in ratios if r[1] == largest) >= 0.99

    # Shape 4: mean component/Hybrid gap is at least as wide under C1
    # (costs 1-10) as under C2 (costs 1-5).
    def mean_gap(cost_range):
        vals = [1 - r[3] for r in ratios if r[0] == cost_range]
        return float(np.mean(vals))

    assert mean_gap("C1") >= mean_gap("C2") - 0.02
