"""Ablation bench: fixed detector placements vs OCS crowdsourcing.

Verifies (at QUICK scale) the §II claim that query-aware probe selection
dominates any static deployment at equal observation counts and
measurement noise, and benchmarks the study's runtime.
"""


from repro.experiments import fixed_vs_crowd
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


def test_fixed_vs_crowd_shapes(benchmark):
    rows = benchmark.pedantic(
        fixed_vs_crowd.run,
        kwargs=dict(scale=QUICK, query_size=12, n_queries=6),
        rounds=1,
        iterations=1,
    )
    by_policy = {r.policy: r.mape for r in rows}
    crowd = by_policy.pop("crowd (OCS)")
    for policy, mape in by_policy.items():
        assert crowd <= mape + 0.01, policy
