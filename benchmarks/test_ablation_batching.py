"""Ablation bench: pooled multi-query answering vs the sequential loop.

Extension beyond the paper (DESIGN.md §5): at equal total budget, pooling
concurrent queries into one OCS + probe + propagation round should never
lose to splitting the budget per query.
"""

import numpy as np

import repro
from repro.core.batch import answer_batch, sequential_baseline
from repro.datasets import truth_oracle_for
from repro.experiments.common import market_for


def _queries(semisyn, parts=3):
    queried = list(semisyn.queried)
    size = max(1, len(queried) // parts)
    return [queried[k : k + size] for k in range(0, len(queried), size)]


def test_batched_round(benchmark, semisyn, semisyn_system):
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    queries = _queries(semisyn)

    def run_batch():
        market = market_for(semisyn, seed=21)
        return answer_batch(
            semisyn_system, queries, semisyn.slot, budget=45,
            market=market, truth=truth,
        )

    batch = benchmark(run_batch)
    assert batch.budget_spent <= 45


def test_sequential_round(benchmark, semisyn, semisyn_system):
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    queries = _queries(semisyn)

    def run_sequential():
        market = market_for(semisyn, seed=21)
        return sequential_baseline(
            semisyn_system, queries, semisyn.slot, budget=45,
            market=market, truth=truth,
        )

    estimates, spent = benchmark(run_sequential)
    assert spent <= 45


def test_batching_quality_dominates(benchmark, semisyn, semisyn_system):
    queries = _queries(semisyn)

    def compare():
        batch_err, seq_err = [], []
        for day in range(3):
            truth = truth_oracle_for(semisyn.test_history, day, semisyn.slot)
            batch = answer_batch(
                semisyn_system, queries, semisyn.slot, budget=45,
                market=market_for(semisyn, seed=day), truth=truth,
            )
            seq, _ = sequential_baseline(
                semisyn_system, queries, semisyn.slot, budget=45,
                market=market_for(semisyn, seed=day), truth=truth,
            )
            for query, b, s in zip(queries, batch.per_query, seq):
                truths = np.array([truth(q) for q in query])
                batch_err.append(
                    repro.mean_absolute_percentage_error(b, truths)
                )
                seq_err.append(repro.mean_absolute_percentage_error(s, truths))
        return float(np.mean(batch_err)), float(np.mean(seq_err))

    batch_mape, seq_mape = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert batch_mape <= seq_mape + 0.01
