"""Ablation bench: how much slack does Hybrid-Greedy leave?

Refines Hybrid-Greedy's selections with a swap/add local search on the
QUICK instance and reports the relative objective gap — an empirical
tightness check on Theorem 2's (1 − 1/e)/2 bound at realistic sizes.
"""


from repro.core.local_search import greedy_plus_local_search, local_search
from repro.core.ocs import hybrid_greedy
from repro.experiments.common import ExperimentScale, ocs_instance_for

QUICK = ExperimentScale.QUICK


def test_local_search_refinement(benchmark, semisyn, semisyn_system):
    instance = ocs_instance_for(
        semisyn, semisyn_system, budget=min(semisyn.budgets)
    )
    greedy = hybrid_greedy(instance)
    refined = benchmark.pedantic(
        local_search,
        args=(instance, greedy.selected),
        kwargs={"max_rounds": 30},
        rounds=1,
        iterations=1,
    )
    assert instance.is_feasible(refined.selected)
    assert refined.objective >= greedy.objective - 1e-9
    # The greedy is empirically near-locally-optimal: local search
    # improves it by well under the worst-case bound.
    gap = (refined.objective - greedy.objective) / max(greedy.objective, 1e-9)
    assert gap < 0.2


def test_greedy_gap_across_budgets(benchmark, semisyn, semisyn_system):
    def gaps():
        out = []
        for budget in semisyn.budgets[:3]:
            instance = ocs_instance_for(semisyn, semisyn_system, budget)
            _, gap = greedy_plus_local_search(instance, max_rounds=20)
            out.append(gap)
        return out

    values = benchmark.pedantic(gaps, rounds=1, iterations=1)
    assert all(0.0 <= g < 0.2 for g in values)
