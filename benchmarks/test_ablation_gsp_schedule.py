"""Ablation bench: GSP update schedules (DESIGN.md §4 item 2).

Benchmarks propagation under the paper's BFS ordering, the
layer-parallel Jacobi variant (§VI parallelization), random order and
plain index order.  All schedules must reach the same fixed point; the
bench quantifies the sweep counts.
"""

import numpy as np
import pytest

from repro.core.gsp import GSPConfig, GSPSchedule, propagate
from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.experiments.common import ExperimentScale, market_for

QUICK = ExperimentScale.QUICK


@pytest.fixture(scope="module")
def world(semisyn, semisyn_system):
    market = market_for(semisyn, seed=9)
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    result = semisyn_system.answer_query(
        EstimationRequest(
            queried=semisyn.queried,
            slot=semisyn.slot,
            budget=semisyn.budgets[1],
            warm_start=False,
        ),
        market=market,
        truth=truth,
    )
    return semisyn, semisyn_system, result.probes


@pytest.mark.parametrize("schedule", list(GSPSchedule))
def test_ablation_gsp_schedule(benchmark, schedule, world):
    semisyn, system, probes = world
    params = system.model.slot(semisyn.slot)
    config = GSPConfig(schedule=schedule, seed=3, epsilon=1e-6, max_sweeps=3000)

    result = benchmark(propagate, semisyn.network, params, probes, config)
    assert result.converged
    # The result records its own provenance — assert on it instead of
    # re-deriving which path config resolution picked.
    assert result.schedule is schedule
    assert result.kernel is config.resolved_kernel()
    assert result.sweeps == len(result.max_delta_history)

    reference = propagate(
        semisyn.network, params, probes, GSPConfig(epsilon=1e-10, max_sweeps=5000)
    )
    assert np.allclose(result.speeds, reference.speeds, atol=1e-3)
