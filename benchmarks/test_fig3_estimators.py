"""Figure 3 bench: estimation quality of GSP vs LASSO vs GRMC vs Per.

Benchmarks each estimator on an identical probe set and regenerates the
quality grid's key shapes: GSP wins MAPE and FER at the smallest budget
(columns a1/a2), Hybrid selection beats Random for GSP (column d), and
the tuned θ never hurts at small K (column e).
"""

import numpy as np
import pytest

from repro.baselines import (
    EstimationContext,
    GRMCEstimator,
    GSPEstimator,
    LassoEstimator,
    PeriodicEstimator,
)
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments import figure3
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK

_ESTIMATORS = {
    "GSP": GSPEstimator,
    "LASSO": LassoEstimator,
    "GRMC": GRMCEstimator,
    "Per": PeriodicEstimator,
}


@pytest.mark.parametrize("name", sorted(_ESTIMATORS))
def test_fig3_estimator_quality(benchmark, name, semisyn, semisyn_system, semisyn_probe):
    """Benchmark one estimator on a realized probe set."""
    result, truth = semisyn_probe
    context = EstimationContext(
        network=semisyn.network,
        history_samples=semisyn.train_history.slot_samples(semisyn.slot),
        probes=result.probes,
        slot_params=semisyn_system.model.slot(semisyn.slot),
    )
    estimator = _ESTIMATORS[name]()
    field = benchmark(estimator.estimate, context)
    queried = list(semisyn.queried)
    truths = np.array([truth(q) for q in queried])
    mape = mean_absolute_percentage_error(field[queried], truths)
    assert mape < 0.6  # sanity: every estimator is in a sane range


def test_fig3_grid_shapes(benchmark):
    """Regenerate a reduced Figure 3 grid and check the paper's shapes."""
    budgets = (15, 45, 75)
    cells = benchmark.pedantic(
        figure3.run,
        kwargs=dict(
            scale=QUICK,
            n_trials=3,
            selectors=("hybrid", "random"),
            thetas=(0.92, 1.0),
            budgets=budgets,
        ),
        rounds=1,
        iterations=1,
    )
    smallest = min(budgets)

    # Columns a1/a2: GSP best MAPE and FER at the smallest budget.
    at_small = {
        c.estimator: c.summary
        for c in cells
        if c.selector == "hybrid" and c.theta == 0.92 and c.budget == smallest
    }
    assert at_small["GSP"].mape == min(s.mape for s in at_small.values())
    assert at_small["GSP"].fer == min(s.fer for s in at_small.values())

    # Row 3 (DAPE): GSP concentrates more mass in the lowest-error bin.
    assert at_small["GSP"].dape[0] >= at_small["GRMC"].dape[0]

    # Column d: Hybrid selection beats Random selection for GSP.
    gsp_small = {
        c.selector: c.summary.mape
        for c in cells
        if c.estimator == "GSP" and c.theta == 0.92 and c.budget == smallest
    }
    assert gsp_small["hybrid"] <= gsp_small["random"] + 0.02

    # Column e: the tuned θ does not hurt at small budget.
    gsp_theta = {
        c.theta: c.summary.mape
        for c in cells
        if c.estimator == "GSP" and c.selector == "hybrid" and c.budget == smallest
    }
    assert gsp_theta[0.92] <= gsp_theta[1.0] + 0.02

    # Effect of budget: GSP improves (or holds) as K grows.
    gsp_series = sorted(
        (c.budget, c.summary.mape)
        for c in cells
        if c.estimator == "GSP" and c.selector == "hybrid" and c.theta == 0.92
    )
    assert gsp_series[-1][1] <= gsp_series[0][1] + 0.02
