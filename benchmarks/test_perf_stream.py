"""Perf gate: streaming ingestion throughput with continuous refresh.

Acceptance bar for the streaming layer (ISSUE 6): replaying a
synthesized day through the full path — adapter-shaped messages into
:class:`ObservationLog` merge/dedup, watermark closes, and bounded
:class:`StreamRefresher` publishes through the versioned store — must
sustain at least 2k events/sec end to end.  The replay experiment and
the concurrency soak assert the same floor *while serving*; this gate
isolates the ingestion path so a merge/dedup regression is attributed
to the stream, not to serving.

Runs in two modes:

* full (default) — 120-road network, a full multi-slot day;
* quick (``STREAM_PERF_QUICK=1``) — 60 roads, used by the CI smoke job
  so the harness itself cannot rot.
"""

from __future__ import annotations

import os
import time

import pytest

import repro
from repro.stream import StreamConfig, StreamRefresher, synthesize_day_feed

QUICK = os.environ.get("STREAM_PERF_QUICK", "") == "1"
N_ROADS = 60 if QUICK else 120
N_SLOTS = 3 if QUICK else 6
MIN_EVENTS_PER_S = 2000.0


@pytest.fixture(scope="module")
def stream_perf_world():
    config = repro.SemiSynConfig(
        n_roads=N_ROADS,
        n_queried=16,
        n_train_days=10,
        n_test_days=2,
        n_slots=6,
        seed=99,
    )
    data = repro.build_semisyn(config)
    slots = list(data.train_history.global_slots)[:N_SLOTS]
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=slots)
    feed = synthesize_day_feed(
        data.test_history,
        0,
        slots=slots,
        coverage=0.8,
        max_readings_per_road=3,
        overlap_fraction=0.25,
        seed=7,
    )
    return {"system": system, "feed": feed, "slots": slots}


def test_ingest_to_publish_sustains_throughput(stream_perf_world):
    system = stream_perf_world["system"]
    feed = stream_perf_world["feed"]
    events = sum(len(snapshot) for snapshot in feed)

    refresher = StreamRefresher(
        system, StreamConfig(lateness_s=60.0, learning_rate=0.2)
    )
    start = time.perf_counter()
    for snapshot in feed:
        refresher.ingest(snapshot)
    stats = refresher.close()
    elapsed = time.perf_counter() - start

    assert stats.published_slots == len(stream_perf_world["slots"])
    assert refresher.log.accepted > 0

    rate = events / elapsed
    print(
        f"\n[stream-perf] {events} events, {len(feed)} snapshots, "
        f"{N_ROADS} roads, {N_SLOTS} slots: {elapsed:.3f}s ({rate:.0f} ev/s), "
        f"{stats.publishes} publishes, dedup {refresher.log.duplicates}"
    )
    assert rate >= MIN_EVENTS_PER_S, (
        f"streaming path sustained only {rate:.0f} events/s "
        f"(need ≥{MIN_EVENTS_PER_S:.0f})"
    )
