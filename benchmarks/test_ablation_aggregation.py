"""Ablation bench: crowd-answer aggregation rules (DESIGN.md §4 item 5).

Benchmarks probing under mean / median / trimmed-mean aggregation and
asserts that all rules keep the probe error small (the paper's "multiple
answers are integrated" step).
"""

import numpy as np
import pytest

from repro.crowd.aggregation import Aggregator
from repro.crowd.market import CrowdMarket
from repro.datasets import truth_oracle_for
from repro.experiments import ablations
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


@pytest.mark.parametrize("aggregator", list(Aggregator))
def test_ablation_probe_with_aggregator(benchmark, aggregator, semisyn, semisyn_system):
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    roads = list(semisyn.queried[:10])

    def probe():
        market = CrowdMarket(
            semisyn.network,
            semisyn.pool,
            semisyn.cost_model,
            aggregator=aggregator,
            rng=np.random.default_rng(11),
        )
        return market.probe(roads, truth)

    probes, receipts = benchmark(probe)
    errors = [
        abs(r.aggregated_kmh - r.true_kmh) / r.true_kmh for r in receipts
    ]
    assert float(np.mean(errors)) < 0.2


def test_ablation_aggregation_comparison(benchmark):
    rows = benchmark.pedantic(
        ablations.aggregation_ablation,
        kwargs=dict(scale=QUICK, n_trials=3),
        rounds=1,
        iterations=1,
    )
    by_rule = {r.variant: r.value for r in rows}
    assert set(by_rule) == {"mean", "median", "trimmed-mean"}
    for value in by_rule.values():
        assert value < 0.2
