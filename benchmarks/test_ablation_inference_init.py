"""Ablation bench: RTF inference initialization (DESIGN.md §4 item 4).

Paper Alg. 1 initializes with small random values; the closed-form
empirical moments are the stationary point of the normalized objective.
This bench quantifies the iteration gap.
"""

import pytest

from repro.core.inference import RTFInferenceConfig, infer_slot_parameters
from repro.experiments import ablations
from repro.experiments.common import ExperimentScale

QUICK = ExperimentScale.QUICK


@pytest.mark.parametrize("init", ["empirical", "random"])
def test_ablation_inference_init_cost(benchmark, init, semisyn):
    samples = semisyn.train_history.slot_samples(semisyn.slot)
    config = RTFInferenceConfig(
        init=init, tol=0.05, max_iters=4000, seed=21
    )
    params, diag = benchmark(
        infer_slot_parameters, semisyn.network, samples, semisyn.slot, config
    )
    assert diag.converged


def test_ablation_inference_init_iteration_gap(benchmark):
    rows = benchmark.pedantic(
        ablations.inference_init_ablation, args=(QUICK,), rounds=1, iterations=1
    )
    iters = {r.variant: r.value for r in rows if r.metric == "iterations"}
    converged = {r.variant: r.value for r in rows if r.metric == "converged"}
    assert converged["empirical"] == 1.0
    assert converged["random"] == 1.0
    assert iters["random"] >= iters["empirical"]
