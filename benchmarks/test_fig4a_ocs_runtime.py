"""Figure 4(a) bench: OCS solver running time versus budget.

Benchmarks each of the three solvers and asserts the paper's claims:
runtime grows (weakly) with budget, and even the slowest (Hybrid) stays
far below one second.
"""

import pytest

from repro.core.ocs import hybrid_greedy, objective_greedy, ratio_greedy
from repro.experiments import figure4
from repro.experiments.common import ExperimentScale, alt_cost_model, ocs_instance_for

QUICK = ExperimentScale.QUICK
_SOLVERS = {
    "ratio": ratio_greedy,
    "objective": objective_greedy,
    "hybrid": hybrid_greedy,
}


@pytest.mark.parametrize("solver_name", sorted(_SOLVERS))
def test_fig4a_solver_runtime(benchmark, solver_name, semisyn, semisyn_system):
    """Benchmark one solver at the largest budget (worst case)."""
    cost_model = alt_cost_model(semisyn, 1, 10)
    instance = ocs_instance_for(
        semisyn, semisyn_system, max(semisyn.budgets), cost_model=cost_model
    )
    result = benchmark(_SOLVERS[solver_name], instance)
    assert instance.is_feasible(result.selected)
    # Paper: Hybrid answers within one second even at max budget.
    assert result.runtime_seconds < 1.0


def test_fig4a_runtime_grows_with_budget(benchmark):
    """Regenerate the panel; runtime at max K >= runtime at min K / 2."""
    points = benchmark.pedantic(
        figure4.run_ocs_runtime, args=(QUICK,), kwargs={"repeats": 2},
        rounds=1, iterations=1,
    )
    for method in ("Ratio", "OBJ", "Hybrid"):
        series = sorted(
            ((p.budget, p.seconds) for p in points if p.method == method)
        )
        assert series[-1][1] >= series[0][1] * 0.5
        assert all(s < 1.0 for _, s in series)
