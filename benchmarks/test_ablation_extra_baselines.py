"""Ablation bench: extra baselines (temporal kNN, hop-weighted) vs GSP.

Not in the paper; isolates where GSP's advantage comes from.  kNN uses
probes + history without graph structure; HopW uses probes + graph
proximity without the statistical model.  GSP should beat both on MAPE.
"""

import numpy as np
import pytest

from repro.baselines import (
    EstimationContext,
    GSPEstimator,
    HopWeightedEstimator,
)
from repro.baselines.knn_temporal import TemporalKNNEstimator
from repro.core.request import EstimationRequest
from repro.eval.metrics import mean_absolute_percentage_error

_ESTIMATORS = {
    "GSP": GSPEstimator,
    "kNN": TemporalKNNEstimator,
    "HopW": HopWeightedEstimator,
}


@pytest.fixture(scope="module")
def context_and_truth(semisyn, semisyn_system):
    from repro.datasets import truth_oracle_for
    from repro.experiments.common import market_for

    market = market_for(semisyn, seed=31)
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    result = semisyn_system.answer_query(
        EstimationRequest(
            queried=semisyn.queried,
            slot=semisyn.slot,
            budget=min(semisyn.budgets),
            warm_start=False,
        ),
        market=market,
        truth=truth,
    )
    context = EstimationContext(
        network=semisyn.network,
        history_samples=semisyn.train_history.slot_samples(semisyn.slot),
        probes=result.probes,
        slot_params=semisyn_system.model.slot(semisyn.slot),
    )
    return context, truth


@pytest.mark.parametrize("name", sorted(_ESTIMATORS))
def test_extra_baseline_quality(benchmark, name, semisyn, context_and_truth):
    context, truth = context_and_truth
    estimator = _ESTIMATORS[name]()
    field = benchmark(estimator.estimate, context)
    queried = list(semisyn.queried)
    truths = np.array([truth(q) for q in queried])
    mape = mean_absolute_percentage_error(field[queried], truths)
    assert mape < 0.6


def test_gsp_beats_structureless_baselines(benchmark, semisyn, context_and_truth):
    context, truth = context_and_truth
    queried = list(semisyn.queried)
    truths = np.array([truth(q) for q in queried])

    def compare():
        scores = {}
        for name, cls in _ESTIMATORS.items():
            field = cls().estimate(context)
            scores[name] = mean_absolute_percentage_error(field[queried], truths)
        return scores

    scores = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert scores["GSP"] <= scores["kNN"] + 0.02
    assert scores["GSP"] <= scores["HopW"] + 0.02
