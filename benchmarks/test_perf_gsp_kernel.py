"""Perf gate: vectorized GSP kernel vs the per-node reference.

Acceptance bar for the kernel work: on a ≥2k-road generated network the
fused-group kernel must be at least 3× faster than the per-node Alg. 5
loop *while producing the same numbers* (≤ 1e-8 max abs diff — checked
here on the identical sweep budget, and exhaustively by
``tests/test_gsp_differential.py``).

Runs in two modes:

* full (default) — a 46×46 grid (2116 roads), 25 sweeps;
* quick (``GSP_PERF_QUICK=1``) — a 20×20 grid, 10 sweeps, used by the
  CI smoke job so the harness itself cannot rot.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro
from repro.core.gsp import GSPConfig, GSPEngine, GSPKernel, GSPSchedule
from repro.core.rtf import RTFSlot

QUICK = os.environ.get("GSP_PERF_QUICK", "") == "1"
GRID = (20, 20) if QUICK else (46, 46)
SWEEPS = 10 if QUICK else 25
MIN_SPEEDUP = 3.0
MAX_ABS_DIFF = 1e-8


@pytest.fixture(scope="module")
def perf_world():
    network = repro.grid_network(*GRID)
    n = network.n_roads
    if not QUICK:
        assert n >= 2000, "perf gate must run on a ≥2k-road network"
    rng = np.random.default_rng(7)
    params = RTFSlot(
        slot=0,
        mu=rng.uniform(25.0, 85.0, n),
        sigma=rng.uniform(0.8, 5.0, n),
        rho=rng.uniform(0.1, 0.95, network.n_edges),
    )
    observed_roads = rng.choice(n, size=max(10, n // 50), replace=False)
    observed = {
        int(r): float(max(1.0, params.mu[r] * 0.8)) for r in observed_roads
    }
    return network, params, observed


def _config(kernel: GSPKernel) -> GSPConfig:
    # epsilon far below reach: both kernels run exactly SWEEPS sweeps, so
    # the wall-clock ratio compares identical work.
    return GSPConfig(
        epsilon=1e-300,
        max_sweeps=SWEEPS,
        schedule=GSPSchedule.BFS_PARALLEL,
        kernel=kernel,
    )


@pytest.mark.parametrize("schedule", [GSPSchedule.BFS_PARALLEL, GSPSchedule.BFS_COLORED])
def test_vectorized_kernel_speedup_and_equivalence(perf_world, schedule):
    network, params, observed = perf_world
    engine = GSPEngine(network)
    ref_config = GSPConfig(
        epsilon=1e-300, max_sweeps=SWEEPS, schedule=schedule,
        kernel=GSPKernel.REFERENCE,
    )
    vec_config = GSPConfig(
        epsilon=1e-300, max_sweeps=SWEEPS, schedule=schedule,
        kernel=GSPKernel.VECTORIZED,
    )

    start = time.perf_counter()
    reference = engine.propagate(params, observed, ref_config)
    reference_s = time.perf_counter() - start

    engine.propagate(params, observed, vec_config)  # compile + warm caches
    vectorized_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        vectorized = engine.propagate(params, observed, vec_config)
        vectorized_s = min(vectorized_s, time.perf_counter() - start)

    # Equal work: the counters surfaced on GSPResult prove both kernels
    # swept the same number of times before the wall-clocks are compared.
    assert reference.sweeps == vectorized.sweeps == SWEEPS
    assert reference.kernel is GSPKernel.REFERENCE
    assert vectorized.kernel is GSPKernel.VECTORIZED

    max_diff = float(np.max(np.abs(reference.speeds - vectorized.speeds)))
    assert max_diff <= MAX_ABS_DIFF, f"kernels disagree by {max_diff:.3g}"

    speedup = reference_s / vectorized_s
    print(
        f"\n[{schedule.value}] {network.n_roads} roads, {SWEEPS} sweeps: "
        f"reference {reference_s:.4f}s, vectorized {vectorized_s:.4f}s, "
        f"speedup {speedup:.1f}x, max abs diff {max_diff:.2e}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized kernel only {speedup:.2f}x faster (need ≥{MIN_SPEEDUP}x)"
    )


def test_warm_cache_skips_compilation(perf_world):
    network, params, observed = perf_world
    engine = GSPEngine(network)
    config = _config(GSPKernel.VECTORIZED)
    cold = engine.propagate(params, observed, config)
    warm = engine.propagate(params, observed, config)
    assert not cold.structure_cache_hit and not cold.schedule_cache_hit
    assert warm.structure_cache_hit and warm.schedule_cache_hit
    assert np.array_equal(cold.speeds, warm.speeds)
    stats = engine.stats.as_dict()
    assert stats["structure_misses"] == 1
    assert stats["schedule_misses"] == 1


def test_batch_reuses_schedule_across_slots(perf_world):
    network, params, observed = perf_world
    slots = [
        RTFSlot(params.slot + k, params.mu + k, params.sigma, params.rho)
        for k in range(3)
    ]
    engine = GSPEngine(network)
    results = engine.propagate_batch(
        [(slot, observed) for slot in slots], _config(GSPKernel.VECTORIZED)
    )
    assert [r.schedule_cache_hit for r in results] == [False, True, True]
    assert engine.stats.structure_misses == 3  # one structure per slot
    assert engine.stats.schedule_misses == 1  # one shared compilation
