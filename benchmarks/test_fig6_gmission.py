"""Figure 6 bench: MAPE / FER on the gMission-like dataset.

Benchmarks a full online query on the worker-scarce instance and
regenerates the quality series, asserting the paper's finding that the
semi-synthesized patterns carry over: GSP stays competitive with the
correlation-only baselines at every budget.
"""


from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.experiments import figure6
from repro.experiments.common import ExperimentScale, market_for

QUICK = ExperimentScale.QUICK


def test_fig6_full_query(benchmark, gmission, gmission_system):
    """Benchmark the full online loop (OCS -> probe -> GSP) on gMission."""
    truth = truth_oracle_for(gmission.test_history, 0, gmission.slot)

    def answer():
        market = market_for(gmission, seed=5)
        return gmission_system.answer_query(
            EstimationRequest(
                queried=gmission.queried,
                slot=gmission.slot,
                budget=max(gmission.budgets),
                warm_start=False,
            ),
            market=market,
            truth=truth,
        )

    result = benchmark(answer)
    assert set(result.selection.selected) <= set(gmission.worker_roads)


def test_fig6_quality_shapes(benchmark):
    cells = benchmark.pedantic(
        figure6.run, kwargs=dict(scale=QUICK, n_trials=3), rounds=1, iterations=1
    )
    smallest = min(c.budget for c in cells)
    at_small = {c.estimator: c.summary.mape for c in cells if c.budget == smallest}
    # Same pattern as Fig. 3 a1: GSP beats the correlation-only methods.
    assert at_small["GSP"] <= at_small["LASSO"] + 0.02
    assert at_small["GSP"] <= at_small["GRMC"] + 0.02

    gsp = sorted(
        (c.budget, c.summary.mape) for c in cells if c.estimator == "GSP"
    )
    # Quality improves (or holds) with budget.
    assert gsp[-1][1] <= gsp[0][1] + 0.03
