"""Perf gate: disabled observability must be (nearly) free.

The telemetry added to the online loop is only acceptable if a
deployment that never enables it pays nothing.  This gate times the
instrumented ``GSPEngine.propagate`` (obs disabled, the default) against
an inlined replica of the *pre-instrumentation* propagate — the same
validation, cache access, and vectorized sweeps, with none of the span /
metrics bookkeeping — and bounds the relative overhead at 5%.

Runs in two modes:

* full (default) — a 46×46 grid (2116 roads), 25 sweeps, 5% bound;
* quick (``OBS_PERF_QUICK=1``) — a 20×20 grid, 10 sweeps.  Timings that
  small are noise-dominated, so the bound is relaxed to 50% plus an
  absolute floor; CI uses this mode only to keep the harness alive.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro
from repro import obs
from repro.core import gsp as gsp_module
from repro.core.gsp import GSPConfig, GSPEngine, GSPKernel, GSPSchedule
from repro.core.rtf import RTFSlot
from repro.obs.metrics import _NOOP
from repro.obs.tracing import _NULL_SPAN

QUICK = os.environ.get("OBS_PERF_QUICK", "") == "1"
GRID = (20, 20) if QUICK else (46, 46)
SWEEPS = 10 if QUICK else 25
ROUNDS = 5 if QUICK else 9
#: Relative overhead bound, plus an absolute floor under which we don't
#: care (sub-100µs deltas are clock jitter at this scale).
MAX_OVERHEAD = 0.50 if QUICK else 0.05
ABS_FLOOR_S = 100e-6


@pytest.fixture(scope="module")
def perf_world():
    network = repro.grid_network(*GRID)
    n = network.n_roads
    rng = np.random.default_rng(7)
    params = RTFSlot(
        slot=0,
        mu=rng.uniform(25.0, 85.0, n),
        sigma=rng.uniform(0.8, 5.0, n),
        rho=rng.uniform(0.1, 0.95, network.n_edges),
    )
    observed_roads = rng.choice(n, size=max(10, n // 50), replace=False)
    observed = {
        int(r): float(max(1.0, params.mu[r] * 0.8)) for r in observed_roads
    }
    config = GSPConfig(
        epsilon=1e-300,
        max_sweeps=SWEEPS,
        schedule=GSPSchedule.BFS_COLORED,
        kernel=GSPKernel.VECTORIZED,
    )
    return network, params, observed, config


def baseline_propagate(engine, network, params, observed, cfg):
    """The propagate body as it stood before instrumentation.

    Validation, clamping, warm-cache access and the vectorized sweeps —
    everything ``GSPEngine.propagate`` does on this path except the
    span/metrics bookkeeping whose cost this gate bounds.
    """
    kernel = cfg.resolved_kernel()
    params.check_against(network)
    n = network.n_roads
    for road, value in observed.items():
        if not 0 <= road < n:
            raise ValueError(road)
        if not np.isfinite(value) or value <= 0:
            raise ValueError(value)
    speeds = params.mu.astype(np.float64).copy()
    for road, value in observed.items():
        speeds[road] = float(value)
    observed_set = frozenset(int(road) for road in observed)
    structure, _ = engine.structure_for(params)
    compiled, _ = engine.schedule_for(cfg.schedule, observed_set, structure)
    speeds, sweeps, converged, history = gsp_module._vectorized_sweeps(
        structure, compiled, speeds, cfg
    )
    assert kernel is GSPKernel.VECTORIZED
    return speeds, sweeps, converged, history


def test_disabled_obs_overhead_within_bound(perf_world):
    network, params, observed, config = perf_world
    obs.disable_all()
    engine = GSPEngine(network)
    engine.propagate(params, observed, config)  # compile + warm caches

    def measure():
        baseline_s = instrumented_s = float("inf")
        # Interleave the variants so thermal / frequency drift hits both.
        for _ in range(ROUNDS):
            start = time.perf_counter()
            speeds_base, sweeps_base, _, _ = baseline_propagate(
                engine, network, params, observed, config
            )
            baseline_s = min(baseline_s, time.perf_counter() - start)

            start = time.perf_counter()
            result = engine.propagate(params, observed, config)
            instrumented_s = min(instrumented_s, time.perf_counter() - start)
        # Same work, same numbers — apples to apples.
        assert result.sweeps == sweeps_base == SWEEPS
        assert np.array_equal(result.speeds, speeds_base)
        return baseline_s, instrumented_s

    # A shared/loaded machine can swing whole measurement windows by more
    # than the 5% being asserted; retry with fresh windows and keep the
    # attempt with the least ambient noise (lowest instrumented time).
    best = None
    for attempt in range(1, 4):
        baseline_s, instrumented_s = measure()
        overhead = instrumented_s / baseline_s - 1.0
        print(
            f"\n[{network.n_roads} roads, {SWEEPS} sweeps, try {attempt}] "
            f"baseline {baseline_s * 1e3:.3f}ms, instrumented "
            f"{instrumented_s * 1e3:.3f}ms, overhead {overhead * 100:+.2f}%"
        )
        if best is None or instrumented_s < best[1]:
            best = (baseline_s, instrumented_s, overhead)
        if overhead <= MAX_OVERHEAD or instrumented_s - baseline_s <= ABS_FLOOR_S:
            return
    baseline_s, instrumented_s, overhead = best
    raise AssertionError(
        f"disabled-obs overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% in every attempt (best attempt: baseline "
        f"{baseline_s * 1e3:.3f}ms, instrumented {instrumented_s * 1e3:.3f}ms)"
    )


def test_enabled_sampler_overhead_within_bound(perf_world):
    """A 1 Hz health sampler must not tax the enabled-obs hot path.

    Both variants run with metrics enabled; the instrumented one also
    has a :class:`HealthMonitor` sampler thread snapshotting the live
    registry once per second.  The only cost the sampler can impose on
    ``propagate`` is registry-lock contention during those snapshots,
    bounded here at the same 5% (50% quick) as the disabled-obs gate.
    """
    from repro.obs.health import HealthMonitor, default_slos

    network, params, observed, config = perf_world
    obs.configure(metrics=True, tracing=False)
    try:
        engine = GSPEngine(network)
        engine.propagate(params, observed, config)  # compile + warm caches

        def measure():
            plain_s = sampled_s = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                result_plain = engine.propagate(params, observed, config)
                plain_s = min(plain_s, time.perf_counter() - start)
            monitor = HealthMonitor(
                registry=obs.get_metrics(),
                slos=default_slos(),
                interval_s=1.0,
            )
            monitor.start()
            try:
                for _ in range(ROUNDS):
                    start = time.perf_counter()
                    result_sampled = engine.propagate(params, observed, config)
                    sampled_s = min(sampled_s, time.perf_counter() - start)
            finally:
                monitor.close()
            assert result_plain.sweeps == result_sampled.sweeps == SWEEPS
            assert np.array_equal(result_plain.speeds, result_sampled.speeds)
            return plain_s, sampled_s

        best = None
        for attempt in range(1, 4):
            plain_s, sampled_s = measure()
            overhead = sampled_s / plain_s - 1.0
            print(
                f"\n[{network.n_roads} roads, {SWEEPS} sweeps, try {attempt}] "
                f"no sampler {plain_s * 1e3:.3f}ms, 1Hz sampler "
                f"{sampled_s * 1e3:.3f}ms, overhead {overhead * 100:+.2f}%"
            )
            if best is None or sampled_s < best[1]:
                best = (plain_s, sampled_s, overhead)
            if overhead <= MAX_OVERHEAD or sampled_s - plain_s <= ABS_FLOOR_S:
                return
        plain_s, sampled_s, overhead = best
        raise AssertionError(
            f"1Hz-sampler overhead {overhead * 100:.1f}% exceeds "
            f"{MAX_OVERHEAD * 100:.0f}% in every attempt (best attempt: "
            f"no sampler {plain_s * 1e3:.3f}ms, sampled "
            f"{sampled_s * 1e3:.3f}ms)"
        )
    finally:
        obs.disable_all()
        obs.get_metrics().clear()


def test_disabled_obs_records_nothing(perf_world):
    network, params, observed, config = perf_world
    obs.disable_all()
    obs.get_metrics().clear()
    obs.get_tracer().reset()
    engine = GSPEngine(network)
    engine.propagate(params, observed, config)
    assert obs.get_tracer().records() == ()
    snap = obs.get_metrics().snapshot()
    assert snap == {"counters": [], "gauges": [], "histograms": []}


def test_disabled_instruments_are_shared_singletons():
    """The disabled fast path allocates nothing per call."""
    obs.disable_all()
    registry = obs.get_metrics()
    tracer = obs.get_tracer()
    assert registry.counter("x") is _NOOP
    assert registry.histogram("y") is _NOOP
    assert registry.gauge("z") is _NOOP
    assert tracer.span("s", a=1) is _NULL_SPAN
