"""Perf gates for the query-latency work (ISSUE 9).

Three independently-gated optimizations, each checked for speed AND for
answer fidelity:

* **Incremental OCS** — on a ≥2k-candidate instance the delta-updated
  greedy must be ≥3× faster than the full-rescan oracle while selecting
  the *identical* road set (bitwise-equal gains by construction; see
  ``tests/test_ocs_incremental.py`` for the exhaustive property check).
* **Warm-started GSP** — steady-state sweeps-to-convergence must drop
  ≥1.5× when seeding from the previous converged field (measured in
  sweeps, not wall-clock, so the gate is deterministic).
* **mmap snapshot cold start** — ``load_store`` must beat the
  ``.npz``-decompress-then-hash path ≥5× while adopting digests that
  match a byte-exact reload.

Runs in two modes:

* full (default) — 2.2k OCS candidates, a 70×70 grid / 48-slot store;
* quick (``LATENCY_PERF_QUICK=1``) — scaled-down instances with relaxed
  speedup floors, used by the CI smoke job so the harness cannot rot.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro
from repro.core.gsp import GSPConfig, GSPEngine
from repro.core.ocs import OCSInstance, hybrid_greedy
from repro.core.rtf import RTFModel, RTFSlot, params_signature
from repro.core.snapshot_io import load_store, write_snapshot
from repro.core.store import ModelStore

QUICK = os.environ.get("LATENCY_PERF_QUICK", "") == "1"

OCS_N_CANDIDATES = 1200 if QUICK else 2200
OCS_N_QUERIED = 120 if QUICK else 200
OCS_BUDGET = 120.0 if QUICK else 220.0
#: Small instances leave numpy call overhead in charge, so the quick
#: floor is relaxed; the real acceptance bar is the full run's 3×.
OCS_MIN_SPEEDUP = 1.5 if QUICK else 3.0

WARM_GRID = (20, 20) if QUICK else (40, 40)
WARM_MIN_SWEEP_RATIO = 1.5

MMAP_GRID = (35, 35) if QUICK else (70, 70)
MMAP_N_SLOTS = 12 if QUICK else 48
MMAP_MIN_SPEEDUP = 2.0 if QUICK else 5.0
MMAP_REPEATS = 3 if QUICK else 5


def test_incremental_ocs_beats_rescan_with_identical_selection():
    rng = np.random.default_rng(7)
    n = OCS_N_CANDIDATES + OCS_N_QUERIED + 200
    roads = rng.permutation(n)
    queried = tuple(int(r) for r in roads[:OCS_N_QUERIED])
    candidates = tuple(
        int(r) for r in roads[OCS_N_QUERIED:OCS_N_QUERIED + OCS_N_CANDIDATES]
    )
    if not QUICK:
        assert len(candidates) >= 2000, "perf gate must run on ≥2k candidates"
    half = rng.uniform(0.0, 0.6, (n, n))
    corr = (half + half.T) / 2
    np.fill_diagonal(corr, 1.0)
    instance = OCSInstance(
        queried=queried,
        candidates=candidates,
        costs=rng.integers(1, 4, len(candidates)).astype(float),
        budget=OCS_BUDGET,
        theta=0.97,
        corr=corr,
        sigma=rng.uniform(0.2, 1.0, n),
    )

    hybrid_greedy(instance)  # warm numpy / allocator
    start = time.perf_counter()
    fast = hybrid_greedy(instance, incremental=True)
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    slow = hybrid_greedy(instance, incremental=False)
    slow_s = time.perf_counter() - start

    assert fast.selected == slow.selected
    assert fast.objective == slow.objective
    speedup = slow_s / fast_s
    print(
        f"\nincremental OCS: {len(fast.selected)} picks, "
        f"incremental {fast_s * 1e3:.1f} ms vs rescan {slow_s * 1e3:.1f} ms "
        f"({speedup:.1f}x, gate {OCS_MIN_SPEEDUP}x)"
    )
    assert speedup >= OCS_MIN_SPEEDUP, (
        f"incremental OCS speedup {speedup:.2f}x below the "
        f"{OCS_MIN_SPEEDUP}x gate"
    )


def test_warm_started_gsp_cuts_steady_state_sweeps():
    network = repro.grid_network(*WARM_GRID)
    n = network.n_roads
    rng = np.random.default_rng(11)
    params = RTFSlot(
        slot=0,
        mu=rng.uniform(25.0, 85.0, n),
        sigma=rng.uniform(0.8, 5.0, n),
        rho=rng.uniform(0.1, 0.95, network.n_edges),
    )
    observed_roads = rng.choice(n, size=max(5, n // 40), replace=False)
    observed = {
        int(r): float(max(1.0, params.mu[r] * 0.8)) for r in observed_roads
    }
    engine = GSPEngine(network)
    config = GSPConfig(epsilon=1e-5, max_sweeps=2000)

    cold = engine.propagate(params, observed, config)
    warm = engine.propagate(
        params, observed, config, initial_field=cold.speeds
    )
    assert cold.converged and warm.converged
    # Same fixed point within the solver's ε — the fidelity half of the gate.
    np.testing.assert_allclose(warm.speeds, cold.speeds, rtol=0, atol=1e-3)

    ratio = cold.sweeps / max(warm.sweeps, 1)
    print(
        f"\nwarm GSP: cold {cold.sweeps} sweeps vs warm {warm.sweeps} "
        f"({ratio:.1f}x, gate {WARM_MIN_SWEEP_RATIO}x)"
    )
    assert ratio >= WARM_MIN_SWEEP_RATIO, (
        f"warm-start sweep ratio {ratio:.2f}x below the "
        f"{WARM_MIN_SWEEP_RATIO}x gate"
    )


def test_mmap_cold_start_beats_npz_load(tmp_path):
    network = repro.grid_network(*MMAP_GRID)
    n = network.n_roads
    rng = np.random.default_rng(13)
    model = RTFModel(
        network,
        [
            RTFSlot(
                slot=t,
                mu=rng.uniform(25.0, 85.0, n),
                sigma=rng.uniform(0.8, 5.0, n),
                rho=rng.uniform(0.1, 0.95, network.n_edges),
            )
            for t in range(MMAP_N_SLOTS)
        ],
    )
    npz_path = tmp_path / "model.npz"
    snap_path = tmp_path / "model.snap"
    model.save(npz_path)
    # Parameter arrays only: the .npz baseline carries no propagation
    # arrays either, so the two cold starts load the same content.
    write_snapshot(snap_path, model, include_propagation=False)

    npz_times = []
    mmap_times = []
    store = None
    for _ in range(MMAP_REPEATS):
        start = time.perf_counter()
        baseline = ModelStore(RTFModel.load(npz_path, network))
        npz_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        store = load_store(snap_path, network)
        mmap_times.append(time.perf_counter() - start)

    # Fidelity: the mmap-loaded store serves byte-exact parameters.
    assert store is not None
    snapshot = store.current()
    for t in model.slots:
        assert snapshot.digest(t) == params_signature(model.slot(t))
        assert np.array_equal(snapshot.slot(t).mu, baseline.current().slot(t).mu)

    speedup = min(npz_times) / min(mmap_times)
    print(
        f"\nmmap cold start: npz {min(npz_times) * 1e3:.1f} ms vs "
        f"mmap {min(mmap_times) * 1e3:.1f} ms "
        f"({speedup:.1f}x, gate {MMAP_MIN_SPEEDUP}x)"
    )
    assert speedup >= MMAP_MIN_SPEEDUP, (
        f"mmap cold-start speedup {speedup:.2f}x below the "
        f"{MMAP_MIN_SPEEDUP}x gate"
    )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
