"""Perf gate: pluggable-backend dispatch must not tax the default path.

Acceptance bar for the backend refactor (ISSUE 8): routing every query
through the backend dispatch point (``answer_query(backend=...)``) may
add at most 5% p99 latency over the pre-refactor call shape
(``answer_query`` with no backend argument), and the two must return
bit-identical numbers — the paper's RTF+GSP path is still the same
code, merely reachable through a named default.

Runs in two modes:

* full (default) — 120-road network, 100 timed pairs;
* quick (``BACKEND_PERF_QUICK=1``) — 60-road network, 30 pairs, used by
  the CI smoke job so the harness itself cannot rot.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro

QUICK = os.environ.get("BACKEND_PERF_QUICK", "") == "1"
N_ROADS = 60 if QUICK else 120
N_PAIRS = 30 if QUICK else 100
N_WARMUP = 3 if QUICK else 10
MAX_P99_OVERHEAD = 0.05
#: Absolute slack (seconds) so timer jitter on a ~30 ms pipeline cannot
#: fail the relative gate by itself.
P99_SLACK_S = 0.002


@pytest.fixture(scope="module")
def backend_perf_world():
    config = repro.SemiSynConfig(
        n_roads=N_ROADS,
        n_queried=16,
        n_train_days=10,
        n_test_days=2,
        n_slots=6,
        seed=99,
    )
    data = repro.build_semisyn(config)
    system = repro.CrowdRTSE.fit(
        data.network, data.train_history, slots=[data.slot]
    )
    truth = repro.truth_oracle_for(data.test_history, 0, data.slot)
    return {"data": data, "system": system, "truth": truth}


def _run_query(world, seed, backend):
    data = world["data"]
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(seed),
    )
    kwargs = {} if backend is None else {"backend": backend}
    start = time.perf_counter()
    result = world["system"].answer_query(
        repro.EstimationRequest(
            queried=data.queried,
            slot=data.slot,
            budget=12,
            rng=np.random.default_rng(seed),
            warm_start=False,
        ),
        market=market,
        truth=world["truth"],
        **kwargs,
    )
    return time.perf_counter() - start, result


def test_default_backend_dispatch_overhead_within_5_percent(
    backend_perf_world,
):
    for k in range(N_WARMUP):  # prime caches / JIT-free steady state
        _run_query(backend_perf_world, 10_000 + k, None)

    plain_lat, backend_lat = [], []
    for k in range(N_PAIRS):
        seed = 20_000 + k
        # Alternate arm order so drift cannot favour one side.
        if k % 2 == 0:
            t_plain, r_plain = _run_query(backend_perf_world, seed, None)
            t_backend, r_backend = _run_query(
                backend_perf_world, seed, "rtf_gsp"
            )
        else:
            t_backend, r_backend = _run_query(
                backend_perf_world, seed, "rtf_gsp"
            )
            t_plain, r_plain = _run_query(backend_perf_world, seed, None)
        plain_lat.append(t_plain)
        backend_lat.append(t_backend)
        # Bit-identical default path: same seeds, same numbers.
        np.testing.assert_array_equal(
            r_plain.full_field_kmh, r_backend.full_field_kmh
        )
        assert r_backend.backend == "rtf_gsp"
        assert r_backend.gsp is not None

    p99_plain = float(np.percentile(plain_lat, 99))
    p99_backend = float(np.percentile(backend_lat, 99))
    overhead = p99_backend / p99_plain - 1.0
    print(
        f"\n[backend-perf] {N_PAIRS} pairs, {N_ROADS} roads: "
        f"p99 plain {p99_plain * 1e3:.2f}ms, "
        f"p99 dispatch {p99_backend * 1e3:.2f}ms, "
        f"overhead {overhead * 100:+.1f}%"
    )
    assert p99_backend <= p99_plain * (1.0 + MAX_P99_OVERHEAD) + P99_SLACK_S, (
        f"backend dispatch p99 {p99_backend * 1e3:.2f}ms exceeds "
        f"{MAX_P99_OVERHEAD:.0%} over the pre-refactor p99 "
        f"{p99_plain * 1e3:.2f}ms"
    )


def test_attached_backend_estimate_is_cheap_relative_to_query(
    backend_perf_world,
):
    """The template layer (spans, metrics, validation) must stay noise:
    a gmrf estimate off already-gathered probes is far cheaper than the
    full query that gathered them."""
    world = backend_perf_world
    system = world["system"]
    data = world["data"]
    system.attach_backend("gmrf", history=data.train_history)

    t_query, result = _run_query(world, 31_000, None)
    timings = []
    for _ in range(10):
        start = time.perf_counter()
        estimate = system.estimate_with_backend(
            "gmrf", result.probes, data.slot
        )
        timings.append(time.perf_counter() - start)
    assert np.all(np.isfinite(estimate.speeds))
    median_est = float(np.median(timings))
    print(
        f"\n[backend-perf] full query {t_query * 1e3:.2f}ms, "
        f"gmrf re-estimate median {median_est * 1e3:.2f}ms"
    )
    assert median_est < t_query, (
        "re-estimating from gathered probes should be cheaper than the "
        "full pipeline run that gathered them"
    )
