"""Ablation bench: cross-slot budget allocation and posterior uncertainty.

DESIGN.md S29/S30 extensions: the σ-need allocation study, and the cost
of exact posterior variances (which power the confidence bands).
"""

import numpy as np

from repro.core.request import EstimationRequest
from repro.core.uncertainty import conditional_variances
from repro.datasets import truth_oracle_for
from repro.experiments import allocation_study
from repro.experiments.common import ExperimentScale, market_for

QUICK = ExperimentScale.QUICK


def test_allocation_study(benchmark):
    rows = benchmark.pedantic(
        allocation_study.run,
        kwargs=dict(scale=QUICK, n_slots=3, total_budget=45, n_trials=2),
        rounds=1,
        iterations=1,
    )
    by_policy = {r.policy: r for r in rows}
    assert set(by_policy) == {"uniform", "need-based"}
    # Identical total spend, comparable or better quality.
    assert by_policy["need-based"].total_budget == by_policy["uniform"].total_budget
    assert by_policy["need-based"].mape <= by_policy["uniform"].mape + 0.03


def test_posterior_variance_cost(benchmark, semisyn, semisyn_system):
    """Benchmark the exact variance computation on the QUICK network."""
    params = semisyn_system.model.slot(semisyn.slot)
    market = market_for(semisyn, seed=3)
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)
    result = semisyn_system.answer_query(
        EstimationRequest(
            queried=semisyn.queried,
            slot=semisyn.slot,
            budget=min(semisyn.budgets),
            warm_start=False,
        ),
        market=market,
        truth=truth,
    )
    variances = benchmark(
        conditional_variances, semisyn.network, params, result.probes
    )
    assert np.all(variances >= 0)
    for road in result.probes:
        assert variances[road] == 0.0


def test_more_probes_reduce_total_uncertainty(benchmark, semisyn, semisyn_system):
    params = semisyn_system.model.slot(semisyn.slot)
    truth = truth_oracle_for(semisyn.test_history, 0, semisyn.slot)

    def totals():
        out = []
        for budget in (min(semisyn.budgets), max(semisyn.budgets)):
            market = market_for(semisyn, seed=4)
            result = semisyn_system.answer_query(
                EstimationRequest(
                    queried=semisyn.queried,
                    slot=semisyn.slot,
                    budget=budget,
                    warm_start=False,
                ),
                market=market,
                truth=truth,
            )
            variances = conditional_variances(
                semisyn.network, params, result.probes
            )
            out.append(float(variances.sum()))
        return out

    small_budget_total, large_budget_total = benchmark.pedantic(
        totals, rounds=1, iterations=1
    )
    assert large_budget_total <= small_budget_total + 1e-6
