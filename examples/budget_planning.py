"""Budget planning: how much crowdsourcing budget does a city need?

An operator wants to pick the smallest budget K whose estimation quality
is acceptable, and to see how much of that quality comes from OCS's
clever selection versus spending alone.  This sweeps budgets and
selection strategies (Hybrid vs Random) and prints the paper's Fig. 3
style series plus the coverage view of Table III.

Run:  python examples/budget_planning.py
"""

import numpy as np

import repro
from repro.eval.coverage import coverage_report

data = repro.build_semisyn(
    repro.SemiSynConfig(
        n_roads=150,
        n_queried=25,
        n_train_days=20,
        n_test_days=6,
        n_slots=12,
        budgets=(15, 30, 45, 60, 75),
        seed=11,
    )
)
system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])

print(f"dataset: {data.summary()}\n")
print("K    selector  MAPE    FER     1-hop  2-hop  |R^c|")
print("-" * 55)

for budget in data.budgets:
    for selector in ("hybrid", "random"):
        estimates_all, truths_all = [], []
        coverage = {}
        n_selected = 0
        for day in range(data.test_history.n_days):
            market = repro.CrowdMarket(
                data.network, data.pool, data.cost_model,
                rng=np.random.default_rng(100 + day),
            )
            truth = repro.truth_oracle_for(data.test_history, day, data.slot)
            result = system.answer_query(
                data.queried, data.slot, budget=budget, market=market,
                truth=truth, selector=selector,
                rng=np.random.default_rng(200 + day),
            )
            estimates_all.append(result.estimates_kmh)
            truths_all.append(np.array([truth(q) for q in data.queried]))
            coverage = coverage_report(
                data.network, result.selection.selected, data.queried
            )
            n_selected = len(result.selection.selected)
        estimates = np.concatenate(estimates_all)
        truths = np.concatenate(truths_all)
        mape = repro.mean_absolute_percentage_error(estimates, truths)
        fer = repro.false_estimation_rate(estimates, truths)
        print(
            f"{budget:<4} {selector:<9} {mape:.4f}  {fer:.4f}  "
            f"{coverage[1]:<6} {coverage[2]:<6} {n_selected}"
        )

print(
    "\nReading: Hybrid reaches the same quality as Random with a much\n"
    "smaller budget — the gap is the value of solving OCS well (paper\n"
    "Fig. 3d).  Pick the smallest K where MAPE flattens."
)
