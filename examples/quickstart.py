"""Quickstart: the full CrowdRTSE loop in ~40 lines.

Builds a small semi-synthetic city, trains the RTF model offline, then
answers one realtime traffic-speed query online: OCS selects the roads
to crowdsource, the simulated market probes them, and GSP propagates the
probes into estimates for the queried roads.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# ----------------------------------------------------------------------
# Offline stage: build the world and train the model (Fig. 1, blue box).
# ----------------------------------------------------------------------
data = repro.build_semisyn(
    repro.SemiSynConfig(
        n_roads=150,
        n_queried=20,
        n_train_days=20,
        n_test_days=5,
        n_slots=12,
        seed=7,
    )
)
print(f"dataset : {data.summary()}")

system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
print(f"model   : fitted RTF for slot {data.slot} on {data.n_roads} roads")

# ----------------------------------------------------------------------
# Online stage: one query (Fig. 1, green box).
# ----------------------------------------------------------------------
market = repro.CrowdMarket(
    data.network, data.pool, data.cost_model, rng=np.random.default_rng(0)
)
truth = repro.truth_oracle_for(data.test_history, day=0, slot=data.slot)

result = system.answer_query(
    data.queried,
    data.slot,
    budget=30,
    market=market,
    truth=truth,
    theta=data.theta,
    selector="hybrid",
)

print(
    f"query   : {len(data.queried)} roads, budget 30 -> crowdsourced "
    f"{len(result.selection.selected)} roads for {result.budget_spent} units"
)

truths = np.array([truth(q) for q in data.queried])
mape = repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
fer = repro.false_estimation_rate(result.estimates_kmh, truths)
print(f"quality : MAPE {mape:.3f}, FER {fer:.3f}")

# Compare against the periodicity-only answer the paper calls "Per".
periodic = system.model.slot(data.slot).mu[list(data.queried)]
per_mape = repro.mean_absolute_percentage_error(periodic, truths)
print(f"baseline: Per MAPE {per_mape:.3f} (GSP should be lower)")

print("\nroad      estimate   truth")
for road, estimate in list(zip(data.queried, result.estimates_kmh))[:8]:
    print(f"r{road:<8} {estimate:7.1f}   {truth(road):7.1f}")
