"""City monitoring: a realtime dashboard loop over consecutive slots.

Simulates a morning of city-wide monitoring: every 5-minute slot a new
query arrives, the crowd is re-probed under a fixed per-slot budget, and
the dashboard tracks estimation quality and spend.  Demonstrates the
multi-slot API (one RTF slot per 5-minute interval) and the budget
ledger.

Run:  python examples/city_monitoring.py
"""

import numpy as np

import repro
from repro.traffic.profiles import time_of_slot

data = repro.build_semisyn(
    repro.SemiSynConfig(
        n_roads=120,
        n_queried=18,
        n_train_days=20,
        n_test_days=3,
        n_slots=10,
        slot_start_hour=7,
        seed=21,
    )
)

# Fit the model for every slot of the monitored window (offline).
slots = list(data.train_history.global_slots)
system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=slots)
print(f"monitoring {len(data.queried)} roads over {len(slots)} slots "
      f"({data.n_roads}-road network)\n")

BUDGET_PER_SLOT = 20
DAY = 0

print("time   slot  |R^c|  spent  GSP MAPE  Per MAPE  worst road")
print("-" * 62)
total_spent = 0
gsp_series, per_series = [], []
for slot in slots:
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(slot),
    )
    truth = repro.truth_oracle_for(data.test_history, DAY, slot)
    result = system.answer_query(
        data.queried, slot, budget=BUDGET_PER_SLOT, market=market, truth=truth
    )
    truths = np.array([truth(q) for q in data.queried])
    gsp_mape = repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
    per = system.model.slot(slot).mu[list(data.queried)]
    per_mape = repro.mean_absolute_percentage_error(per, truths)
    gsp_series.append(gsp_mape)
    per_series.append(per_mape)
    total_spent += result.budget_spent

    ape = np.abs(result.estimates_kmh - truths) / truths
    worst = data.queried[int(np.argmax(ape))]
    hour, minute = time_of_slot(slot)
    print(
        f"{hour:02d}:{minute:02d}  {slot:<5} {len(result.selection.selected):<6}"
        f"{result.budget_spent:<6} {gsp_mape:.4f}    {per_mape:.4f}    "
        f"r{worst} ({ape.max():.0%})"
    )

print("-" * 62)
print(
    f"morning summary: GSP MAPE {np.mean(gsp_series):.4f} vs Per "
    f"{np.mean(per_series):.4f}; total spend {total_spent} units "
    f"({total_spent / len(slots):.1f}/slot)"
)
