"""Incident detection: catching accidental variance with sparse probes.

The paper motivates CrowdRTSE with the failure of periodicity-only
methods on *accidental* traffic variance (§I).  This example injects a
severe incident into one test day, answers the same query with and
without crowdsourcing, and raises an alarm on roads whose estimated
speed falls far below the periodic expectation.

Run:  python examples/incident_detection.py
"""

import numpy as np

import repro

# Build a city and simulate a clean history plus one incident day.
network = repro.ring_radial_network(120, seed=42)
profiles = repro.random_profiles(network, seed=43)
config = repro.SimulationConfig(n_days=25, slot_start=96, n_slots=12, seed=44)
simulator = repro.TrafficSimulator(network, profiles, config)

INCIDENT_ROAD = 17
incident = repro.Incident(
    road_index=INCIDENT_ROAD,
    day=24,
    start_slot=3,
    duration_slots=8,
    severity=0.65,
    spread_hops=2,
)
history = simulator.simulate(incidents=[incident])
train, test = history.split_days(24)
slot = 102  # mid-incident

system = repro.CrowdRTSE.fit(network, train, slots=[slot])
params = system.model.slot(slot)

# Query the whole incident neighbourhood.
affected = [INCIDENT_ROAD] + list(network.neighbors(INCIDENT_ROAD))
queried = sorted(set(affected) | set(range(0, network.n_roads, 7)))

pool = repro.WorkerPool.cover_all_roads(network, workers_per_road=10, seed=45)
costs = repro.uniform_random_costs(network, 1, 5, seed=46)
market = repro.CrowdMarket(network, pool, costs, rng=np.random.default_rng(47))
truth = repro.truth_oracle_for(test, day=0, slot=slot)

result = system.answer_query(
    queried, slot, budget=25, market=market, truth=truth
)

print(f"incident on r{INCIDENT_ROAD}: true speed "
      f"{truth(INCIDENT_ROAD):.1f} km/h vs periodic "
      f"{params.mu[INCIDENT_ROAD]:.1f} km/h\n")

# Alarm rule: estimated speed < 70% of the periodic expectation.
ALARM_FRACTION = 0.7
print("road     periodic  estimate  truth    alarm")
print("-" * 48)
alarms = []
for road in queried:
    estimate = result.full_field_kmh[road]
    expected = params.mu[road]
    alarm = estimate < ALARM_FRACTION * expected
    if alarm:
        alarms.append(road)
    if road in affected or alarm:
        flag = "  *ALARM*" if alarm else ""
        print(
            f"r{road:<7} {expected:7.1f}  {estimate:8.1f}  {truth(road):6.1f} {flag}"
        )

hits = [r for r in alarms if r in affected]
print(f"\nalarms on {len(alarms)} roads; {len(hits)} inside the true "
      f"incident zone of {len(affected)} roads")

# The periodicity-only baseline never alarms — it cannot see incidents.
per_alarms = [
    r for r in queried if params.mu[r] < ALARM_FRACTION * params.mu[r]
]
print(f"periodicity-only baseline alarms: {len(per_alarms)} (structurally zero)")
