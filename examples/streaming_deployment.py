"""Streaming deployment: mobile workers, drifting traffic, online model.

The most realistic scenario this library supports in one loop:

* workers random-walk the network between slots (`MobilityModel`), so
  the candidate set R^w changes every query;
* the RTF model is refreshed after each day with exponential forgetting
  (`OnlineRTFUpdater`), tracking drift without refitting;
* concurrent queries in a slot are pooled into one crowdsourcing round
  (`answer_batch`);
* the terminal dashboard renders the congestion strip and solver
  sparklines (`repro.viz`).

Run:  python examples/streaming_deployment.py
"""

import numpy as np

import repro
from repro.core.batch import answer_batch
from repro.core.online_update import OnlineRTFUpdater
from repro.crowd.mobility import MobilityModel
from repro.experiments.workloads import QueryPattern, query_stream
from repro.viz import congestion_strip, convergence_sparkline

# ----------------------------------------------------------------------
# World + offline fit.
# ----------------------------------------------------------------------
data = repro.build_semisyn(
    repro.SemiSynConfig(
        n_roads=120, n_queried=15, n_train_days=20, n_test_days=6,
        n_slots=8, seed=33,
    )
)
system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
updater = OnlineRTFUpdater(
    data.network, system.model.slot(data.slot), learning_rate=0.1
)

# Mobile worker fleet: 400 workers random-walking the city.
pool = repro.WorkerPool.random_distribution(
    data.network, n_workers=400, seed=34
)
mobility = MobilityModel(data.network, move_probability=0.4, seed=35)

free_flow = np.array([road.free_flow_kmh for road in data.network.roads])
print(f"deployment on {data.n_roads} roads, {pool.n_workers} mobile workers\n")

for day in range(data.test_history.n_days):
    # Workers moved overnight; R^w is different today.
    pool = mobility.step(pool)
    market = repro.CrowdMarket(
        data.network, pool, data.cost_model, rng=np.random.default_rng(day)
    )
    truth = repro.truth_oracle_for(data.test_history, day, data.slot)

    # Three concurrent queries: a hotspot, a corridor, a uniform scatter.
    rng = np.random.default_rng(100 + day)
    queries = [
        query_stream(data.network, QueryPattern.HOTSPOT, 10, 1, seed=day)[0],
        query_stream(data.network, QueryPattern.CORRIDOR, 10, 1, seed=day + 50)[0],
        query_stream(data.network, QueryPattern.UNIFORM, 10, 1, seed=day + 99)[0],
    ]
    batch = answer_batch(
        system, queries, data.slot, budget=30, market=market, truth=truth,
    )

    all_truths = np.array([truth(r) for r in range(data.n_roads)])
    mape = repro.mean_absolute_percentage_error(
        batch.shared.full_field_kmh, all_truths
    )
    strip = congestion_strip(batch.shared.full_field_kmh, free_flow, width=60)
    spark = convergence_sparkline(batch.shared.gsp.max_delta_history)
    print(f"day {day}: |R^w|={len(market.candidate_roads())} "
          f"probes={len(batch.shared.probes)} spend={batch.budget_spent} "
          f"full-field MAPE={mape:.3f}")
    print(f"  congestion |{strip}|")
    print(f"  gsp deltas {spark}")

    # End of day: absorb today's observations into the model.
    refreshed = updater.update(all_truths)
    table = repro.CorrelationTable.precompute(
        repro.RTFModel(data.network, [refreshed])
    )
    system = repro.CrowdRTSE(
        data.network, repro.RTFModel(data.network, [refreshed]), table
    )

print("\nmodel refreshed after each day; final sigma mean "
      f"{updater.current().sigma.mean():.2f} km/h over "
      f"{updater.n_updates} updates")
