"""Uncertainty-aware route planning on top of CrowdRTSE.

A navigation service wants the fastest route between two roads *and* an
honest time estimate.  This example:

1. answers a realtime query over the candidate corridor,
2. computes the GMRF posterior variance of every estimated speed,
3. picks the fastest route under the estimated field,
4. reports the route's travel time with a confidence band, and
5. shows where one extra probe would shrink the uncertainty the most.

Run:  python examples/uncertainty_aware_routing.py
"""

import numpy as np

import repro
from repro.core.uncertainty import (
    confidence_intervals,
    most_uncertain_roads,
)
from repro.network.routing import RouteWeight, shortest_route, travel_time_minutes

# World + offline stage.
data = repro.build_semisyn(
    repro.SemiSynConfig(
        n_roads=120, n_queried=20, n_train_days=20, n_test_days=4,
        n_slots=8, seed=55,
    )
)
system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
params = system.model.slot(data.slot)

ORIGIN, DESTINATION = 3, 97

# Query the roads along plausible routes (hop-shortest corridor + ring).
corridor, _ = shortest_route(data.network, ORIGIN, DESTINATION)
queried = sorted(set(corridor) | set(data.queried))

market = repro.CrowdMarket(
    data.network, data.pool, data.cost_model, rng=np.random.default_rng(1)
)
truth = repro.truth_oracle_for(data.test_history, day=0, slot=data.slot)
result = system.answer_query(
    queried, data.slot, budget=25, market=market, truth=truth
)
field = result.full_field_kmh

# Fastest route under the estimated field vs the periodic field.
est_route, _ = shortest_route(
    data.network, ORIGIN, DESTINATION, RouteWeight.TIME, speeds_kmh=field
)
per_route, _ = shortest_route(
    data.network, ORIGIN, DESTINATION, RouteWeight.TIME, speeds_kmh=params.mu
)
true_speeds = np.array([truth(r) for r in range(data.n_roads)])

est_minutes = travel_time_minutes(data.network, est_route, true_speeds)
per_minutes = travel_time_minutes(data.network, per_route, true_speeds)
print(f"route r{ORIGIN} -> r{DESTINATION}")
print(f"  via crowd-informed field : {len(est_route)} roads, "
      f"true time {est_minutes:.1f} min")
print(f"  via periodic field only  : {len(per_route)} roads, "
      f"true time {per_minutes:.1f} min")

# Confidence band of the chosen route's predicted time.
low, high = confidence_intervals(
    data.network, params, result.probes, field, z=1.96
)
pred = travel_time_minutes(data.network, est_route, field)
slow = travel_time_minutes(data.network, est_route, np.maximum(low, 1.0))
fast = travel_time_minutes(data.network, est_route, high)
print(f"\npredicted time {pred:.1f} min "
      f"(95% band {fast:.1f} .. {slow:.1f} min; true {est_minutes:.1f})")

# Where would one more probe help most?
top = most_uncertain_roads(data.network, params, result.probes, k=5)
print("\nmost uncertain roads after this round (posterior std, km/h):")
for road, variance in top.items():
    on_route = "on route" if road in est_route else ""
    print(f"  r{road:<4} ±{np.sqrt(variance):5.2f}  {on_route}")

# Probe the most uncertain on-route road and show the band tighten.
candidates = [r for r in top if r in est_route] or list(top)
extra_road = candidates[0]
extra_probe, _ = market.probe([extra_road], truth)
probes2 = dict(result.probes)
probes2.update(extra_probe)
refined = repro.propagate(data.network, params, probes2)
low2, high2 = confidence_intervals(
    data.network, params, probes2, refined.speeds, z=1.96
)
width_before = float(np.mean(high - low))
width_after = float(np.mean(high2 - low2))
print(f"\nafter one extra probe on r{extra_road}: mean CI width "
      f"{width_before:.2f} -> {width_after:.2f} km/h")
