"""Estimator-backend protocol: the runtime lifecycle every backend obeys.

The serving stack was historically hardwired to the paper's RTF+GSP
pipeline.  This module defines the neutral contract that lifts it off:

* ``fit(history, slots) -> state`` — offline training on a
  :class:`~repro.traffic.history.SpeedHistory`;
* ``refresh(state, day_samples, learning_rate) -> state`` — absorb one
  day of speeds and return a **new** state blob (states are immutable
  values published copy-on-write through the
  :class:`~repro.core.store.ModelStore`, exactly like RTF slots);
* ``estimate(state, probes, slot, deadline) -> BackendEstimate`` — turn
  sparse probes into a full speed field plus provenance.

State blobs must be plain picklable values (dataclasses over numpy
arrays and mappings) so snapshots can be serialized and shipped between
processes.  Anything expensive a backend derives *from* a state blob
(factorizations, sparse precision matrices) should go through
:meth:`EstimatorBackend.derived`, which the store wires to its
digest-keyed single-flight artifact cache on attach — the same cache
that holds the RTF Γ_R matrices and propagation arrays.

Concrete backends implement the underscored hooks (``_fit`` /
``_refresh`` / ``_estimate``); the public template methods centralize
tracing spans (``backend.fit`` / ``backend.refresh`` /
``backend.estimate``), the ``backend.*`` metric series, deadline
checks, probe validation, and the output-field contract (one finite
speed per road).
"""

from __future__ import annotations

import abc
import hashlib
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import BackendError
from repro.network.graph import TrafficNetwork
from repro.obs import DEFAULT_TIME_BUCKETS, get_metrics, get_tracer
from repro.traffic.history import SpeedHistory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.pipeline import Deadline

#: Signature of the digest-keyed derivation hook a ModelStore binds into
#: attached backends: ``(kind, digest, build) -> artifact``.
DeriveFn = Callable[[str, bytes, Callable[[], object]], object]


def arrays_digest(*parts: object) -> bytes:
    """Stable content digest over arrays and plain values.

    Backends key derived artifacts (factorizations, precision solves) by
    the digest of the state they derive from, mirroring
    :func:`~repro.core.rtf.params_signature` for RTF slots: a refreshed
    state gets a new digest, so it can never be served a stale artifact.
    """
    h = hashlib.sha1()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        else:
            h.update(repr(part).encode())
    return h.digest()


@dataclass(frozen=True)
class BackendEstimate:
    """Full-network answer of one backend for one slot.

    Attributes:
        backend: Registry name of the backend that produced the field.
        slot: Global time slot the estimate is for.
        speeds: Estimated speed per road, shape ``(n_roads,)``.
        provenance: Backend-specific diagnostics (sweep counts,
            residuals, solver flags) for observability and debugging.
    """

    backend: str
    slot: int
    speeds: np.ndarray
    provenance: Mapping[str, object] = field(default_factory=dict)


class EstimatorBackend(abc.ABC):
    """Base class of every runtime estimator backend.

    A backend instance is the *stateless math* bound to one network;
    all model state lives in the immutable blobs it produces, which the
    :class:`~repro.core.store.ModelStore` versions alongside the RTF
    slots.  One instance may therefore serve estimates from several
    snapshot generations concurrently.
    """

    #: Registry name; concrete classes (or factories) override it.
    name: str = "base"

    def __init__(self, network: TrafficNetwork) -> None:
        self._network = network
        self._derive: Optional[DeriveFn] = None

    @property
    def network(self) -> TrafficNetwork:
        """The road graph this backend instance is bound to."""
        return self._network

    # -- artifact-cache wiring -----------------------------------------

    def bind_artifacts(self, derive: DeriveFn) -> None:
        """Adopt a digest-keyed derivation hook (store attach wiring).

        After binding, :meth:`derived` routes through the store's
        single-flight LRU artifact cache under ``backend.``-prefixed
        kinds, so expensive per-state derivations happen once per
        digest across all concurrent readers.
        """
        self._derive = derive

    def derived(
        self, kind: str, digest: bytes, build: Callable[[], object]
    ) -> object:
        """A derived artifact, cached by ``(kind, digest)`` when bound."""
        if self._derive is None:
            return build()
        return self._derive(f"{self.name}.{kind}", digest, build)

    # -- lifecycle template methods ------------------------------------

    def fit(
        self,
        history: SpeedHistory,
        slots: Optional[Sequence[int]] = None,
    ) -> object:
        """Offline stage: train on history, return the initial state blob.

        Args:
            history: Offline speed record.
            slots: Global slots to fit (default: all the history covers).
        """
        fitted = sorted(history.global_slots) if slots is None else [
            int(t) for t in slots
        ]
        if not fitted:
            raise BackendError(f"backend {self.name!r}: fit needs at least one slot")
        start = time.perf_counter()
        with get_tracer().span(
            "backend.fit", backend=self.name, slots=len(fitted)
        ):
            state = self._fit(history, fitted)
        self._count_fit(time.perf_counter() - start)
        return state

    def refresh(
        self,
        state: object,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float = 0.05,
    ) -> object:
        """Absorb one day of speeds, returning a **new** state blob.

        Slots the state never fitted are skipped (the streaming layer
        already counts them under ``stream.dropped``); the input state
        is never mutated.
        """
        if not 0.0 < learning_rate < 1.0:
            raise BackendError(
                f"backend {self.name!r}: learning_rate must be in (0, 1), "
                f"got {learning_rate}"
            )
        start = time.perf_counter()
        with get_tracer().span(
            "backend.refresh", backend=self.name, slots=len(day_samples)
        ):
            new_state = self._refresh(state, day_samples, learning_rate)
        self._count_refresh(time.perf_counter() - start)
        return new_state

    def estimate(
        self,
        state: object,
        probes: Mapping[int, float],
        slot: int,
        deadline: Optional["Deadline"] = None,
    ) -> BackendEstimate:
        """Online stage: sparse probes → full speed field + provenance.

        Raises:
            BackendError: On malformed probes or a field that violates
                the contract (wrong shape, non-finite speeds).
            QueryTimeoutError: When ``deadline`` has already expired.
            NotFittedError: When ``slot`` is not covered by ``state``.
        """
        if deadline is not None:
            deadline.check("backend")
        clean = self._check_probes(probes)
        start = time.perf_counter()
        with get_tracer().span(
            "backend.estimate", backend=self.name, slot=int(slot),
            probes=len(clean),
        ):
            speeds, provenance = self._estimate(state, clean, int(slot), deadline)
        field_kmh = np.asarray(speeds, dtype=float)
        n = self._network.n_roads
        if field_kmh.shape != (n,):
            raise BackendError(
                f"backend {self.name!r} returned a field of shape "
                f"{field_kmh.shape}, expected ({n},)"
            )
        if not np.all(np.isfinite(field_kmh)):
            raise BackendError(
                f"backend {self.name!r} returned non-finite speeds"
            )
        self._count_estimate(time.perf_counter() - start)
        return BackendEstimate(
            backend=self.name,
            slot=int(slot),
            speeds=field_kmh,
            provenance=dict(provenance),
        )

    # -- hooks for concrete backends -----------------------------------

    @abc.abstractmethod
    def _fit(self, history: SpeedHistory, slots: Sequence[int]) -> object:
        """Train on ``history`` restricted to ``slots``; return state."""

    @abc.abstractmethod
    def _refresh(
        self,
        state: object,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float,
    ) -> object:
        """Advance ``state`` with one day of speeds; return a new state."""

    @abc.abstractmethod
    def _estimate(
        self,
        state: object,
        probes: Dict[int, float],
        slot: int,
        deadline: Optional["Deadline"],
    ) -> Tuple[np.ndarray, Mapping[str, object]]:
        """Estimate the full field; return ``(speeds, provenance)``."""

    # -- validation and metrics ----------------------------------------

    def _check_probes(self, probes: Mapping[int, float]) -> Dict[int, float]:
        n = self._network.n_roads
        clean: Dict[int, float] = {}
        for road, speed in probes.items():
            index = int(road)
            if not 0 <= index < n:
                raise BackendError(
                    f"backend {self.name!r}: probe road {road} outside "
                    f"[0, {n})"
                )
            value = float(speed)
            if not np.isfinite(value) or value <= 0.0:
                raise BackendError(
                    f"backend {self.name!r}: probe speed {speed!r} for road "
                    f"{road} must be finite and positive"
                )
            clean[index] = value
        return clean

    def _count_fit(self, seconds: float) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"backend": self.name}
        metrics.counter("backend.fits", labels).inc()
        metrics.histogram(
            "backend.fit_seconds", DEFAULT_TIME_BUCKETS, labels
        ).observe(seconds)

    def _count_refresh(self, seconds: float) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"backend": self.name}
        metrics.counter("backend.refreshes", labels).inc()
        metrics.histogram(
            "backend.refresh_seconds", DEFAULT_TIME_BUCKETS, labels
        ).observe(seconds)

    def _count_estimate(self, seconds: float) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"backend": self.name}
        metrics.counter("backend.estimates", labels).inc()
        metrics.histogram(
            "backend.estimate_seconds", DEFAULT_TIME_BUCKETS, labels
        ).observe(seconds)
