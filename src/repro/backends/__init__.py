"""Pluggable estimator backends behind the serving stack.

The package defines the runtime :class:`EstimatorBackend` protocol
(``fit → refresh → estimate``), a process-wide registry mapping names to
backend factories, and the built-in backends:

========  =====================================================
name      estimator
========  =====================================================
rtf_gsp   The paper's RTF model + GSP propagation (default).
per       Periodic historical-mean baseline (offline shim).
lasso     LASSO regression baseline (offline shim).
grmc      Graph-regularized matrix completion (offline shim).
lsmrn     LSM-RN-style latent-space model (arXiv:1602.04301).
gmrf      GMRF field reconstruction (arXiv:1306.6482).
========  =====================================================

Importing this package registers the built-ins; custom backends join
with :func:`register_backend`.  Snapshot state blobs travel through the
:class:`~repro.core.store.ModelStore` next to the RTF slots (see
``CrowdRTSE.attach_backend``), and the serving layer selects a backend
per request via ``ServeRequest.backend``.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendEstimate,
    DeriveFn,
    EstimatorBackend,
    arrays_digest,
)
from repro.backends.gmrf import GMRFBackend, GMRFState, gmrf_conditional_mean
from repro.backends.lsmrn import (
    LSMRNBackend,
    LSMRNState,
    gnmf_multiplicative_step,
    gnmf_objective,
    road_adjacency,
)
from repro.backends.offline import OfflineBackend, OfflineState
from repro.backends.registry import (
    DEFAULT_BACKEND,
    BackendFactory,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.rtf_gsp import RTFGSPBackend, RTFGSPState
from repro.network.graph import TrafficNetwork


def _make_per(network: TrafficNetwork) -> OfflineBackend:
    from repro.baselines import PeriodicEstimator

    return OfflineBackend(network, PeriodicEstimator(), name="per")


def _make_lasso(network: TrafficNetwork) -> OfflineBackend:
    from repro.baselines import LassoEstimator

    return OfflineBackend(network, LassoEstimator(alpha=0.1), name="lasso")


def _make_grmc(network: TrafficNetwork) -> OfflineBackend:
    from repro.baselines import GRMCEstimator

    return OfflineBackend(
        network,
        GRMCEstimator(rank=10, reg=0.1, n_iterations=10),
        name="grmc",
    )


def _register_builtins() -> None:
    # replace=True keeps re-imports (and importlib.reload in tests)
    # idempotent instead of raising duplicate-name errors.
    register_backend("rtf_gsp", RTFGSPBackend, replace=True)
    register_backend("per", _make_per, replace=True)
    register_backend("lasso", _make_lasso, replace=True)
    register_backend("grmc", _make_grmc, replace=True)
    register_backend("lsmrn", LSMRNBackend, replace=True)
    register_backend("gmrf", GMRFBackend, replace=True)


_register_builtins()

__all__ = [
    "BackendEstimate",
    "BackendFactory",
    "DEFAULT_BACKEND",
    "DeriveFn",
    "EstimatorBackend",
    "GMRFBackend",
    "GMRFState",
    "LSMRNBackend",
    "LSMRNState",
    "OfflineBackend",
    "OfflineState",
    "RTFGSPBackend",
    "RTFGSPState",
    "arrays_digest",
    "available_backends",
    "create_backend",
    "gmrf_conditional_mean",
    "gnmf_multiplicative_step",
    "gnmf_objective",
    "register_backend",
    "road_adjacency",
    "unregister_backend",
]
