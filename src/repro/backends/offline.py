"""Offline-baseline shim: serve EstimationContext estimators as backends.

The baselines in :mod:`repro.baselines` (Per, LASSO, GRMC, …) consume a
per-query :class:`~repro.baselines.base.EstimationContext` built from
the query slot's history samples.  This adapter gives them the runtime
lifecycle for free:

* ``fit`` copies each fitted slot's ``(n_days, n_roads)`` sample matrix
  into the state blob (bounded by ``window``);
* ``refresh`` appends the day's speed row to every touched slot and
  trims to the window, so the baselines track the live distribution the
  way the RTF moments do;
* ``estimate`` assembles the context from the state plus the probes and
  delegates to the wrapped estimator.

The blob is a plain mapping of float arrays — picklable, digestable,
and cheap to copy-on-write (only touched slots get new arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import EstimatorBackend
from repro.baselines.base import BaseEstimator, EstimationContext
from repro.errors import BackendError, NotFittedError
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Deadline


@dataclass(frozen=True)
class OfflineState:
    """Rolling per-slot history windows (the backend state blob)."""

    slot_samples: Mapping[int, np.ndarray]
    window: int


class OfflineBackend(EstimatorBackend):
    """Adapts one :class:`BaseEstimator` to the backend protocol."""

    def __init__(
        self,
        network: TrafficNetwork,
        estimator: BaseEstimator,
        name: str,
        window: int = 64,
    ) -> None:
        super().__init__(network)
        if window < 1:
            raise BackendError(
                f"backend {name!r}: window must be >= 1, got {window}"
            )
        self.name = name
        self._estimator = estimator
        self._window = int(window)

    @property
    def estimator(self) -> BaseEstimator:
        """The wrapped offline estimator."""
        return self._estimator

    def _fit(self, history: SpeedHistory, slots: Sequence[int]) -> OfflineState:
        n = self._network.n_roads
        samples: Dict[int, np.ndarray] = {}
        for slot in slots:
            matrix = np.array(history.slot_samples(slot), dtype=float, copy=True)
            if matrix.shape[1] != n:
                raise BackendError(
                    f"backend {self.name!r}: history covers {matrix.shape[1]} "
                    f"roads, network has {n}"
                )
            if matrix.shape[0] > self._window:
                matrix = matrix[-self._window:]
            samples[int(slot)] = matrix
        return OfflineState(samples, self._window)

    def _refresh(
        self,
        state: object,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float,
    ) -> OfflineState:
        offline = self._state_of(state)
        updated = dict(offline.slot_samples)
        for slot, sample in day_samples.items():
            base = updated.get(int(slot))
            if base is None:
                # Unfitted slot: the streaming layer already counts the
                # drop; skipping here matches ModelStore semantics.
                continue
            row = np.asarray(sample, dtype=float).reshape(1, -1)
            if row.shape[1] != base.shape[1]:
                raise BackendError(
                    f"backend {self.name!r}: day sample for slot {slot} has "
                    f"{row.shape[1]} roads, state has {base.shape[1]}"
                )
            stacked = np.vstack([base, row])
            if stacked.shape[0] > offline.window:
                stacked = stacked[-offline.window:]
            updated[int(slot)] = stacked
        return OfflineState(updated, offline.window)

    def _estimate(
        self,
        state: object,
        probes: Dict[int, float],
        slot: int,
        deadline: Optional["Deadline"],
    ) -> Tuple[np.ndarray, Mapping[str, object]]:
        offline = self._state_of(state)
        samples = offline.slot_samples.get(slot)
        if samples is None:
            raise NotFittedError(
                f"backend {self.name!r}: slot {slot} not fitted "
                f"(available: {sorted(offline.slot_samples)})"
            )
        context = EstimationContext(
            network=self._network,
            history_samples=samples,
            probes=probes,
        )
        speeds = self._estimator.estimate(context)
        return np.asarray(speeds, dtype=float), {
            "estimator": self._estimator.name,
            "history_days": int(samples.shape[0]),
        }

    def _state_of(self, state: object) -> OfflineState:
        if not isinstance(state, OfflineState):
            raise BackendError(
                f"backend {self.name!r} expected OfflineState, got "
                f"{type(state).__name__}"
            )
        return state
