"""GMRF reconstruction backend (arXiv:1306.6482, adapted).

Kataoka et al. reconstruct city-wide traffic from sparse observations
with a Gaussian Markov random field whose neighborhood structure is the
road graph.  This backend follows the same recipe over the repo's
network Laplacian:

* the speed field of slot ``t`` is modeled as
  ``x ~ N(μ_t, Q⁻¹)`` with sparse precision ``Q = αI + βL`` — α keeps
  the field anchored to the per-slot mean profile μ_t, β smooths along
  road adjacency (the MRF coupling);
* **fit** estimates μ_t as the per-slot historical mean and selects
  (α, β) by maximizing the exact Gaussian log-likelihood of the
  centered residuals over a small grid, using one eigendecomposition of
  ``L`` (``log det Q = Σ log(α + β λ_i)``) — the paper's ML hyperparameter
  estimation, made closed-form by the (αI + βL) parameterization.  For
  networks too large to eigendecompose densely the defaults are kept;
* **estimate** is the textbook GMRF conditional mean: with probes
  ``y_o`` on roads ``o`` and the rest ``u``, solve the sparse SPD system
  ``Q_uu δ_u = −Q_uo (y_o − μ_o)`` and return ``μ_u + δ_u``; probed
  roads keep their probes;
* **refresh** advances μ_t by exponential forgetting, leaving (α, β)
  and the cached precision matrix untouched (warm artifact cache).

State blob: per-slot mean fields + the two scalars — tiny, picklable,
copy-on-write friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve

from repro.backends.base import EstimatorBackend, arrays_digest
from repro.baselines.grmc import graph_laplacian
from repro.errors import BackendError, NotFittedError
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Deadline

#: Above this road count the ML grid search (dense eigendecomposition of
#: L) is skipped and the default hyperparameters are used.
_MAX_EIG_ROADS = 1500

_ALPHA_GRID = (0.01, 0.05, 0.1, 0.5, 1.0)
_BETA_GRID = (0.01, 0.1, 0.5, 1.0, 2.0, 5.0)


def gmrf_conditional_mean(
    precision: sp.spmatrix,
    mu: np.ndarray,
    observed: np.ndarray,
    values: np.ndarray,
) -> np.ndarray:
    """Conditional mean of a GMRF given observed components.

    Sparse solve of ``Q_uu δ_u = −Q_uo (y_o − μ_o)``; observed entries
    are returned verbatim.  Shared by the backend and its reference
    tests.
    """
    n = mu.shape[0]
    field = np.array(mu, dtype=float, copy=True)
    if observed.size == 0:
        return field
    field[observed] = values
    if observed.size == n:
        return field
    mask = np.zeros(n, dtype=bool)
    mask[observed] = True
    unknown = np.nonzero(~mask)[0]
    q_csr = precision.tocsr()
    q_uu = q_csr[unknown][:, unknown].tocsc()
    q_uo = q_csr[unknown][:, observed]
    rhs = -q_uo @ (values - mu[observed])
    delta = spsolve(q_uu, rhs)
    field[unknown] = mu[unknown] + np.asarray(delta).ravel()
    return field


@dataclass(frozen=True)
class GMRFState:
    """Per-slot mean fields + precision hyperparameters (state blob)."""

    mu: Mapping[int, np.ndarray]
    alpha: float
    beta: float


class GMRFBackend(EstimatorBackend):
    """Gaussian-MRF field reconstruction over the road graph.

    Args:
        alpha: Default anchor weight (used when ML search is skipped).
        beta: Default smoothness weight.
        select_hyperparameters: Run the ML grid search in :meth:`fit`
            (skipped automatically above ``_MAX_EIG_ROADS`` roads).
    """

    name = "gmrf"

    def __init__(
        self,
        network: TrafficNetwork,
        alpha: float = 0.1,
        beta: float = 1.0,
        select_hyperparameters: bool = True,
    ) -> None:
        super().__init__(network)
        if alpha <= 0 or beta < 0:
            raise BackendError("alpha must be > 0 and beta >= 0")
        self._alpha = float(alpha)
        self._beta = float(beta)
        self._select = bool(select_hyperparameters)
        self._laplacian = graph_laplacian(network).tocsr()

    def _fit(self, history: SpeedHistory, slots: Sequence[int]) -> GMRFState:
        n = self._network.n_roads
        mu: Dict[int, np.ndarray] = {}
        residuals = []
        for slot in slots:
            samples = np.asarray(history.slot_samples(slot), dtype=float)
            if samples.shape[1] != n:
                raise BackendError(
                    f"backend {self.name!r}: history covers {samples.shape[1]} "
                    f"roads, network has {n}"
                )
            mean = samples.mean(axis=0)
            mu[int(slot)] = mean
            residuals.append(samples - mean[None, :])
        alpha, beta = self._alpha, self._beta
        if self._select and n <= _MAX_EIG_ROADS:
            alpha, beta = self._ml_hyperparameters(np.vstack(residuals))
        return GMRFState(mu=mu, alpha=alpha, beta=beta)

    def _ml_hyperparameters(self, residuals: np.ndarray) -> Tuple[float, float]:
        """Grid-maximize the exact Gaussian log-likelihood of residuals.

        With ``Q = αI + βL = E diag(α + βλ) Eᵀ`` the two sufficient
        statistics are ``Σ‖r‖²`` and ``Σ rᵀLr``; each grid point is then
        O(n), so the whole search costs one eigendecomposition.
        """
        eigenvalues = np.linalg.eigvalsh(self._laplacian.toarray())
        eigenvalues = np.maximum(eigenvalues, 0.0)
        d = residuals.shape[0]
        sum_sq = float(np.sum(residuals * residuals))
        sum_lap = float(
            np.sum(residuals * (self._laplacian @ residuals.T).T)
        )
        best = (self._alpha, self._beta)
        best_ll = -np.inf
        for alpha in _ALPHA_GRID:
            for beta in _BETA_GRID:
                spectrum = alpha + beta * eigenvalues
                log_det = float(np.sum(np.log(spectrum)))
                ll = 0.5 * d * log_det - 0.5 * (
                    alpha * sum_sq + beta * sum_lap
                )
                if ll > best_ll:
                    best_ll = ll
                    best = (float(alpha), float(beta))
        return best

    def _refresh(
        self,
        state: object,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float,
    ) -> GMRFState:
        gmrf = self._state_of(state)
        updated = dict(gmrf.mu)
        touched = False
        for slot, sample in day_samples.items():
            prior = updated.get(int(slot))
            if prior is None:
                continue
            speeds = np.asarray(sample, dtype=float).ravel()
            if speeds.shape[0] != prior.shape[0]:
                raise BackendError(
                    f"backend {self.name!r}: day sample for slot {slot} has "
                    f"{speeds.shape[0]} roads, state has {prior.shape[0]}"
                )
            updated[int(slot)] = (
                (1.0 - learning_rate) * prior + learning_rate * speeds
            )
            touched = True
        if not touched:
            return gmrf
        return GMRFState(mu=updated, alpha=gmrf.alpha, beta=gmrf.beta)

    def _estimate(
        self,
        state: object,
        probes: Dict[int, float],
        slot: int,
        deadline: Optional["Deadline"],
    ) -> Tuple[np.ndarray, Mapping[str, object]]:
        gmrf = self._state_of(state)
        mu = gmrf.mu.get(slot)
        if mu is None:
            raise NotFittedError(
                f"backend {self.name!r}: slot {slot} not fitted "
                f"(available: {sorted(gmrf.mu)})"
            )
        precision = self.precision_matrix(gmrf)
        observed = np.array(sorted(probes), dtype=int)
        values = np.array([probes[int(r)] for r in observed])
        field = gmrf_conditional_mean(precision, mu, observed, values)
        field = np.maximum(field, 0.5)
        return field, {
            "alpha": gmrf.alpha,
            "beta": gmrf.beta,
            "observed": int(observed.size),
        }

    def precision_matrix(self, state: "GMRFState") -> sp.spmatrix:
        """The sparse precision ``Q = αI + βL`` (artifact-cached)."""
        gmrf = self._state_of(state)
        n = self._network.n_roads
        digest = arrays_digest(gmrf.alpha, gmrf.beta, n)
        return self.derived(
            "precision",
            digest,
            lambda: (
                gmrf.alpha * sp.identity(n, format="csr")
                + gmrf.beta * self._laplacian
            ).tocsr(),
        )

    def _state_of(self, state: object) -> GMRFState:
        if not isinstance(state, GMRFState):
            raise BackendError(
                f"backend {self.name!r} expected GMRFState, got "
                f"{type(state).__name__}"
            )
        return state
