"""LSM-RN-style latent-space backend (arXiv:1602.04301, adapted).

LSM-RN models time-varying road-network speeds in a low-dimensional
latent space learned with graph-regularized non-negative matrix
factorization, refreshed online by incremental latent-factor updates
instead of global re-learning.  This backend adapts that recipe to the
repo's per-slot speed histories:

* **Global learning (fit)** — stack every fitted slot's
  ``(n_days, n_roads)`` sample matrix into one non-negative matrix
  ``Y`` and factorize ``Y ≈ W Vᵀ`` with multiplicative GNMF updates
  (:func:`gnmf_multiplicative_step`): road factors ``V ≥ 0`` are
  smoothed along the road graph via the adjacency/degree pair — the
  same graph-Laplacian regularizer LSM-RN applies to its latent
  attributes — and ``W`` holds one latent weight per observed day.
  Each slot keeps the mean of its days' weights as its latent profile.
* **Incremental update (refresh)** — with ``V`` fixed, a new day's
  speeds yield a closed-form ridge solve for that day's latent weight,
  blended into the slot profile with exponential forgetting.  This is
  the paper's "incremental latent-position update" shape: cheap, local,
  and it leaves the expensive global factors untouched.
* **Online estimation (estimate)** — given sparse probes, solve for the
  current latent weight from the probed rows of ``V`` with the slot
  profile as a ridge prior, then decode the full field ``V u``.  Probed
  roads keep their probes.

The state blob is ``(V, slot profiles, digest)`` — plain arrays,
picklable, versioned copy-on-write by the ModelStore like every other
backend state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.backends.base import EstimatorBackend, arrays_digest
from repro.errors import BackendError, NotFittedError
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Deadline

_EPS = 1e-9


def road_adjacency(network: TrafficNetwork) -> sp.csr_matrix:
    """Symmetric 0/1 adjacency of the road graph (GNMF smoother)."""
    n = network.n_roads
    if not network.edges:
        return sp.csr_matrix((n, n))
    ei, ej = np.array(network.edges).T
    rows = np.concatenate([ei, ej])
    cols = np.concatenate([ej, ei])
    data = np.ones(rows.shape[0])
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def gnmf_multiplicative_step(
    matrix: np.ndarray,
    day_factors: np.ndarray,
    road_factors: np.ndarray,
    adjacency: sp.csr_matrix,
    degrees: np.ndarray,
    gamma: float,
    reg: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """One multiplicative GNMF round: update ``W`` then ``V``.

    Minimizes ``‖Y − W Vᵀ‖² + γ tr(Vᵀ L V) + λ(‖W‖² + ‖V‖²)`` with the
    classic non-negative multiplicative rules (Cai et al. GNMF — the
    update family LSM-RN's solver belongs to).  Factors stay
    non-negative when initialized non-negative.
    """
    numer_w = matrix @ road_factors
    denom_w = (
        day_factors @ (road_factors.T @ road_factors)
        + reg * day_factors
        + _EPS
    )
    day_factors = day_factors * (numer_w / denom_w)

    numer_v = matrix.T @ day_factors + gamma * (adjacency @ road_factors)
    denom_v = (
        road_factors @ (day_factors.T @ day_factors)
        + gamma * degrees[:, None] * road_factors
        + reg * road_factors
        + _EPS
    )
    road_factors = road_factors * (numer_v / denom_v)
    return day_factors, road_factors


def gnmf_objective(
    matrix: np.ndarray,
    day_factors: np.ndarray,
    road_factors: np.ndarray,
    laplacian: sp.csr_matrix,
    gamma: float,
    reg: float,
) -> float:
    """The GNMF objective value (reference/diagnostics)."""
    residual = matrix - day_factors @ road_factors.T
    smooth = float(np.sum(road_factors * (laplacian @ road_factors)))
    return (
        float(np.sum(residual * residual))
        + gamma * smooth
        + reg * (float(np.sum(day_factors**2)) + float(np.sum(road_factors**2)))
    )


@dataclass(frozen=True)
class LSMRNState:
    """Latent road factors + per-slot latent profiles (state blob)."""

    road_factors: np.ndarray
    slot_weights: Mapping[int, np.ndarray]
    factors_digest: bytes


class LSMRNBackend(EstimatorBackend):
    """Latent-space estimator in the LSM-RN family.

    Args:
        rank: Latent dimension.
        n_iterations: Multiplicative update rounds in :meth:`fit`.
        gamma: Graph-smoothness weight on the road factors.
        reg: Frobenius regularization λ.
        ridge: Prior strength tying the online latent weight to the
            slot profile (η in the ridge solve).
        seed: RNG seed for the non-negative factor initialization.
    """

    name = "lsmrn"

    def __init__(
        self,
        network: TrafficNetwork,
        rank: int = 12,
        n_iterations: int = 60,
        gamma: float = 0.5,
        reg: float = 0.05,
        ridge: float = 1.0,
        seed: int = 13,
    ) -> None:
        super().__init__(network)
        if rank <= 0 or n_iterations <= 0:
            raise BackendError("rank and n_iterations must be positive")
        if gamma < 0 or reg < 0 or ridge <= 0:
            raise BackendError("gamma/reg must be >= 0 and ridge > 0")
        self._rank = int(rank)
        self._n_iterations = int(n_iterations)
        self._gamma = float(gamma)
        self._reg = float(reg)
        self._ridge = float(ridge)
        self._seed = int(seed)

    def _fit(self, history: SpeedHistory, slots: Sequence[int]) -> LSMRNState:
        n = self._network.n_roads
        blocks = []
        ranges: Dict[int, Tuple[int, int]] = {}
        row = 0
        for slot in slots:
            block = np.asarray(history.slot_samples(slot), dtype=float)
            if block.shape[1] != n:
                raise BackendError(
                    f"backend {self.name!r}: history covers {block.shape[1]} "
                    f"roads, network has {n}"
                )
            blocks.append(np.maximum(block, _EPS))
            ranges[int(slot)] = (row, row + block.shape[0])
            row += block.shape[0]
        matrix = np.vstack(blocks)

        rank = min(self._rank, matrix.shape[0], n)
        rng = np.random.default_rng(self._seed)
        scale = np.sqrt(max(float(matrix.mean()), _EPS) / rank)
        day_factors = rng.uniform(0.5, 1.5, size=(matrix.shape[0], rank)) * scale
        road_factors = rng.uniform(0.5, 1.5, size=(n, rank)) * scale

        adjacency = road_adjacency(self._network)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        for _ in range(self._n_iterations):
            day_factors, road_factors = gnmf_multiplicative_step(
                matrix, day_factors, road_factors, adjacency, degrees,
                self._gamma, self._reg,
            )

        slot_weights = {
            slot: day_factors[lo:hi].mean(axis=0)
            for slot, (lo, hi) in ranges.items()
        }
        return LSMRNState(
            road_factors=road_factors,
            slot_weights=slot_weights,
            factors_digest=arrays_digest(road_factors),
        )

    def _refresh(
        self,
        state: object,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float,
    ) -> LSMRNState:
        lsm = self._state_of(state)
        factors = lsm.road_factors
        rank = factors.shape[1]
        updated = dict(lsm.slot_weights)
        # Full-observation gram is shared across slots and refreshes
        # (V is fixed); route it through the store's artifact cache.
        gram = self.derived(
            "gram",
            lsm.factors_digest,
            lambda: factors.T @ factors + self._ridge * np.eye(rank),
        )
        touched = False
        for slot, sample in day_samples.items():
            prior = updated.get(int(slot))
            if prior is None:
                continue
            speeds = np.asarray(sample, dtype=float).ravel()
            if speeds.shape[0] != factors.shape[0]:
                raise BackendError(
                    f"backend {self.name!r}: day sample for slot {slot} has "
                    f"{speeds.shape[0]} roads, factors have {factors.shape[0]}"
                )
            rhs = factors.T @ speeds + self._ridge * prior
            day_weight = np.linalg.solve(gram, rhs)
            updated[int(slot)] = (
                (1.0 - learning_rate) * prior + learning_rate * day_weight
            )
            touched = True
        if not touched:
            return lsm
        return LSMRNState(
            road_factors=factors,
            slot_weights=updated,
            factors_digest=lsm.factors_digest,
        )

    def _estimate(
        self,
        state: object,
        probes: Dict[int, float],
        slot: int,
        deadline: Optional["Deadline"],
    ) -> Tuple[np.ndarray, Mapping[str, object]]:
        lsm = self._state_of(state)
        prior = lsm.slot_weights.get(slot)
        if prior is None:
            raise NotFittedError(
                f"backend {self.name!r}: slot {slot} not fitted "
                f"(available: {sorted(lsm.slot_weights)})"
            )
        factors = lsm.road_factors
        rank = factors.shape[1]
        observed = np.array(sorted(probes), dtype=int)
        residual = 0.0
        if observed.size:
            values = np.array([probes[int(r)] for r in observed])
            v_obs = factors[observed]
            lhs = v_obs.T @ v_obs + self._ridge * np.eye(rank)
            rhs = v_obs.T @ values + self._ridge * prior
            weight = np.linalg.solve(lhs, rhs)
            residual = float(
                np.sqrt(np.mean((v_obs @ weight - values) ** 2))
            )
        else:
            weight = np.asarray(prior, dtype=float)
        field = factors @ weight
        if observed.size:
            field[observed] = values
        field = np.maximum(field, 0.5)
        return field, {
            "rank": int(rank),
            "observed": int(observed.size),
            "probe_rmse": residual,
        }

    def _state_of(self, state: object) -> LSMRNState:
        if not isinstance(state, LSMRNState):
            raise BackendError(
                f"backend {self.name!r} expected LSMRNState, got "
                f"{type(state).__name__}"
            )
        return state
