"""Backend registry: estimator backends addressable by name.

The serving layer, CLI, and experiments select backends by the names
registered here.  A factory is any ``network -> EstimatorBackend``
callable; :func:`create_backend` instantiates one per system and checks
that the instance answers to the name it was registered under (metric
labels, coalescing keys, and snapshot state blobs are all keyed by that
name, so a mismatch would silently cross wires).

The built-in backends (``rtf_gsp``, ``per``, ``lasso``, ``grmc``,
``lsmrn``, ``gmrf``) are registered when :mod:`repro.backends` is
imported; library users add their own with :func:`register_backend`.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, Tuple

from repro.backends.base import EstimatorBackend
from repro.errors import BackendError
from repro.network.graph import TrafficNetwork

#: Factory signature: bind the backend's stateless math to one network.
BackendFactory = Callable[[TrafficNetwork], EstimatorBackend]

#: The paper's estimator; the serving default and the frozen-v1 path.
DEFAULT_BACKEND = "rtf_gsp"

_NAME_RE = re.compile(r"[a-z][a-z0-9_]*\Z")

_registry_lock = threading.Lock()
_registry: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Args:
        name: Lowercase identifier (``[a-z][a-z0-9_]*``).
        factory: ``network -> EstimatorBackend`` callable.
        replace: Allow overwriting an existing registration; without it
            a duplicate name raises :class:`~repro.errors.BackendError`
            (two libraries silently fighting over one name is a bug).
    """
    if not isinstance(name, str) or _NAME_RE.match(name) is None:
        raise BackendError(
            f"invalid backend name {name!r}: expected a lowercase "
            "identifier matching [a-z][a-z0-9_]*"
        )
    if not callable(factory):
        raise BackendError(f"backend factory for {name!r} is not callable")
    with _registry_lock:
        if name in _registry and not replace:
            raise BackendError(
                f"backend {name!r} is already registered; pass replace=True "
                "to overwrite it deliberately"
            )
        _registry[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registration (testing hook; unknown names raise)."""
    with _registry_lock:
        if name not in _registry:
            raise BackendError(f"backend {name!r} is not registered")
        del _registry[name]


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    with _registry_lock:
        return tuple(sorted(_registry))


def create_backend(name: str, network: TrafficNetwork) -> EstimatorBackend:
    """Instantiate the backend registered under ``name`` for ``network``.

    Raises:
        BackendError: For unknown names, or when the factory produces an
            instance whose ``.name`` differs from the registered name.
    """
    with _registry_lock:
        factory = _registry.get(name)
    if factory is None:
        raise BackendError(
            f"unknown backend {name!r}; registered backends: "
            f"{list(available_backends())}"
        )
    backend = factory(network)
    if backend.name != name:
        raise BackendError(
            f"factory registered as {name!r} produced a backend named "
            f"{backend.name!r}; registry name and instance name must match"
        )
    return backend
