"""The paper's RTF+GSP estimator as a pluggable backend.

Thin adapter over the pieces :class:`~repro.core.pipeline.CrowdRTSE`
already uses: :func:`~repro.core.inference.fit_rtf` for the offline
stage, :func:`~repro.core.online_update.refresh_slots` for the daily
refresh, and a private :class:`~repro.core.gsp.GSPEngine` for the
online propagation.  The state blob is simply the per-slot
:class:`~repro.core.rtf.RTFSlot` parameters — the same objects a
:class:`~repro.core.store.ModelSnapshot` versions natively — so
attaching this backend duplicates no model weight.

The serving default path does **not** go through this adapter:
``backend="rtf_gsp"`` requests take the original pinned-snapshot
pipeline (bit-identical to pre-backend builds).  The adapter exists so
the protocol covers the reference estimator too — differential tests
pin the two paths against each other, and shadow mode can score any
challenger against rtf_gsp through one interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import EstimatorBackend
from repro.core.gsp import GSPConfig, GSPEngine
from repro.core.inference import fit_rtf
from repro.core.online_update import refresh_slots
from repro.core.rtf import RTFSlot
from repro.errors import BackendError, NotFittedError
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Deadline


@dataclass(frozen=True)
class RTFGSPState:
    """Fitted RTF parameters per global slot (the backend state blob)."""

    params: Mapping[int, RTFSlot]


class RTFGSPBackend(EstimatorBackend):
    """RTF model + GSP propagation behind the backend protocol."""

    name = "rtf_gsp"

    def __init__(
        self,
        network: TrafficNetwork,
        gsp_config: Optional[GSPConfig] = None,
    ) -> None:
        super().__init__(network)
        # Own engine: cached CSR structures and schedules are keyed by
        # parameter digest, so repeated estimates stay warm across
        # refreshes exactly like the native pipeline engine.
        self._engine = GSPEngine(network)
        self._gsp_config = gsp_config

    def _fit(self, history: SpeedHistory, slots: Sequence[int]) -> RTFGSPState:
        model, _diagnostics = fit_rtf(self._network, history, slots)
        return RTFGSPState({t: model.slot(t) for t in model.slots})

    def _refresh(
        self,
        state: object,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float,
    ) -> RTFGSPState:
        rtf_state = self._state_of(state)
        current = dict(rtf_state.params)
        touched = {t: v for t, v in day_samples.items() if t in current}
        if not touched:
            return rtf_state
        for slot_params in refresh_slots(
            self._network, current, touched, learning_rate
        ):
            current[slot_params.slot] = slot_params
        return RTFGSPState(current)

    def _estimate(
        self,
        state: object,
        probes: Dict[int, float],
        slot: int,
        deadline: Optional["Deadline"],
    ) -> Tuple[np.ndarray, Mapping[str, object]]:
        rtf_state = self._state_of(state)
        params = rtf_state.params.get(slot)
        if params is None:
            raise NotFittedError(
                f"backend {self.name!r}: slot {slot} not fitted "
                f"(available: {sorted(rtf_state.params)})"
            )
        result = self._engine.propagate(params, probes, self._gsp_config)
        return result.speeds, {
            "sweeps": result.sweeps,
            "converged": result.converged,
        }

    def _state_of(self, state: object) -> RTFGSPState:
        if not isinstance(state, RTFGSPState):
            raise BackendError(
                f"backend {self.name!r} expected RTFGSPState, got "
                f"{type(state).__name__}"
            )
        return state
