"""Table II — dataset statistics.

Regenerates the paper's dataset summary: |R^w|, |R^q|, road-cost range,
budget range and θ per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentScale,
    default_gmission,
    default_semisyn,
    format_rows,
)


@dataclass(frozen=True)
class Table2Row:
    """One dataset's statistics row."""

    dataset: str
    n_roads: int
    n_worker_roads: int
    n_queried: int
    cost_range: Tuple[int, int]
    budget_range: Tuple[int, int]
    theta: float
    n_train_records: int


def run(scale: ExperimentScale = ExperimentScale.PAPER) -> List[Table2Row]:
    """Compute the Table II statistics for both datasets."""
    rows: List[Table2Row] = []
    for data in (default_semisyn(scale), default_gmission(scale)):
        rows.append(
            Table2Row(
                dataset=data.name,
                n_roads=data.n_roads,
                n_worker_roads=len(data.worker_roads),
                n_queried=len(data.queried),
                cost_range=data.cost_model.cost_range,
                budget_range=(min(data.budgets), max(data.budgets)),
                theta=data.theta,
                n_train_records=data.train_history.n_records,
            )
        )
    return rows


def format_table(rows: List[Table2Row]) -> str:
    """Render the rows like the paper's Table II."""
    header = ["dataset", "|R|", "|R^w|", "|R^q|", "cost", "K", "theta", "records"]
    body = [
        [
            r.dataset,
            r.n_roads,
            r.n_worker_roads,
            r.n_queried,
            f"{r.cost_range[0]}~{r.cost_range[1]}",
            f"{r.budget_range[0]}~{r.budget_range[1]}",
            r.theta,
            r.n_train_records,
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print Table II."""
    print("Table II: dataset statistics")
    print(format_table(run()))


if __name__ == "__main__":
    main()
