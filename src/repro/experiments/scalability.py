"""Network-size scalability of the online stage (extension of Fig. 4).

The paper's Fig. 4 sweeps the *budget*; a deployment also needs to know
how the online stage scales with the *network size*.  This experiment
grows connected subcomponents of the city and times each online step —
OCS solve, GSP propagation, exact sparse solve — plus the offline Γ_R
build, at a fixed budget.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.correlation import CorrelationTable
from repro.core.exact_inference import exact_conditional_mean
from repro.core.gsp import GSPConfig, GSPEngine, GSPKernel, GSPSchedule
from repro.core.inference import fit_rtf
from repro.core.ocs import OCSInstance, hybrid_greedy
from repro.experiments.common import ExperimentScale, default_semisyn, format_rows

#: Subcomponent sizes per scale.
PAPER_SIZES = (150, 300, 450, 600)
QUICK_SIZES = (40, 80, 120)


@dataclass(frozen=True)
class ScalabilityPoint:
    """Timings for one subnetwork size (seconds)."""

    n_roads: int
    gamma_build_s: float
    ocs_s: float
    gsp_s: float
    gsp_vectorized_s: float
    exact_solve_s: float
    gsp_sweeps: int


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    sizes: Sequence[int] = (),
    budget: int = 30,
    seed: int = 7,
) -> List[ScalabilityPoint]:
    """Time the online stage on growing subcomponents.

    Args:
        scale: Experiment sizing (chooses the source network).
        sizes: Explicit subnetwork sizes (defaults per scale).
        budget: OCS budget at every size.
        seed: Query sampling seed.
    """
    data = default_semisyn(scale)
    if not sizes:
        sizes = PAPER_SIZES if scale is ExperimentScale.PAPER else QUICK_SIZES
    rng = np.random.default_rng(seed)
    points: List[ScalabilityPoint] = []
    for size in sizes:
        subnetwork = data.network.connected_subcomponent(size)
        history = data.train_history.restrict_roads(subnetwork)
        model, _ = fit_rtf(subnetwork, history, slots=[data.slot])
        params = model.slot(data.slot)

        start = time.perf_counter()
        table = CorrelationTable.precompute(model)
        gamma_s = time.perf_counter() - start

        n_queried = max(5, size // 10)
        queried = tuple(
            sorted(int(r) for r in rng.choice(size, n_queried, replace=False))
        )
        instance = OCSInstance(
            queried=queried,
            candidates=tuple(range(size)),
            costs=np.ones(size),
            budget=float(budget),
            theta=0.92,
            corr=table.matrix(data.slot),
            sigma=params.sigma,
        )
        start = time.perf_counter()
        selection = hybrid_greedy(instance)
        ocs_s = time.perf_counter() - start

        observed = {
            int(road): float(params.mu[road] * 0.8) for road in selection.selected
        }
        engine = GSPEngine(subnetwork)
        start = time.perf_counter()
        gsp = engine.propagate(params, observed, GSPConfig())
        gsp_s = time.perf_counter() - start

        # The vectorized kernel, timed warm: structures are compiled on a
        # throwaway run first, so this measures the steady-state cost a
        # serving deployment pays per query.
        vec_config = GSPConfig(
            schedule=GSPSchedule.BFS_COLORED, kernel=GSPKernel.VECTORIZED
        )
        engine.propagate(params, observed, vec_config)
        start = time.perf_counter()
        engine.propagate(params, observed, vec_config)
        gsp_vec_s = time.perf_counter() - start

        start = time.perf_counter()
        exact_conditional_mean(subnetwork, params, observed)
        exact_s = time.perf_counter() - start

        points.append(
            ScalabilityPoint(
                n_roads=size,
                gamma_build_s=gamma_s,
                ocs_s=ocs_s,
                gsp_s=gsp_s,
                gsp_vectorized_s=gsp_vec_s,
                exact_solve_s=exact_s,
                gsp_sweeps=gsp.sweeps,
            )
        )
    return points


def format_table(points: Sequence[ScalabilityPoint]) -> str:
    """Render the scalability table."""
    header = [
        "|R|", "gamma build", "OCS", "GSP", "GSP (vec)", "exact solve", "GSP sweeps",
    ]
    body = [
        [
            p.n_roads,
            f"{p.gamma_build_s:.4f}s",
            f"{p.ocs_s:.4f}s",
            f"{p.gsp_s:.4f}s",
            f"{p.gsp_vectorized_s:.4f}s",
            f"{p.exact_solve_s:.4f}s",
            p.gsp_sweeps,
        ]
        for p in points
    ]
    return format_rows(header, body)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry: print the scalability table.

    ``argv`` defaults to *no* arguments (not ``sys.argv``) because the
    ``repro experiment`` dispatcher calls ``main()`` with its own CLI
    flags still on ``sys.argv``.
    """
    parser = argparse.ArgumentParser(description="online-stage scalability")
    parser.add_argument("--scale", choices=("quick", "paper"), default="paper")
    parser.add_argument(
        "--metrics-out", default=None, help="write the metrics snapshot JSON here"
    )
    args = parser.parse_args(argv if argv is not None else [])
    if args.metrics_out:
        obs.configure(metrics=True)
        obs.get_metrics().reset()
    print("Online-stage scalability vs network size (budget fixed)")
    print(format_table(run(ExperimentScale(args.scale))))
    if args.metrics_out:
        obs.write_metrics_json(obs.get_metrics().snapshot(), args.metrics_out)


if __name__ == "__main__":
    main(sys.argv[1:])
