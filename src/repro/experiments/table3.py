"""Table III — 1-hop and 2-hop coverage of the queried roads.

For each budget K and selection strategy (OBJ / Rand / Hybrid), count
how many queried roads lie within 1 and 2 hops of the selected
crowdsourced roads.  Paper finding: Hybrid covers the most queried
roads at every budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.ocs import hybrid_greedy, objective_greedy, random_selection
from repro.eval.coverage import k_hop_coverage
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
    ocs_instance_for,
)

_STRATEGIES = ("OBJ", "Rand", "Hybrid")


@dataclass(frozen=True)
class Table3Row:
    """Coverage of one (strategy, budget) pair."""

    strategy: str
    budget: int
    one_hop: int
    two_hop: int
    n_queried: int


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    random_trials: int = 5,
) -> List[Table3Row]:
    """Compute Table III.

    The random strategy is averaged over ``random_trials`` draws
    (rounded to integers like the paper's counts).
    """
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    rows: List[Table3Row] = []
    for budget in data.budgets:
        instance = ocs_instance_for(data, system, budget)
        for strategy in _STRATEGIES:
            if strategy == "OBJ":
                selections = [objective_greedy(instance).selected]
            elif strategy == "Hybrid":
                selections = [hybrid_greedy(instance).selected]
            else:
                selections = [
                    random_selection(
                        instance, rng=np.random.default_rng(100 + trial)
                    ).selected
                    for trial in range(random_trials)
                ]
            one = int(
                round(
                    float(
                        np.mean(
                            [
                                k_hop_coverage(data.network, sel, data.queried, 1)
                                for sel in selections
                            ]
                        )
                    )
                )
            )
            two = int(
                round(
                    float(
                        np.mean(
                            [
                                k_hop_coverage(data.network, sel, data.queried, 2)
                                for sel in selections
                            ]
                        )
                    )
                )
            )
            rows.append(
                Table3Row(
                    strategy=strategy,
                    budget=int(budget),
                    one_hop=one,
                    two_hop=two,
                    n_queried=len(data.queried),
                )
            )
    return rows


def format_table(rows: List[Table3Row]) -> str:
    """Render like the paper: '1-hop / 2-hop' per (strategy, K)."""
    budgets = sorted({r.budget for r in rows})
    header = ["strategy"] + [f"K={k}" for k in budgets]
    by_key = {(r.strategy, r.budget): r for r in rows}
    body = []
    for strategy in _STRATEGIES:
        line = [strategy]
        for k in budgets:
            r = by_key[(strategy, k)]
            line.append(f"{r.one_hop} / {r.two_hop}")
        body.append(line)
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print Table III."""
    print("Table III: 1-hop and 2-hop coverage of the queried roads")
    print(format_table(run()))


if __name__ == "__main__":
    main()
