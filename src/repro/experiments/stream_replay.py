"""Day-replay study: static vs nightly vs continuous (streaming) refresh.

:mod:`repro.experiments.daily_refresh` showed that absorbing each test
day *after* serving it beats a frozen model.  This experiment closes the
remaining gap to the paper's realtime framing by comparing three refresh
policies over the same replayed days:

* **static** — frozen at the offline fit;
* **nightly** — absorbs each day's full speed field in one batch at the
  end of the day (the ``repro refresh`` policy);
* **continuous** — consumes the day as a synthesized probe feed through
  :class:`~repro.stream.refresher.StreamRefresher` (overlapping
  snapshots, dedup, watermark closes, bounded publishes) while a
  :class:`~repro.serve.service.QueryService` keeps answering queries
  from pinned snapshots mid-stream.

Accuracy is the per-slot μ-field MAPE against the day's ground truth.
Freshness is *event-time* publish lag: how far behind the stream's own
clock a slot's parameters were published — minutes for the continuous
policy (the lateness horizon plus queueing) versus hours for nightly
(end of day minus slot end).  Throughput (events/sec through the
refresher while serving) is reported per day.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.pipeline import CrowdRTSE
from repro.core.store import ModelSnapshot, ModelStore
from repro.datasets import truth_oracle_for
from repro.errors import ExperimentError
from repro.eval.metrics import mean_absolute_percentage_error
from repro.traffic.history import SpeedHistory
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    format_rows,
    market_for,
)
from repro.serve import QueryService, ServeConfig, ServeRequest
from repro.stream import (
    StreamConfig,
    StreamRefresher,
    slot_end_ts,
    slot_start_ts,
    synthesize_day_feed,
)


@dataclass(frozen=True)
class StreamReplayRow:
    """One replayed day of the three-policy comparison."""

    day: int
    events: int
    events_per_s: float
    duplicates: int
    late: int
    static_mape: float
    nightly_mape: float
    continuous_mape: float
    continuous_version: int
    publishes: int
    continuous_lag_s: float
    nightly_lag_s: float
    queries_served: int


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    learning_rate: float = 0.3,
    lateness_s: float = 60.0,
    coverage: float = 0.6,
    queries_per_day: int = 2,
    budget: float = 30.0,
    drift_factor: float = 0.8,
    seed: int = 17,
) -> List[StreamReplayRow]:
    """Replay every test day under the three refresh policies.

    All three policies start from the same offline fit.  Each day is
    first *evaluated* (μ-field MAPE per fitted slot, before any of that
    day's data is absorbed), then *absorbed*: nightly as one full-field
    batch, continuous as a probe feed streamed through the refresher
    with concurrent :class:`QueryService` clients.

    Between the training crawl and the replayed period the world shifts
    regime: every replayed speed is scaled by ``drift_factor`` (the
    roadworks/seasonal-drift scenario online updating exists for, per
    :mod:`repro.core.online_update`).  A frozen model is permanently
    biased; the refresh policies converge to the new regime at a rate
    set by ``learning_rate``.  ``drift_factor=1.0`` disables the shift —
    the world is then stationary and staying frozen is near-optimal.
    """
    data = default_semisyn(scale)
    n_fitted = 3 if scale is ExperimentScale.QUICK else 6
    all_slots = list(data.train_history.global_slots)
    anchor = all_slots.index(data.slot)
    anchor = min(anchor, len(all_slots) - n_fitted)
    slots = all_slots[anchor:anchor + n_fitted]

    if not 0.0 < drift_factor <= 2.0:
        raise ExperimentError(
            f"drift_factor must be in (0, 2], got {drift_factor}"
        )
    replay_history = SpeedHistory(
        data.test_history.values * drift_factor,
        data.test_history.road_ids,
        data.test_history.slot_offset,
    )

    static = CrowdRTSE.fit(data.network, data.train_history, slots=slots)
    nightly = CrowdRTSE(data.network, store=ModelStore(static.model))
    continuous = CrowdRTSE(data.network, store=ModelStore(static.model))
    local: Dict[int, int] = {t: replay_history.local_slot(t) for t in slots}

    rows: List[StreamReplayRow] = []
    for day in range(replay_history.n_days):
        truth_day = replay_history.day(day)
        mapes = [
            _field_mape(system.store.current(), slots, local, truth_day)
            for system in (static, nightly, continuous)
        ]

        feed = synthesize_day_feed(
            replay_history,
            day,
            slots=slots,
            coverage=coverage,
            seed=seed + day,
        )
        events = sum(len(snapshot) for snapshot in feed)
        refresher = StreamRefresher(
            continuous,
            StreamConfig(lateness_s=lateness_s, learning_rate=learning_rate),
        )
        tickets = []
        served = 0
        with QueryService(
            continuous,
            market=market_for(data, seed=seed + day),
            truth=truth_oracle_for(replay_history, day, data.slot),
            config=ServeConfig(num_workers=2),
        ) as service:
            started = time.perf_counter()
            for index, snapshot in enumerate(feed):
                if queries_per_day and index % max(
                    1, len(feed) // max(1, queries_per_day)
                ) == 0 and len(tickets) < queries_per_day:
                    tickets.append(
                        service.submit(
                            ServeRequest(
                                queried=tuple(data.queried),
                                slot=data.slot,
                                budget=budget,
                                rng=np.random.default_rng(seed + day),
                            )
                        )
                    )
                refresher.ingest(snapshot)
            stats = refresher.close()
            elapsed = time.perf_counter() - started
            for ticket in tickets:
                result = ticket.result(timeout=30.0)
                if np.all(np.isfinite(result.estimates_kmh)):
                    served += 1
        nightly.refresh(
            {t: truth_day[local[t]] for t in slots}, learning_rate=learning_rate
        )
        continuous_lag = (
            float(np.mean(stats.lag_history)) if stats.lag_history else 0.0
        )
        nightly_lag = float(
            np.mean(
                [slot_start_ts(day + 1, 0) - slot_end_ts(day, t) for t in slots]
            )
        )
        rows.append(
            StreamReplayRow(
                day=day,
                events=events,
                events_per_s=events / max(elapsed, 1e-9),
                duplicates=refresher.log.duplicates,
                late=refresher.log.late,
                static_mape=mapes[0],
                nightly_mape=mapes[1],
                continuous_mape=mapes[2],
                continuous_version=continuous.store.version,
                publishes=stats.publishes,
                continuous_lag_s=continuous_lag,
                nightly_lag_s=nightly_lag,
                queries_served=served,
            )
        )
    return rows


def _field_mape(
    snapshot: ModelSnapshot,
    slots: Sequence[int],
    local: Dict[int, int],
    truth_day: np.ndarray,
) -> float:
    """Mean μ-field MAPE of one snapshot over the fitted slots."""
    return float(
        np.mean(
            [
                mean_absolute_percentage_error(
                    snapshot.slot(t).mu, truth_day[local[t]]
                )
                for t in slots
            ]
        )
    )


def format_table(rows: Sequence[StreamReplayRow]) -> str:
    """Render the replay: accuracy, freshness, and stream telemetry."""
    header = [
        "day",
        "events",
        "ev/s",
        "dup",
        "late",
        "static MAPE",
        "nightly MAPE",
        "continuous MAPE",
        "version",
        "publishes",
        "cont lag (s)",
        "nightly lag (s)",
        "served",
    ]
    body = [
        [
            r.day,
            r.events,
            f"{r.events_per_s:.0f}",
            r.duplicates,
            r.late,
            f"{r.static_mape:.4f}",
            f"{r.nightly_mape:.4f}",
            f"{r.continuous_mape:.4f}",
            r.continuous_version,
            r.publishes,
            f"{r.continuous_lag_s:.0f}",
            f"{r.nightly_lag_s:.0f}",
            r.queries_served,
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the three-policy day replay."""
    rows = run(ExperimentScale.PAPER)
    print("Static vs nightly vs continuous refresh (test-day replay)")
    print(format_table(rows))
    # Day 0 is evaluated before any policy has absorbed data, so the
    # refresh policies only separate from day 1 onward.
    tail = [r for r in rows if r.day > 0] or rows
    static = float(np.mean([r.static_mape for r in tail]))
    nightly = float(np.mean([r.nightly_mape for r in tail]))
    continuous = float(np.mean([r.continuous_mape for r in tail]))
    lag_c = float(np.mean([r.continuous_lag_s for r in tail]))
    lag_n = float(np.mean([r.nightly_lag_s for r in tail]))
    throughput = float(np.mean([r.events_per_s for r in rows]))
    print(
        f"mean MAPE (day>0): static {static:.4f}, nightly {nightly:.4f}, "
        f"continuous {continuous:.4f} "
        f"(continuous vs static {(static - continuous) / max(static, 1e-12) * 100:+.1f}%)"
    )
    print(
        f"freshness: continuous publishes {lag_c:.0f}s behind the stream, "
        f"nightly {lag_n:.0f}s; throughput {throughput:.0f} events/s "
        "with concurrent serving"
    )


if __name__ == "__main__":
    main()
