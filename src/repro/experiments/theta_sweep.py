"""θ sweep — where the redundancy constraint starts to matter.

Extends the paper's Fig. 3(e) study: under Hybrid selection with the
paper's θ ∈ {0.92, 1} the constraint rarely binds (the greedy objective
already avoids redundant picks), so this sweep pushes θ down until it
does, reporting the OCS objective, selection size and held-out MAPE per
θ.  Also exercises :func:`repro.eval.calibration.tune_theta`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.eval.calibration import ThetaCalibrationResult, tune_theta
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
)

#: Default sweep — wide enough that the lowest values visibly bind.
DEFAULT_THETAS = (0.5, 0.7, 0.8, 0.9, 0.92, 0.95, 1.0)


@dataclass(frozen=True)
class ThetaSweepRow:
    """One θ measurement."""

    theta: float
    mape: float
    objective: float
    n_selected: float
    is_best: bool


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    budget: int = 0,
    thetas: Sequence[float] = DEFAULT_THETAS,
    n_validation_days: int = 3,
) -> List[ThetaSweepRow]:
    """Sweep θ at the dataset's smallest budget (where it matters most).

    Args:
        scale: Experiment sizing.
        budget: Budget K; 0 means the dataset's smallest budget.
        thetas: Candidate θ values.
        n_validation_days: Held-out training days per candidate.
    """
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    use_budget = budget if budget > 0 else min(data.budgets)
    result: ThetaCalibrationResult = tune_theta(
        data,
        system,
        budget=use_budget,
        candidates=tuple(thetas),
        n_validation_days=n_validation_days,
    )
    return [
        ThetaSweepRow(
            theta=theta,
            mape=result.mape_by_theta[theta],
            objective=result.objective_by_theta[theta],
            n_selected=result.n_selected_by_theta[theta],
            is_best=(theta == result.best_theta),
        )
        for theta in thetas
    ]


def format_table(rows: List[ThetaSweepRow]) -> str:
    """Render the sweep."""
    header = ["theta", "MAPE", "OCS objective", "|R^c|", "best"]
    body = [
        [
            r.theta,
            f"{r.mape:.4f}",
            f"{r.objective:.2f}",
            f"{r.n_selected:.1f}",
            "*" if r.is_best else "",
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the θ sweep."""
    print("Theta sweep: redundancy threshold vs quality (smallest budget)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
