"""Ablation studies of the design choices called out in DESIGN.md §4.

Not figures from the paper — these quantify the impact of choices the
paper fixes implicitly:

* path-weight transform (exact ``-log ρ`` vs the paper's ``1/ρ``);
* GSP update schedule (BFS vs layer-parallel vs random vs index order);
* crowd answer aggregation (mean vs median vs trimmed mean);
* RTF inference initialization (empirical vs random).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.correlation import PathWeightMode, road_road_correlation_matrix
from repro.core.gsp import GSPConfig, GSPSchedule, propagate
from repro.core.inference import RTFInferenceConfig, infer_slot_parameters
from repro.core.request import EstimationRequest
from repro.crowd.aggregation import Aggregator
from repro.crowd.market import CrowdMarket
from repro.datasets import truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
    market_for,
)


@dataclass(frozen=True)
class AblationRow:
    """One ablation measurement."""

    study: str
    variant: str
    metric: str
    value: float


def path_weight_ablation(
    scale: ExperimentScale = ExperimentScale.QUICK,
) -> List[AblationRow]:
    """Exact vs reciprocal path weights: how far apart are the Γ tables?

    Reports the max and mean absolute difference between the two
    all-pairs correlation matrices, and the fraction of pairs whose
    chosen path differs enough to change the correlation by > 1%.
    """
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    rho = system.model.slot(data.slot).rho
    exact = road_road_correlation_matrix(data.network, rho, PathWeightMode.LOG)
    paper = road_road_correlation_matrix(data.network, rho, PathWeightMode.RECIPROCAL)
    diff = np.abs(exact - paper)
    return [
        AblationRow("path-weights", "max |Δcorr|", "corr", float(diff.max())),
        AblationRow("path-weights", "mean |Δcorr|", "corr", float(diff.mean())),
        AblationRow(
            "path-weights",
            "pairs with Δ>0.01",
            "fraction",
            float((diff > 0.01).mean()),
        ),
        AblationRow(
            "path-weights",
            "exact >= paper (should be ~1)",
            "fraction",
            float((exact >= paper - 1e-9).mean()),
        ),
    ]


def gsp_schedule_ablation(
    scale: ExperimentScale = ExperimentScale.QUICK,
    budget: int = 30,
) -> List[AblationRow]:
    """Sweeps-to-convergence and quality per GSP schedule."""
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    market = market_for(data, seed=5)
    truth = truth_oracle_for(data.test_history, 0, data.slot)
    base = system.answer_query(
        EstimationRequest(
            queried=data.queried, slot=data.slot, budget=budget, warm_start=False
        ),
        market=market,
        truth=truth,
    )
    params = system.model.slot(data.slot)
    truths = np.array([truth(int(q)) for q in data.queried])
    rows: List[AblationRow] = []
    for schedule in GSPSchedule:
        result = propagate(
            data.network,
            params,
            base.probes,
            GSPConfig(schedule=schedule, seed=3),
        )
        mape = mean_absolute_percentage_error(
            result.speeds[list(data.queried)], truths
        )
        rows.append(
            AblationRow("gsp-schedule", schedule.value, "sweeps", float(result.sweeps))
        )
        rows.append(AblationRow("gsp-schedule", schedule.value, "MAPE", mape))
    return rows


def aggregation_ablation(
    scale: ExperimentScale = ExperimentScale.QUICK,
    budget: int = 30,
    n_trials: int = 4,
) -> List[AblationRow]:
    """Probe-accuracy per aggregation rule (mean/median/trimmed)."""
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    rows: List[AblationRow] = []
    for aggregator in Aggregator:
        errors: List[float] = []
        for trial in range(n_trials):
            market = CrowdMarket(
                data.network,
                data.pool,
                data.cost_model,
                aggregator=aggregator,
                rng=np.random.default_rng(50 + trial),
            )
            truth = truth_oracle_for(
                data.test_history, trial % data.test_history.n_days, data.slot
            )
            result = system.answer_query(
                EstimationRequest(
                    queried=data.queried, slot=data.slot, budget=budget, warm_start=False
                ),
                market=market,
                truth=truth,
            )
            for receipt in result.receipts:
                errors.append(
                    abs(receipt.aggregated_kmh - receipt.true_kmh) / receipt.true_kmh
                )
        rows.append(
            AblationRow(
                "aggregation",
                aggregator.value,
                "probe MAPE",
                float(np.mean(errors)),
            )
        )
    return rows


def inference_init_ablation(
    scale: ExperimentScale = ExperimentScale.QUICK,
) -> List[AblationRow]:
    """Iterations to convergence: empirical vs random initialization."""
    data = default_semisyn(scale)
    samples = data.train_history.slot_samples(data.slot)
    rows: List[AblationRow] = []
    for init in ("empirical", "random"):
        config = RTFInferenceConfig(
            init=init, tol=0.05, max_iters=2000, seed=21
        )
        _, diag = infer_slot_parameters(data.network, samples, data.slot, config)
        rows.append(
            AblationRow("inference-init", init, "iterations", float(diag.iterations))
        )
        rows.append(
            AblationRow(
                "inference-init", init, "converged", float(diag.converged)
            )
        )
    return rows


def run_all(scale: ExperimentScale = ExperimentScale.QUICK) -> List[AblationRow]:
    """Run every ablation study."""
    rows: List[AblationRow] = []
    rows += path_weight_ablation(scale)
    rows += gsp_schedule_ablation(scale)
    rows += aggregation_ablation(scale)
    rows += inference_init_ablation(scale)
    return rows


def format_table(rows: Sequence[AblationRow]) -> str:
    """Render all ablation rows."""
    header = ["study", "variant", "metric", "value"]
    body = [[r.study, r.variant, r.metric, f"{r.value:.5f}"] for r in rows]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print every ablation study."""
    print("Ablation studies (DESIGN.md §4)")
    print(format_table(run_all()))


if __name__ == "__main__":
    main()
