"""Query-workload generators.

The paper samples queried roads uniformly (semisyn) or as one connected
component (gMission).  Real query streams have more structure — users
ask about their commute corridor, a hotspot around an event, or a mix.
These generators let the sensitivity experiment measure how CrowdRTSE's
advantage depends on the query pattern.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.network.graph import TrafficNetwork


class QueryPattern(str, enum.Enum):
    """Spatial structure of a query's road set."""

    #: Uniform random roads (the paper's semisyn setting).
    UNIFORM = "uniform"
    #: A BFS ball around a random centre — an event hotspot.
    HOTSPOT = "hotspot"
    #: A shortest-hop path between two random roads — a commute corridor.
    CORRIDOR = "corridor"
    #: Half hotspot, half uniform.
    MIXED = "mixed"


def generate_query(
    network: TrafficNetwork,
    pattern: QueryPattern,
    size: int,
    rng: np.random.Generator,
) -> Tuple[int, ...]:
    """Draw one query's road set.

    Args:
        network: Road graph.
        pattern: Spatial structure.
        size: Number of queried roads (clamped to the network size).
        rng: Randomness source.

    Returns:
        Sorted tuple of distinct road indices.

    Raises:
        ExperimentError: On a non-positive size.
    """
    if size <= 0:
        raise ExperimentError(f"query size must be positive, got {size}")
    size = min(size, network.n_roads)
    if pattern is QueryPattern.UNIFORM:
        roads = rng.choice(network.n_roads, size=size, replace=False)
        return tuple(sorted(int(r) for r in roads))
    if pattern is QueryPattern.HOTSPOT:
        centre = int(rng.integers(network.n_roads))
        return _bfs_ball(network, centre, size)
    if pattern is QueryPattern.CORRIDOR:
        return _corridor(network, size, rng)
    if pattern is QueryPattern.MIXED:
        n_hot = size // 2
        hot = set(_bfs_ball(network, int(rng.integers(network.n_roads)), n_hot))
        rest = [r for r in range(network.n_roads) if r not in hot]
        extra = rng.choice(len(rest), size=min(size - len(hot), len(rest)), replace=False)
        hot.update(rest[int(k)] for k in extra)
        return tuple(sorted(hot))
    raise ExperimentError(f"unknown pattern {pattern!r}")  # pragma: no cover


def _bfs_ball(network: TrafficNetwork, centre: int, size: int) -> Tuple[int, ...]:
    order: List[int] = [centre]
    seen = {centre}
    frontier = [centre]
    while frontier and len(order) < size:
        next_frontier: List[int] = []
        for u in frontier:
            for v in network.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    next_frontier.append(v)
                    if len(order) == size:
                        break
            if len(order) == size:
                break
        frontier = next_frontier
    return tuple(sorted(order[:size]))


def _corridor(
    network: TrafficNetwork, size: int, rng: np.random.Generator
) -> Tuple[int, ...]:
    """Roads along a shortest-hop path, extended if the path is short."""
    source = int(rng.integers(network.n_roads))
    target = int(rng.integers(network.n_roads))
    # Shortest path by BFS predecessor walk.
    dist = network.hop_distances([source])
    if dist[target] is None:
        return _bfs_ball(network, source, size)
    path: List[int] = [target]
    node = target
    while node != source:
        for neighbor in network.neighbors(node):
            if dist[neighbor] is not None and dist[neighbor] == dist[node] - 1:  # type: ignore[operator]
                node = neighbor
                path.append(node)
                break
    path.reverse()
    roads = list(dict.fromkeys(path))[:size]
    if len(roads) < size:
        # Pad with the ball around the corridor's midpoint.
        pad = _bfs_ball(network, roads[len(roads) // 2], size)
        for r in pad:
            if r not in roads:
                roads.append(r)
                if len(roads) == size:
                    break
    return tuple(sorted(roads[:size]))


def query_stream(
    network: TrafficNetwork,
    pattern: QueryPattern,
    size: int,
    n_queries: int,
    seed: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """A reproducible stream of queries with the given pattern."""
    if n_queries <= 0:
        raise ExperimentError("n_queries must be positive")
    rng = np.random.default_rng(seed)
    return [generate_query(network, pattern, size, rng) for _ in range(n_queries)]
