"""Run every experiment and write a consolidated Markdown report.

``python -m repro.experiments.run_all [--scale quick|paper] [--out DIR]``
regenerates all of the paper's tables/figures plus the extension studies
and writes one ``REPORT.md`` (and the raw tables) under the output
directory.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments import (
    ablations,
    allocation_study,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    fixed_vs_crowd,
    noise_sensitivity,
    query_patterns,
    scalability,
    table2,
    table3,
    theta_sweep,
)
from repro.experiments.common import ExperimentScale


def _sections(scale: ExperimentScale) -> List[Tuple[str, Callable[[], str]]]:
    """(title, runner) per experiment; each runner returns a text table."""
    return [
        ("Table II — dataset statistics", lambda: table2.format_table(table2.run(scale))),
        ("Figure 2 — OCS objective vs budget", lambda: figure2.format_table(figure2.run(scale))),
        ("Table III — coverage of queried roads", lambda: table3.format_table(table3.run(scale))),
        (
            "Figure 4(a) — OCS runtime",
            lambda: figure4.format_table(figure4.run_ocs_runtime(scale)),
        ),
        (
            "Figure 4(b) — estimator runtime",
            lambda: figure4.format_table(figure4.run_estimator_runtime(scale)),
        ),
        ("Figure 5 — RTF training convergence", lambda: figure5.format_table(figure5.run(scale))),
        (
            "Figure 3 — estimation quality grid",
            lambda: figure3.format_table(
                figure3.run(scale, n_trials=3, thetas=(0.92, 1.0))
            ),
        ),
        ("Figure 6 — gMission quality", lambda: figure3.format_table(figure6.run(scale, n_trials=3))),
        ("Ablations", lambda: ablations.format_table(ablations.run_all(scale))),
        ("Theta sweep", lambda: theta_sweep.format_table(theta_sweep.run(scale))),
        (
            "Query-pattern sensitivity",
            lambda: query_patterns.format_table(query_patterns.run(scale)),
        ),
        (
            "Scalability",
            lambda: scalability.format_table(scalability.run(scale)),
        ),
        (
            "Budget allocation",
            lambda: allocation_study.format_table(allocation_study.run(scale)),
        ),
        (
            "Fixed sensors vs crowd",
            lambda: fixed_vs_crowd.format_table(fixed_vs_crowd.run(scale)),
        ),
        (
            "Worker-noise sensitivity",
            lambda: noise_sensitivity.format_table(noise_sensitivity.run(scale)),
        ),
    ]


def run_all(
    scale: ExperimentScale = ExperimentScale.QUICK,
    out_dir: Optional[Path] = None,
    metrics_out: Optional[Path] = None,
) -> str:
    """Run everything; return (and optionally write) the Markdown report.

    Args:
        scale: Experiment sizing.
        out_dir: When given, writes ``REPORT.md`` plus one ``.txt`` per
            section into this directory.
        metrics_out: When given, enables the metrics registry for the
            run and writes its final snapshot JSON here.
    """
    if metrics_out is not None:
        obs.configure(metrics=True)
        obs.get_metrics().reset()
    lines: List[str] = [
        f"# CrowdRTSE experiment report (scale: {scale.value})",
        "",
    ]
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    for title, runner in _sections(scale):
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        lines += [f"## {title}", "", "```", table, "```", f"_{elapsed:.1f}s_", ""]
        if out_dir is not None:
            slug = (
                title.split("—")[0].strip().lower().replace(" ", "_").replace("(", "").replace(")", "")
            )
            (out_dir / f"{slug}.txt").write_text(table + "\n")
    report = "\n".join(lines)
    if out_dir is not None:
        (out_dir / "REPORT.md").write_text(report)
    if metrics_out is not None:
        obs.write_metrics_json(obs.get_metrics().snapshot(), metrics_out)
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry."""
    parser = argparse.ArgumentParser(description="run every experiment")
    parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    parser.add_argument("--out", default=None, help="output directory")
    parser.add_argument(
        "--metrics-out", default=None, help="write the metrics snapshot JSON here"
    )
    args = parser.parse_args(argv)
    scale = ExperimentScale(args.scale)
    report = run_all(
        scale,
        Path(args.out) if args.out else None,
        Path(args.metrics_out) if args.metrics_out else None,
    )
    print(report)


if __name__ == "__main__":
    main()
