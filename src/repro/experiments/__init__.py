"""Experiment harness — one module per table/figure of the paper (§VII).

Every module exposes ``run(scale=...)`` returning a structured result
and a ``format_table`` helper; ``python -m repro.experiments.<name>``
prints the table the paper reports.  The ``scale`` knob selects between
``"paper"`` (full-size, slower) and ``"quick"`` (small but same shape,
used by the benchmark suite).
"""

from repro.experiments.common import (
    ExperimentScale,
    default_gmission,
    default_semisyn,
    estimator_suite,
    fit_system,
    ocs_instance_for,
)

__all__ = [
    "ExperimentScale",
    "default_gmission",
    "default_semisyn",
    "estimator_suite",
    "fit_system",
    "ocs_instance_for",
]
