"""Fixed sensors vs crowdsourcing at equal observation counts.

Tests the paper's §II claim head-on: a fixed detector deployment always
observes the *same* roads, while OCS re-selects per query against the
current queried set.  At an equal number of observed roads per slot,
query-aware crowdsourcing should beat every static placement — and the
gap should widen when the queried set changes between queries (the
regime the paper says breaks fixed-site regression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.gsp import propagate
from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
    market_for,
)
from repro.experiments.workloads import QueryPattern, query_stream
from repro.traffic.detectors import DetectorDeployment, DetectorPlacement


@dataclass(frozen=True)
class FixedVsCrowdRow:
    """Quality of one observation policy."""

    policy: str
    mape: float
    n_observed: float


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    query_size: int = 15,
    n_queries: int = 4,
    seed: int = 3,
) -> List[FixedVsCrowdRow]:
    """Compare OCS-selected probes against fixed detector placements.

    Every policy observes the same *number* of roads per query (the
    size of the Hybrid-Greedy selection at the smallest budget); queries
    move around the network (hotspot stream), which is exactly where
    fixed placements lose.
    """
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    params = system.model.slot(data.slot)
    queries = query_stream(
        data.network, QueryPattern.HOTSPOT, query_size, n_queries, seed=seed
    )

    # Realize the crowdsourced policy first to fix the observation count.
    crowd_estimates: List[np.ndarray] = []
    truths_all: List[np.ndarray] = []
    observed_counts: List[int] = []
    for k, queried in enumerate(queries):
        day = k % data.test_history.n_days
        market = market_for(data, seed=seed + k)
        truth = truth_oracle_for(data.test_history, day, data.slot)
        result = system.answer_query(
            EstimationRequest(
                queried=queried,
                slot=data.slot,
                budget=min(data.budgets),
                warm_start=False,
            ),
            market=market,
            truth=truth,
        )
        crowd_estimates.append(result.estimates_kmh)
        truths_all.append(np.array([truth(q) for q in queried]))
        observed_counts.append(len(result.probes))
    rows = [
        FixedVsCrowdRow(
            policy="crowd (OCS)",
            mape=mean_absolute_percentage_error(
                np.concatenate(crowd_estimates), np.concatenate(truths_all)
            ),
            n_observed=float(np.mean(observed_counts)),
        )
    ]

    # Equalize measurement quality: give the fixed detectors the same
    # effective noise as an aggregated crowd probe, so the comparison
    # isolates *placement adaptivity* (the paper's §II argument) rather
    # than sensor accuracy.
    crowd_noise = _mean_probe_noise(data, system, queries[0], seed)
    n_detectors = max(1, int(round(np.mean(observed_counts))))
    rng = np.random.default_rng(seed)
    for placement in DetectorPlacement:
        deployment = DetectorDeployment.place(
            data.network,
            n_detectors,
            placement,
            noise_std_fraction=crowd_noise,
            seed=seed,
        )
        estimates: List[np.ndarray] = []
        for k, queried in enumerate(queries):
            day = k % data.test_history.n_days
            truth = truth_oracle_for(data.test_history, day, data.slot)
            snapshot = np.array(
                [truth(r) for r in range(data.network.n_roads)]
            )
            readings = deployment.read(snapshot, rng)
            field = propagate(data.network, params, readings).speeds
            estimates.append(field[np.asarray(queried, dtype=int)])
        rows.append(
            FixedVsCrowdRow(
                policy=f"fixed ({placement.value})",
                mape=mean_absolute_percentage_error(
                    np.concatenate(estimates), np.concatenate(truths_all)
                ),
                n_observed=float(n_detectors),
            )
        )
    return rows


def _mean_probe_noise(data, system, queried, seed: int) -> float:
    """Empirical relative error of one round of aggregated crowd probes."""
    market = market_for(data, seed=seed + 777)
    truth = truth_oracle_for(data.test_history, 0, data.slot)
    result = system.answer_query(
        EstimationRequest(
            queried=queried, slot=data.slot, budget=min(data.budgets), warm_start=False
        ),
        market=market,
        truth=truth,
    )
    errors = [
        abs(r.aggregated_kmh - r.true_kmh) / r.true_kmh for r in result.receipts
    ]
    return float(np.mean(errors)) if errors else 0.02


def format_table(rows: Sequence[FixedVsCrowdRow]) -> str:
    """Render the comparison."""
    header = ["policy", "MAPE", "observed roads/query"]
    body = [[r.policy, f"{r.mape:.4f}", f"{r.n_observed:.1f}"] for r in rows]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the fixed-vs-crowd comparison."""
    print("Fixed detectors vs OCS crowdsourcing (equal observations, moving queries)")
    print(format_table(run(ExperimentScale.PAPER)))


if __name__ == "__main__":
    main()
