"""Worker-noise sensitivity: when does crowdsourcing stop paying?

Sweeps the workers' measurement noise and tracks GSP's quality against
the (noise-independent) periodic baseline.  At low noise the crowd
probes are gold; past some noise level the propagated errors outweigh
the realtime information and Per catches up — the economic boundary of
the paper's whole premise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.request import EstimationRequest
from repro.crowd.market import CrowdMarket
from repro.crowd.workers import WorkerPool
from repro.datasets import truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
)

#: Relative worker noise levels swept (fraction of the true speed).
DEFAULT_NOISE_LEVELS = (0.02, 0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class NoiseRow:
    """Quality at one worker-noise level."""

    noise: float
    gsp_mape: float
    per_mape: float
    probe_mape: float


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    noise_levels: Sequence[float] = DEFAULT_NOISE_LEVELS,
    n_trials: int = 3,
    budget: int = 0,
) -> List[NoiseRow]:
    """Sweep worker noise at a fixed budget.

    Args:
        scale: Experiment sizing.
        noise_levels: Relative noise std levels to test.
        n_trials: Test days per level.
        budget: Budget K; 0 means the dataset's smallest.
    """
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    params = system.model.slot(data.slot)
    use_budget = budget if budget > 0 else min(data.budgets)
    rows: List[NoiseRow] = []
    for noise in noise_levels:
        pool = WorkerPool.cover_all_roads(
            data.network,
            workers_per_road=10,
            noise_std_fraction=noise,
            seed=808,
        )
        gsp_errors: List[float] = []
        per_errors: List[float] = []
        probe_errors: List[float] = []
        for day in range(n_trials):
            day_idx = day % data.test_history.n_days
            market = CrowdMarket(
                data.network, pool, data.cost_model,
                rng=np.random.default_rng(500 + day),
            )
            truth = truth_oracle_for(data.test_history, day_idx, data.slot)
            result = system.answer_query(
                EstimationRequest(
                    queried=data.queried,
                    slot=data.slot,
                    budget=use_budget,
                    warm_start=False,
                ),
                market=market,
                truth=truth,
            )
            truths = np.array([truth(q) for q in data.queried])
            gsp_errors.append(
                mean_absolute_percentage_error(result.estimates_kmh, truths)
            )
            per_errors.append(
                mean_absolute_percentage_error(
                    params.mu[list(data.queried)], truths
                )
            )
            probe_errors.extend(
                abs(r.aggregated_kmh - r.true_kmh) / r.true_kmh
                for r in result.receipts
            )
        rows.append(
            NoiseRow(
                noise=float(noise),
                gsp_mape=float(np.mean(gsp_errors)),
                per_mape=float(np.mean(per_errors)),
                probe_mape=float(np.mean(probe_errors)),
            )
        )
    return rows


def format_table(rows: Sequence[NoiseRow]) -> str:
    """Render the sweep."""
    header = ["worker noise", "probe MAPE", "GSP MAPE", "Per MAPE", "crowd helps"]
    body = [
        [
            f"{r.noise:.2f}",
            f"{r.probe_mape:.4f}",
            f"{r.gsp_mape:.4f}",
            f"{r.per_mape:.4f}",
            "yes" if r.gsp_mape < r.per_mape else "no",
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the noise-sensitivity sweep."""
    print("Worker-noise sensitivity (smallest budget)")
    print(format_table(run(ExperimentScale.PAPER)))


if __name__ == "__main__":
    main()
